"""Dynamic obstacles: exact kinematics, octree re-marking, index probes."""

import pytest

from repro import EnvironmentConfig, MoverSpec, WorldSpec, build_environment
from repro.environment.world import World
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.worlds.movers import DynamicObstacleSet, KinematicMover, build_movers

TINY = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)


def empty_world() -> World:
    return World(AABB(Vec3(-50, -100, 0), Vec3(150, 100, 60)))


CROSSER = MoverSpec(
    kind="crosser",
    origin=(30.0, -20.0, 2.0),
    velocity=(0.0, 2.0, 0.0),
    span_m=40.0,
    epoch_s=0.5,
    size=(2.0, 2.0, 2.0),
)
LOOP = MoverSpec(
    kind="waypoint_loop",
    waypoints=((40.0, 5.0, 2.0), (50.0, 5.0, 2.0), (50.0, -5.0, 2.0), (40.0, -5.0, 2.0)),
    speed_mps=2.0,
    epoch_s=0.5,
)


class TestMoverSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MoverSpec(kind="teleporter")
        with pytest.raises(ValueError):
            MoverSpec(kind="crosser", velocity=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            MoverSpec(kind="waypoint_loop", waypoints=((0.0, 0.0, 0.0),))
        with pytest.raises(ValueError):
            MoverSpec(kind="crosser", velocity=(1.0, 0.0, 0.0), epoch_s=0.0)
        with pytest.raises(ValueError):
            MoverSpec(kind="crosser", velocity=(1.0, 0.0, 0.0), size=(0.0, 1.0, 1.0))

    def test_round_trip(self):
        for spec in (CROSSER, LOOP):
            assert MoverSpec.from_dict(spec.to_dict()) == spec


class TestKinematics:
    def test_crosser_position_after_n_epochs_is_exact(self):
        mover = KinematicMover(CROSSER)
        # 2 m/s * 0.5 s/epoch = 1 m per epoch along +y.
        assert mover.position_at(0) == Vec3(30.0, -20.0, 2.0)
        assert mover.position_at(7) == Vec3(30.0, -13.0, 2.0)
        # Wraps every span_m = 40 m of travel: epoch 45 → 45 mod 40 = 5 m.
        assert mover.position_at(45) == Vec3(30.0, -15.0, 2.0)

    def test_unbounded_crosser_never_wraps(self):
        spec = MoverSpec(
            kind="crosser", origin=(0.0, 0.0, 2.0), velocity=(4.0, 0.0, 0.0),
            span_m=0.0, epoch_s=0.5,
        )
        assert KinematicMover(spec).position_at(100) == Vec3(200.0, 0.0, 2.0)

    def test_waypoint_loop_position_after_n_epochs_is_exact(self):
        mover = KinematicMover(LOOP)
        # Square loop, perimeter 40 m, 1 m per epoch.
        assert mover.position_at(0) == Vec3(40.0, 5.0, 2.0)
        assert mover.position_at(7) == Vec3(47.0, 5.0, 2.0)
        # 15 m: 10 along the first edge, 5 down the second.
        assert mover.position_at(15) == Vec3(50.0, 0.0, 2.0)
        # 35 m: on the closing edge back to the first waypoint.
        assert mover.position_at(35) == Vec3(40.0, 0.0, 2.0)
        # One full lap later, identical position.
        assert mover.position_at(47) == mover.position_at(7)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            KinematicMover(CROSSER).position_at(-1)


class TestDynamicObstacleSet:
    def test_remark_count_matches_mover_count(self):
        world = empty_world()
        dynamics = DynamicObstacleSet(build_movers([CROSSER, LOOP]), world)
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        stats = dynamics.step(0, octree=octree)
        assert stats["movers"] == 2
        assert stats["remarked"] == 2
        assert stats["voxels_marked"] > 0
        assert stats["voxels_cleared"] == 0
        stats = dynamics.step(3, octree=octree)
        assert stats["remarked"] == 2
        assert stats["voxels_cleared"] > 0

    def test_spatial_index_probes_reflect_the_moved_cell(self):
        world = empty_world()
        dynamics = DynamicObstacleSet(build_movers([CROSSER]), world)
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        dynamics.step(0, octree=octree)
        old_pos = Vec3(30.0, -20.0, 2.0)
        new_pos = Vec3(30.0, -16.0, 2.0)  # 4 epochs * 1 m/epoch
        assert octree.is_occupied(old_pos)
        # Distances are measured to voxel centres, so "inside" reads < vox_min.
        assert octree.nearest_occupied_distance(old_pos) < octree.vox_min
        dynamics.step(4, octree=octree)
        # Old footprint cleared, new footprint marked — all through the
        # incremental index, no rebuild.
        assert not octree.is_occupied(old_pos)
        assert octree.is_occupied(new_pos)
        assert octree.nearest_occupied_distance(new_pos) < octree.vox_min
        assert octree.nearest_occupied_distance(old_pos, max_radius=50.0) > 1.0
        # Segment probes see the mover at its new position only.
        assert octree.segment_occupied(Vec3(25, -16, 2), Vec3(35, -16, 2))
        assert not octree.segment_occupied(Vec3(25, -20, 2), Vec3(35, -20, 2))

    def test_ground_truth_world_follows_the_mover(self):
        world = empty_world()
        dynamics = DynamicObstacleSet(build_movers([CROSSER]), world)
        dynamics.step(0)
        assert world.is_occupied(Vec3(30.0, -20.0, 2.0))
        assert world.nearest_obstacle_distance(Vec3(30.0, -17.0, 2.0)) < 3.0
        dynamics.step(4)
        assert not world.is_occupied(Vec3(30.0, -20.0, 2.0))
        assert world.is_occupied(Vec3(30.0, -16.0, 2.0))
        assert world.segment_collides(Vec3(25, -16, 2), Vec3(35, -16, 2))
        assert len(world.dynamic_obstacles) == 1
        # Static obstacle accounting is untouched.
        assert world.obstacle_count() == 0

    def test_step_is_deterministic_and_absolute(self):
        """Stepping to an epoch directly equals stepping through all epochs."""
        octree_a = OccupancyOctree(vox_min=0.3, levels=6)
        dynamics_a = DynamicObstacleSet(build_movers([CROSSER, LOOP]), empty_world())
        for epoch in range(8):
            dynamics_a.step(epoch, octree=octree_a)
        octree_b = OccupancyOctree(vox_min=0.3, levels=6)
        dynamics_b = DynamicObstacleSet(build_movers([CROSSER, LOOP]), empty_world())
        dynamics_b.step(0, octree=octree_b)
        dynamics_b.step(7, octree=octree_b)
        assert octree_a.occupied_keys() == octree_b.occupied_keys()

    def test_crossing_movers_do_not_erase_each_other(self):
        """A later mover's clear must not erase an earlier mover's new mark.

        Mover B starts exactly where mover A arrives one epoch later: with
        interleaved clear/mark, processing B after A would clear the voxels
        A just marked.  The two-pass step keeps A's footprint intact.
        """
        a = MoverSpec(kind="crosser", origin=(10.0, 0.0, 2.0),
                      velocity=(2.0, 0.0, 0.0), epoch_s=0.5, name="a")
        b = MoverSpec(kind="crosser", origin=(11.0, 0.0, 2.0),
                      velocity=(2.0, 0.0, 0.0), epoch_s=0.5, name="b")
        dynamics = DynamicObstacleSet(build_movers([a, b]), empty_world())
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        dynamics.step(0, octree=octree)
        dynamics.step(1, octree=octree)
        # At epoch 1, A sits at x=11 — B's old spot.  Both footprints present.
        assert octree.is_occupied(Vec3(11.0, 0.0, 2.0))
        assert octree.is_occupied(Vec3(12.0, 0.0, 2.0))

    def test_mover_overlap_does_not_erase_static_map(self):
        """Clearing a mover's footprint must leave sensor-derived voxels alone."""
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        wall = Vec3(30.0, -20.0, 2.0)  # inside the crosser's epoch-0 box
        octree.mark_occupied(wall)
        dynamics = DynamicObstacleSet(build_movers([CROSSER]), empty_world())
        dynamics.step(0, octree=octree)
        assert octree.is_occupied(wall)
        dynamics.step(10, octree=octree)  # mover long gone from the wall
        assert octree.is_occupied(wall), "static wall voxel erased by mover clear"

    def test_duplicate_mover_names_rejected(self):
        movers = [KinematicMover(CROSSER, name="dup"), KinematicMover(LOOP, name="dup")]
        with pytest.raises(ValueError):
            DynamicObstacleSet(movers, empty_world())


class TestPipelineIntegration:
    def test_sense_boundary_steps_movers_into_the_map(self):
        spec_movers = (CROSSER,)
        env = build_environment(TINY, WorldSpec(movers=spec_movers))
        assert env.dynamics is not None and len(env.dynamics) == 1

        from repro import MissionConfig, MissionSimulator, RoboRunRuntime

        simulator = MissionSimulator(
            env, RoboRunRuntime(), MissionConfig(max_decisions=5, max_mission_time_s=50.0)
        )
        result = simulator.run()
        assert result.metrics.decision_count == 5
        # After 5 decisions the set sits at epoch 4 and its stats cover the
        # single mover.
        assert env.dynamics.epoch == 4
        assert env.dynamics.last_step_stats["remarked"] == 1
        # The mover's current footprint is in the planner-facing octree.
        position = env.dynamics.movers[0].position_at(4)
        assert simulator.operators.octree.is_occupied(position)
        # The ground-truth world agrees with the octree about where it is.
        assert env.world.is_occupied(position)
        assert not env.world.is_occupied(env.dynamics.movers[0].position_at(0))
