"""Archetype generators: registry, invariants, golden pin, determinism."""

import json

import pytest

from repro import EnvironmentConfig, WorldSpec, build_environment, build_world
from repro.environment.generator import EnvironmentGenerator
from repro.geometry.vec3 import Vec3
from repro.worlds import archetype_names, get_archetype, is_registered, register_archetype
from repro.worlds.archetypes import KEEP_CLEAR_M

TINY = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)

BUILTINS = (
    "disaster_rubble",
    "forest",
    "paper_corridor",
    "urban_canyon",
    "warehouse",
)


def world_fingerprint(environment) -> bytes:
    """Canonical bytes of an environment's obstacle list + difficulty field.

    Uses ``repr`` of every coordinate, so two fingerprints match only when
    the worlds are bit-identical.
    """
    payload = {
        "obstacles": [
            [
                obstacle.name,
                [repr(v) for v in (obstacle.box.min_corner.x, obstacle.box.min_corner.y, obstacle.box.min_corner.z)],
                [repr(v) for v in (obstacle.box.max_corner.x, obstacle.box.max_corner.y, obstacle.box.max_corner.z)],
            ]
            for obstacle in environment.world.obstacles
        ],
        "field": [repr(v) for v in environment.heterogeneity.samples],
    }
    return json.dumps(payload, sort_keys=True).encode()


class TestRegistry:
    def test_builtins_registered(self):
        assert tuple(archetype_names()) == BUILTINS
        for name in BUILTINS:
            assert is_registered(name)

    def test_unknown_archetype_raises_with_known_names(self):
        with pytest.raises(KeyError, match="paper_corridor"):
            get_archetype("volcano")
        with pytest.raises(KeyError):
            build_world(WorldSpec(archetype="volcano"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_archetype("forest")(lambda cfg, spec, rng: None)

    def test_extension_registration(self):
        @register_archetype("test_only_empty")
        def empty(cfg, spec, rng):
            from repro.worlds.archetypes import _corridor_frame
            from repro.environment.generator import GeneratedEnvironment
            from repro.environment.zones import ZoneMap

            start, goal, world = _corridor_frame(cfg)
            return GeneratedEnvironment(
                config=cfg, world=world, start=start, goal=goal,
                zone_map=ZoneMap(start, goal),
            )

        try:
            env = build_world(WorldSpec(archetype="test_only_empty"), TINY)
            assert env.archetype == "test_only_empty"
            assert env.world.obstacle_count() == 0
            assert env.heterogeneity is not None
        finally:
            from repro.worlds import registry

            registry._ARCHETYPES.pop("test_only_empty")


class TestArchetypeInvariants:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_builds_a_flyable_world(self, name):
        env = build_environment(TINY, WorldSpec(archetype=name))
        assert env.archetype == name
        assert env.world_spec == WorldSpec(archetype=name)
        assert env.world.obstacle_count() > 0
        assert env.start == Vec3(0.0, 0.0, TINY.flight_altitude)
        assert env.goal == Vec3(TINY.goal_distance, 0.0, TINY.flight_altitude)
        # Obstacle centres stay in bounds.
        for obstacle in env.world.obstacles:
            assert env.world.bounds.contains(obstacle.center)
        # The keep-clear bubble around both mission endpoints holds.
        for obstacle in env.world.obstacles:
            assert obstacle.center.horizontal_distance_to(env.start) >= KEEP_CLEAR_M
            assert obstacle.center.horizontal_distance_to(env.goal) >= KEEP_CLEAR_M

    @pytest.mark.parametrize("name", BUILTINS)
    def test_zone_map_tiles_the_corridor(self, name):
        env = build_environment(TINY, WorldSpec(archetype=name))
        zones = env.zone_map.zones
        assert zones[0].start_fraction == 0.0
        assert zones[-1].end_fraction == 1.0
        for left, right in zip(zones, zones[1:]):
            assert left.end_fraction == pytest.approx(right.start_fraction)
        # Every corridor position resolves to a zone.
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert env.zone_map.zone_at(env.start.lerp(env.goal, t)) in zones

    @pytest.mark.parametrize("name", BUILTINS)
    def test_heterogeneity_field_present_and_bounded(self, name):
        env = build_environment(TINY, WorldSpec(archetype=name))
        field = env.heterogeneity
        assert field is not None
        assert len(field.samples) >= 16
        assert all(0.0 <= v <= 1.0 for v in field.samples)
        # difficulty_at interpolates inside the sample range.
        mid = env.start.lerp(env.goal, 0.5)
        assert min(field.samples) <= field.difficulty_at(mid) <= max(field.samples)
        assert env.difficulty_at(mid) == field.difficulty_at(mid)

    def test_disaster_rubble_has_a_density_gradient(self):
        env = build_environment(TINY, WorldSpec(archetype="disaster_rubble"))
        samples = env.heterogeneity.samples
        half = len(samples) // 2
        assert sum(samples[half:]) > sum(samples[:half])

    def test_density_knob_orders_obstacle_counts(self):
        sparse = build_environment(TINY, WorldSpec(archetype="forest"))
        dense = build_environment(
            EnvironmentConfig(
                obstacle_density=0.6, obstacle_spread=30.0, goal_distance=60.0, seed=7
            ),
            WorldSpec(archetype="forest"),
        )
        assert dense.world.obstacle_count() > sparse.world.obstacle_count()


class TestGolden:
    def test_paper_corridor_bit_identical_to_legacy_generator(self):
        """The worlds path must not perturb the pre-worlds corridor at all."""
        bench_cfg = EnvironmentConfig(
            obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
        )
        legacy = EnvironmentGenerator().generate(bench_cfg)
        via_worlds = build_environment(bench_cfg, WorldSpec())
        assert len(legacy.world.obstacles) == len(via_worlds.world.obstacles)
        for a, b in zip(legacy.world.obstacles, via_worlds.world.obstacles):
            assert a.name == b.name
            assert a.box.min_corner == b.box.min_corner
            assert a.box.max_corner == b.box.max_corner
        assert [z.name for z in legacy.zone_map.zones] == [
            z.name for z in via_worlds.zone_map.zones
        ]
        assert legacy.cluster_centers == via_worlds.cluster_centers


class TestDeterminism:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_same_spec_and_seed_byte_identical(self, name):
        spec = WorldSpec(archetype=name)
        first = world_fingerprint(build_environment(TINY, spec))
        second = world_fingerprint(build_environment(TINY, spec))
        assert first == second

    def test_seed_changes_the_world(self):
        spec = WorldSpec(archetype="forest")
        base = world_fingerprint(build_environment(TINY, spec))
        other_cfg = EnvironmentConfig(
            obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=8
        )
        assert world_fingerprint(build_environment(other_cfg, spec)) != base

    def test_world_spec_seed_overrides_config_seed(self):
        pinned = WorldSpec(archetype="forest", seed=7)
        other_cfg = EnvironmentConfig(
            obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=99
        )
        assert world_fingerprint(
            build_environment(other_cfg, pinned)
        ) == world_fingerprint(build_environment(TINY, pinned))


class TestWorldSpec:
    def test_json_round_trip(self):
        from repro import MoverSpec

        spec = WorldSpec(
            archetype="warehouse",
            seed=3,
            params={"aisle_width_m": 6.0},
            movers=(
                MoverSpec(
                    kind="crosser", origin=(30.0, -20.0, 2.0),
                    velocity=(0.0, 2.0, 0.0), span_m=40.0,
                ),
            ),
        )
        restored = WorldSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert hash(restored) == hash(spec)

    def test_default_is_paper_corridor(self):
        assert WorldSpec().is_default
        assert WorldSpec.from_dict(None) == WorldSpec()
        assert WorldSpec.from_dict({}) == WorldSpec()
        assert not WorldSpec(archetype="forest").is_default

    def test_validation(self):
        with pytest.raises(ValueError):
            WorldSpec(archetype="")
        with pytest.raises(ValueError):
            WorldSpec(params={"bad": "not a number"})
