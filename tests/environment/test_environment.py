"""Tests for the obstacle world, zones and the environment generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.environment.generator import (
    DENSITY_LEVELS,
    EnvironmentConfig,
    EnvironmentGenerator,
    GOAL_DISTANCE_LEVELS_M,
    SPREAD_LEVELS_M,
)
from repro.environment.world import Obstacle, World
from repro.environment.zones import Zone, ZoneMap
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3


def make_world():
    bounds = AABB(Vec3(-10, -10, 0), Vec3(110, 110, 30))
    world = World(bounds)
    world.add_obstacle(Obstacle(AABB.from_center(Vec3(20, 0, 10), Vec3(2, 2, 20)), "a"))
    world.add_obstacle(Obstacle(AABB.from_center(Vec3(26, 0, 10), Vec3(2, 2, 20)), "b"))
    return world


class TestWorld:
    def test_occupancy(self):
        world = make_world()
        assert world.is_occupied(Vec3(20, 0, 5))
        assert not world.is_occupied(Vec3(23, 0, 5))
        assert world.is_occupied(Vec3(21.3, 0, 5), margin=0.5)

    def test_segment_collision(self):
        world = make_world()
        assert world.segment_collides(Vec3(0, 0, 5), Vec3(40, 0, 5))
        assert not world.segment_collides(Vec3(0, 10, 5), Vec3(40, 10, 5))

    def test_nearest_obstacle_distance(self):
        world = make_world()
        assert world.nearest_obstacle_distance(Vec3(15, 0, 5)) == pytest.approx(4.0, abs=0.1)
        assert world.nearest_obstacle_distance(Vec3(100, 100, 5), search_radius=10.0) == 10.0

    def test_visibility_along(self):
        world = make_world()
        vis = world.visibility_along(Vec3(0, 0, 5), Vec3(1, 0, 0), max_range=50.0)
        assert vis == pytest.approx(19.0, abs=0.1)
        open_vis = world.visibility_along(Vec3(0, 50, 5), Vec3(1, 0, 0), max_range=50.0)
        assert open_vis == 50.0

    def test_gap_statistics(self):
        world = make_world()
        gap_min, gap_avg = world.gap_statistics(Vec3(23, 0, 5), radius=20.0)
        assert gap_min == pytest.approx(4.0, abs=0.2)
        assert gap_avg >= gap_min
        # Far from everything: saturates at the radius.
        assert world.gap_statistics(Vec3(100, 100, 5), radius=15.0) == (15.0, 15.0)

    def test_obstacle_density_bounds(self):
        world = make_world()
        dense = world.obstacle_density(Vec3(20, 0, 5), radius=3.0)
        empty = world.obstacle_density(Vec3(80, 80, 5), radius=3.0)
        assert 0.0 <= empty < dense <= 1.0

    def test_obstacles_near_filters(self):
        world = make_world()
        assert len(world.obstacles_near(Vec3(20, 0, 5), 10.0)) >= 2
        assert world.obstacles_near(Vec3(100, 100, 5), 5.0) == []

    def test_free_space_ratio(self):
        world = make_world()
        assert world.free_space_ratio_along(Vec3(0, 50, 5), Vec3(50, 50, 5)) == 1.0
        assert world.free_space_ratio_along(Vec3(19, 0, 5), Vec3(21, 0, 5)) < 1.0


class TestZones:
    def test_invalid_zone_fractions(self):
        with pytest.raises(ValueError):
            Zone("X", 0.5, 0.4, congested=False)

    def test_default_zone_layout(self):
        zone_map = ZoneMap(Vec3(0, 0, 5), Vec3(100, 0, 5))
        assert [z.name for z in zone_map.zones] == ["A", "B", "C"]
        assert zone_map.congested_zone_names() == ["A", "C"]

    def test_zone_at_positions(self):
        zone_map = ZoneMap(Vec3(0, 0, 5), Vec3(100, 0, 5))
        assert zone_map.zone_at(Vec3(10, 0, 5)).name == "A"
        assert zone_map.zone_at(Vec3(50, 20, 5)).name == "B"
        assert zone_map.zone_at(Vec3(90, 0, 5)).name == "C"
        assert zone_map.zone_at(Vec3(500, 0, 5)).name == "C"
        assert zone_map.zone_at(Vec3(-50, 0, 5)).name == "A"

    def test_zone_named_and_missing(self):
        zone_map = ZoneMap(Vec3(0, 0, 5), Vec3(100, 0, 5))
        assert zone_map.zone_named("B").congested is False
        with pytest.raises(KeyError):
            zone_map.zone_named("D")

    def test_zone_centers_lie_on_axis(self):
        zone_map = ZoneMap(Vec3(0, 0, 5), Vec3(100, 0, 5))
        centers = zone_map.zone_centers()
        assert centers["B"].x == pytest.approx(50.0)

    def test_identical_endpoints_rejected(self):
        with pytest.raises(ValueError):
            ZoneMap(Vec3(0, 0, 0), Vec3(0, 0, 0))


class TestGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(obstacle_density=0.0)
        with pytest.raises(ValueError):
            EnvironmentConfig(obstacle_spread=-1.0)
        with pytest.raises(ValueError):
            EnvironmentConfig(goal_distance=0.0)

    def test_config_rejects_nonsense_knobs_with_clear_messages(self):
        with pytest.raises(ValueError, match="peak occupied fraction"):
            EnvironmentConfig(obstacle_density=-0.3)
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            EnvironmentConfig(obstacle_density=1.5)
        with pytest.raises(ValueError, match="scatter radius"):
            EnvironmentConfig(obstacle_spread=0.0)
        with pytest.raises(ValueError, match="mission length"):
            EnvironmentConfig(goal_distance=-600.0)
        with pytest.raises(ValueError, match="inverts the corridor"):
            EnvironmentConfig(corridor_width=-150.0)
        with pytest.raises(ValueError, match="flight altitude"):
            EnvironmentConfig(flight_altitude=0.0)
        with pytest.raises(ValueError, match="obstacle height"):
            EnvironmentConfig(obstacle_height=-20.0)
        # A flight plane above every obstacle generates no congestion at all.
        with pytest.raises(ValueError, match="below"):
            EnvironmentConfig(flight_altitude=25.0, obstacle_height=20.0)
        with pytest.raises(ValueError, match="at least one congestion cluster"):
            EnvironmentConfig(clusters_per_zone=0)
        for knob in ("obstacle_density", "obstacle_spread", "goal_distance",
                     "corridor_width", "flight_altitude", "obstacle_height"):
            with pytest.raises(ValueError, match="finite"):
                EnvironmentConfig(**{knob: float("nan")})
            with pytest.raises(ValueError):
                EnvironmentConfig(**{knob: float("inf")})

    def test_generation_is_deterministic(self):
        cfg = EnvironmentConfig(goal_distance=200.0, seed=7)
        a = EnvironmentGenerator().generate(cfg)
        b = EnvironmentGenerator().generate(cfg)
        assert a.world.obstacle_count() == b.world.obstacle_count()
        assert a.world.obstacles[0].center == b.world.obstacles[0].center

    def test_start_and_goal_clear_of_obstacles(self):
        env = EnvironmentGenerator().generate(EnvironmentConfig(goal_distance=200.0, seed=5))
        assert not env.world.is_occupied(env.start, margin=2.0)
        assert not env.world.is_occupied(env.goal, margin=2.0)

    def test_obstacles_concentrate_in_congested_zones(self):
        env = EnvironmentGenerator().generate(
            EnvironmentConfig(goal_distance=300.0, obstacle_spread=40.0, seed=2)
        )
        zone_counts = {"A": 0, "B": 0, "C": 0}
        for obstacle in env.world.obstacles:
            zone_counts[env.zone_map.zone_at(obstacle.center).name] += 1
        assert zone_counts["A"] + zone_counts["C"] > zone_counts["B"]

    def test_density_knob_changes_obstacle_count(self):
        gen = EnvironmentGenerator()
        low = gen.generate(EnvironmentConfig(obstacle_density=0.3, goal_distance=200.0, seed=1))
        high = gen.generate(EnvironmentConfig(obstacle_density=0.6, goal_distance=200.0, seed=1))
        assert high.world.obstacle_count() > low.world.obstacle_count()

    def test_suite_has_27_environments(self):
        configs = EnvironmentGenerator().suite_configs()
        assert len(configs) == 27
        assert len({c.label() for c in configs}) == 27
        densities = {c.obstacle_density for c in configs}
        assert densities == set(DENSITY_LEVELS)
        assert {c.obstacle_spread for c in configs} == set(SPREAD_LEVELS_M)
        assert {c.goal_distance for c in configs} == set(GOAL_DISTANCE_LEVELS_M)

    def test_congestion_map_covers_world(self):
        env = EnvironmentGenerator().generate(
            EnvironmentConfig(goal_distance=200.0, seed=3)
        )
        heat = EnvironmentGenerator().congestion_map(env, cell=50.0)
        assert heat
        assert all(0.0 <= value <= 1.0 for value in heat.values())

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_generated_obstacles_inside_bounds(self, seed):
        env = EnvironmentGenerator().generate(
            EnvironmentConfig(goal_distance=150.0, seed=seed)
        )
        for obstacle in env.world.obstacles:
            assert env.world.bounds.expanded(50.0).contains(obstacle.center)
