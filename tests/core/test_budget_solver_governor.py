"""Tests for the time budgeter (Eq. 1 / Alg. 1), the solver (Eq. 3) and the governor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compute.latency_model import (
    PipelineLatencyModel,
    SOLVER_STAGES,
    STAGE_PERCEPTION,
    STAGE_PERCEPTION_TO_PLANNING,
    STAGE_PLANNING,
    StageLatencyModel,
)
from repro.core.budget import TimeBudgeter, WaypointObservation
from repro.core.governor import Governor
from repro.core.policy import KnobLimits, STATIC_BASELINE_POLICY
from repro.core.profilers import SpaceProfile
from repro.core.solver import KnobSolver, SolverConfig
from repro.geometry.vec3 import Vec3
from repro.planning.trajectory import Trajectory, TrajectoryPoint


def make_profile(
    gap_min=0.6,
    gap_avg=1.5,
    closest_obstacle=5.0,
    visibility=10.0,
    sensor_volume=200_000.0,
    map_volume=50_000.0,
    velocity=1.0,
    trajectory=None,
):
    return SpaceProfile(
        timestamp=0.0,
        gap_min=gap_min,
        gap_avg=gap_avg,
        closest_obstacle=closest_obstacle,
        closest_unknown=visibility,
        visibility=visibility,
        sensor_volume=sensor_volume,
        map_volume=map_volume,
        velocity=velocity,
        position=Vec3(0, 0, 5),
        trajectory=trajectory,
    )


OPEN_SPACE = dict(
    gap_min=25.0, gap_avg=25.0, closest_obstacle=40.0, visibility=40.0
)
CONGESTED = dict(gap_min=0.6, gap_avg=1.2, closest_obstacle=3.0, visibility=5.0)


class TestTimeBudgeter:
    def test_local_budget_matches_equation_1(self):
        budgeter = TimeBudgeter()
        v, d = 2.0, 20.0
        expected = (d - budgeter.stopping_model.distance(v)) / v
        assert budgeter.local_budget(v, d) == pytest.approx(expected)

    def test_budget_decreases_with_velocity(self):
        budgeter = TimeBudgeter()
        budgets = [budgeter.local_budget(v, 20.0) for v in (0.5, 1.0, 2.0, 4.0)]
        assert budgets == sorted(budgets, reverse=True)

    def test_budget_increases_with_visibility(self):
        budgeter = TimeBudgeter()
        budgets = [budgeter.local_budget(2.0, d) for d in (5.0, 10.0, 20.0, 40.0)]
        assert budgets == sorted(budgets)

    def test_unsafe_regime_gives_zero_budget(self):
        budgeter = TimeBudgeter()
        assert budgeter.local_budget(5.0, 0.5) == 0.0

    def test_budget_capped(self):
        budgeter = TimeBudgeter(max_budget_s=30.0)
        assert budgeter.local_budget(0.0, 1000.0) <= 30.0

    def test_global_budget_limited_by_worst_upcoming_waypoint(self):
        budgeter = TimeBudgeter()
        generous = budgeter.global_budget(
            [WaypointObservation(0.0, 1.0, 30.0), WaypointObservation(10.0, 1.0, 30.0)]
        )
        constrained = budgeter.global_budget(
            [WaypointObservation(0.0, 1.0, 30.0), WaypointObservation(10.0, 2.5, 4.0)]
        )
        assert constrained < generous

    def test_global_budget_requires_waypoints_in_order(self):
        budgeter = TimeBudgeter()
        with pytest.raises(ValueError):
            budgeter.global_budget(
                [WaypointObservation(10.0, 1.0, 10.0), WaypointObservation(0.0, 1.0, 10.0)]
            )
        with pytest.raises(ValueError):
            budgeter.global_budget([])

    def test_budget_from_trajectory(self):
        budgeter = TimeBudgeter()
        trajectory = Trajectory(
            [
                TrajectoryPoint(0.0, Vec3(0, 0, 5), Vec3(2, 0, 0)),
                TrajectoryPoint(5.0, Vec3(10, 0, 5), Vec3(2, 0, 0)),
            ]
        )
        budget = budgeter.budget_from_trajectory(
            current_velocity=1.0,
            current_visibility=20.0,
            upcoming=list(trajectory.points),
        )
        assert 0.0 < budget <= budgeter.max_budget_s

    def test_max_safe_velocity_monotone_in_budget(self):
        budgeter = TimeBudgeter()
        fast = budgeter.max_safe_velocity(20.0, required_budget=1.0, velocity_ceiling=5.0)
        slow = budgeter.max_safe_velocity(20.0, required_budget=10.0, velocity_ceiling=5.0)
        assert fast >= slow

    def test_max_safe_velocity_bounds(self):
        budgeter = TimeBudgeter()
        v = budgeter.max_safe_velocity(30.0, required_budget=0.5, velocity_ceiling=2.5)
        assert v == pytest.approx(2.5)
        crawl = budgeter.max_safe_velocity(1.0, required_budget=100.0, velocity_ceiling=2.5)
        assert crawl == budgeter.min_velocity

    @given(
        st.floats(min_value=0.2, max_value=4.0),
        st.floats(min_value=1.0, max_value=40.0),
        st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_max_safe_velocity_is_safe(self, velocity_ceiling, visibility, required):
        budgeter = TimeBudgeter()
        v = budgeter.max_safe_velocity(visibility, required, max(velocity_ceiling, 0.2))
        # The returned velocity either satisfies the budget or is the floor.
        if v > budgeter.min_velocity + 1e-6:
            assert budgeter.local_budget(v, visibility) >= required - 1e-3

    def test_global_budget_single_waypoint_equals_local(self):
        # With only W0 the loop never runs, so the for/else completion path
        # must return W0's local budget unchanged.
        budgeter = TimeBudgeter()
        single = budgeter.global_budget([WaypointObservation(0.0, 1.0, 20.0)])
        assert single == pytest.approx(budgeter.local_budget(1.0, 20.0))

    def test_global_budget_completion_path_adds_remaining_slack(self):
        # Every waypoint keeps a positive remaining budget: the result is the
        # accumulated flight time plus the final remaining slack (for/else).
        budgeter = TimeBudgeter()
        w0 = WaypointObservation(0.0, 1.0, 30.0)
        w1 = WaypointObservation(10.0, 1.0, 30.0)
        flight_time = 10.0  # mean velocity 1.0 over 10 m
        b_r = budgeter.local_budget(1.0, 30.0) - flight_time
        b_r = min(b_r, budgeter.local_budget(1.0, 30.0))
        expected = min(flight_time + max(b_r, 0.0), budgeter.max_budget_s)
        assert budgeter.global_budget([w0, w1]) == pytest.approx(expected)

    def test_global_budget_early_break_on_unsafe_waypoint(self):
        # A zero-visibility waypoint zeroes the remaining budget: the loop
        # breaks early and the flight time of that leg is *not* credited.
        budgeter = TimeBudgeter()
        waypoints = [
            WaypointObservation(0.0, 1.0, 30.0),
            WaypointObservation(10.0, 1.0, 30.0),
            WaypointObservation(20.0, 1.0, 0.0),
        ]
        assert budgeter.global_budget(waypoints) == pytest.approx(10.0)
        # When the unsafe waypoint is the immediate next one, nothing accrues.
        assert budgeter.global_budget(waypoints[1:]) == 0.0


class TestKnobSolver:
    def test_precisions_respect_power_of_two_ladder(self):
        solver = KnobSolver()
        result = solver.solve(2.0, make_profile(**CONGESTED))
        ladder = KnobLimits().precision_ladder()
        assert result.policy.point_cloud_precision in ladder
        assert result.policy.map_to_planner_precision in ladder

    def test_eq3_constraints_hold(self):
        solver = KnobSolver()
        profile = make_profile(**CONGESTED)
        result = solver.solve(3.0, profile)
        policy = result.policy
        assert policy.point_cloud_precision <= policy.map_to_planner_precision + 1e-9
        assert policy.octomap_volume <= policy.map_to_planner_volume + 1e-9
        assert policy.point_cloud_precision <= max(profile.gap_avg, 0.3) + 1e-9

    def test_open_space_forces_coarse_precision(self):
        solver = KnobSolver()
        result = solver.solve(5.0, make_profile(**OPEN_SPACE))
        assert result.policy.point_cloud_precision >= 4.8

    def test_congested_space_forces_fine_precision(self):
        solver = KnobSolver()
        result = solver.solve(5.0, make_profile(**CONGESTED))
        assert result.policy.point_cloud_precision <= 1.2

    def test_larger_budget_never_reduces_volume(self):
        solver = KnobSolver()
        profile = make_profile(**CONGESTED)
        small = solver.solve(0.5, profile)
        large = solver.solve(6.0, profile)
        small_total = small.policy.octomap_volume + small.policy.planner_volume
        large_total = large.policy.octomap_volume + large.policy.planner_volume
        assert large_total >= small_total - 1e-6

    def test_predicted_latency_close_to_budget_when_feasible(self):
        solver = KnobSolver()
        result = solver.solve(4.0, make_profile(**CONGESTED))
        assert result.feasible
        assert result.predicted_latency <= 4.0 + 0.5

    def test_open_space_latency_is_tiny(self):
        solver = KnobSolver()
        result = solver.solve(10.0, make_profile(**OPEN_SPACE))
        assert result.predicted_latency < 1.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            KnobSolver().solve(-1.0, make_profile())

    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.4, max_value=25.0),
        st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_solver_always_returns_valid_policy(self, budget, gap_avg, closest):
        profile = make_profile(gap_min=min(0.5, gap_avg), gap_avg=gap_avg, closest_obstacle=closest)
        result = KnobSolver().solve(budget, profile)
        limits = KnobLimits()
        policy = result.policy
        assert limits.precision_min <= policy.point_cloud_precision <= limits.precision_max
        assert policy.octomap_volume <= limits.octomap_volume_max + 1e-6
        assert policy.planner_volume <= limits.planner_volume_max + 1e-6

    def test_fill_volumes_restarts_stage_one_from_raised_floor(self):
        # Regression: stage 0 raises v1 in lockstep with v0 (to keep v0 <= v1).
        # The stale-floor bug restarted stage 1's greedy fill from the
        # *original* v1 floor, so its trial grid sat mostly below the already
        # raised value and the remaining budget was left unused.  With the
        # per-stage floors the fill continues from where stage 0 left v1.
        limits = KnobLimits(
            octomap_volume_max=80_000.0,
            map_to_planner_volume_max=100_000.0,
            planner_volume_max=150_000.0,
        )
        config = SolverConfig(volume_steps=2)
        solver = KnobSolver(limits=limits, config=config)
        profile = make_profile(sensor_volume=500_000.0)
        model = solver.latency_model

        def predicted(v0, v1, v2):
            return (
                model.stage_latency(STAGE_PERCEPTION, 0.3, v0)
                + model.stage_latency(STAGE_PERCEPTION_TO_PLANNING, 0.3, v1)
                + model.stage_latency(STAGE_PLANNING, 0.3, v2)
            )

        # v0 fills to its 80k ceiling, dragging v1 with it.  The correct
        # stage-1 grid from the raised floor is {90k, 100k}; the target admits
        # 90k but not 100k, so the fixed fill must land v1 strictly above v0.
        v2_floor = 150_000.0
        target = predicted(80_000.0, 90_000.0, v2_floor) + 1e-9
        policy, latency = solver._fill_volumes(0.3, 0.3, target, profile)
        assert policy.octomap_volume == pytest.approx(80_000.0)
        assert policy.map_to_planner_volume == pytest.approx(90_000.0)
        assert policy.map_to_planner_volume > policy.octomap_volume
        assert latency <= target

    def test_fill_volumes_overshoot_guard_holds_at_zero_latency(self):
        # Regression: the `current > 0` clause let a zero-latency start grow
        # volumes arbitrarily far past the target.  With zero floors and a
        # zero target, every growth step overshoots and must be rejected.
        config = SolverConfig(min_octomap_volume=0.0, min_planner_volume=0.0)
        solver = KnobSolver(config=config)
        policy, latency = solver._fill_volumes(0.3, 0.3, 0.0, make_profile())
        assert policy.octomap_volume == 0.0
        assert policy.map_to_planner_volume == 0.0
        assert policy.planner_volume == 0.0
        assert latency == 0.0

    def test_tie_break_prefers_finer_precision_and_full_volumes(self):
        # With a zero-cost latency model every candidate has an identical
        # objective, so the documented tie-breaks decide: finer precision
        # first, then larger total volume (the greedy fill reaches every
        # ceiling because nothing ever overshoots the target).
        zero = StageLatencyModel(q0=0.0, q1=0.0, q2=0.0, q3=0.0)
        model = PipelineLatencyModel(
            stages={stage: zero for stage in SOLVER_STAGES}, fixed_overhead_s=0.0
        )
        solver = KnobSolver(latency_model=model)
        profile = make_profile(
            gap_min=0.3, gap_avg=30.0, closest_obstacle=40.0, sensor_volume=200_000.0
        )
        result = solver.solve(5.0, profile)
        assert result.feasible
        policy = result.policy
        limits = KnobLimits()
        assert policy.point_cloud_precision == pytest.approx(0.3)
        assert policy.map_to_planner_precision == pytest.approx(0.3)
        assert policy.octomap_volume == pytest.approx(limits.octomap_volume_max)
        assert policy.map_to_planner_volume == pytest.approx(200_000.0)
        assert policy.planner_volume == pytest.approx(limits.planner_volume_max)


class TestGovernor:
    def test_open_space_gets_high_velocity_cap(self):
        governor = Governor(max_velocity=2.5)
        decision = governor.decide(make_profile(**OPEN_SPACE))
        assert decision.velocity_cap == pytest.approx(2.5, abs=0.2)

    def test_congested_space_gets_lower_velocity_cap(self):
        governor = Governor(max_velocity=2.5)
        open_cap = governor.decide(make_profile(**OPEN_SPACE)).velocity_cap
        tight_cap = governor.decide(make_profile(**CONGESTED)).velocity_cap
        assert tight_cap < open_cap

    def test_budget_positive_and_bounded(self):
        governor = Governor()
        decision = governor.decide(make_profile(**CONGESTED))
        assert 0.0 <= decision.time_budget <= governor.budgeter.max_budget_s

    def test_decision_records_profile(self):
        governor = Governor()
        profile = make_profile()
        decision = governor.decide(profile)
        assert decision.profile is profile
        assert decision.solver_feasible in (True, False)

    def test_trajectory_feeds_algorithm_1(self):
        governor = Governor()
        trajectory = Trajectory(
            [
                TrajectoryPoint(0.0, Vec3(0, 0, 5), Vec3(2.5, 0, 0)),
                TrajectoryPoint(4.0, Vec3(10, 0, 5), Vec3(2.5, 0, 0)),
            ]
        )
        with_traj = governor.decide(make_profile(**CONGESTED, trajectory=trajectory))
        without = governor.decide(make_profile(**CONGESTED))
        # Fast planned waypoints can only shrink (never extend) the budget.
        assert with_traj.time_budget <= without.time_budget + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            Governor(max_velocity=0.0)
        with pytest.raises(ValueError):
            Governor(velocity_safety_factor=0.5)
