"""Tests for knob policies, Table I profilers, operators, compute models and runtimes."""

import pytest

from repro.compute.costs import KernelWork, WorkloadCostModel
from repro.compute.latency_model import (
    DEFAULT_STAGE_MODELS,
    LatencyProfileSample,
    PipelineLatencyModel,
    STAGE_PERCEPTION,
    StageLatencyModel,
    fit_stage_model,
    model_mse,
)
from repro.compute.utilization import CpuUtilizationTracker
from repro.core.baseline import BaselineDesignPoint, SpatialObliviousRuntime
from repro.core.operators import OperatorSet, merge_work
from repro.core.policy import (
    DYNAMIC_PRECISION_MAX_M,
    DYNAMIC_PRECISION_MIN_M,
    KnobLimits,
    KnobPolicy,
    STATIC_BASELINE_POLICY,
)
from repro.core.profilers import ProfilerSuite
from repro.core.runtime import RoboRunRuntime
from repro.environment.world import Obstacle, World
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloudKernel
from repro.sensors.rig import CameraRig
from repro.sensors.state_sensors import StateEstimate


class TestKnobPolicy:
    def test_table_2_static_values(self):
        policy = STATIC_BASELINE_POLICY
        assert policy.point_cloud_precision == 0.3
        assert policy.map_to_planner_precision == 0.3
        assert policy.octomap_volume == 46_000.0
        assert policy.map_to_planner_volume == 150_000.0
        assert policy.planner_volume == 150_000.0
        assert policy.planning_precision == policy.map_to_planner_precision

    def test_table_2_dynamic_ranges(self):
        limits = KnobLimits()
        assert limits.precision_min == DYNAMIC_PRECISION_MIN_M == 0.3
        assert limits.precision_max == DYNAMIC_PRECISION_MAX_M == 9.6
        assert limits.octomap_volume_max == 60_000.0
        assert limits.map_to_planner_volume_max == 1_000_000.0
        assert limits.planner_volume_max == 1_000_000.0

    def test_precision_ladder_is_power_of_two(self):
        ladder = KnobLimits().precision_ladder()
        assert ladder[0] == 0.3
        assert ladder[-1] <= 9.6
        for a, b in zip(ladder, ladder[1:]):
            assert b == pytest.approx(2 * a)

    def test_policy_constraint_validation(self):
        with pytest.raises(ValueError):
            KnobPolicy(1.2, 0.6, 1000, 2000, 3000)  # p0 > p1
        with pytest.raises(ValueError):
            KnobPolicy(0.3, 0.3, 5000, 2000, 3000)  # v0 > v1

    def test_clamp_policy(self):
        limits = KnobLimits()
        wild = KnobPolicy(0.3, 9.6, 59_000, 2_000_000, 5_000_000)
        clamped = limits.clamp_policy(wild)
        assert clamped.map_to_planner_volume <= limits.map_to_planner_volume_max
        assert clamped.planner_volume <= limits.planner_volume_max

    def test_as_dict_and_with_helpers(self):
        policy = STATIC_BASELINE_POLICY
        assert set(policy.as_dict()) == {
            "point_cloud_precision",
            "map_to_planner_precision",
            "octomap_volume",
            "map_to_planner_volume",
            "planner_volume",
        }
        finer = policy.with_precision(0.3, 0.6)
        assert finer.map_to_planner_precision == 0.6


class TestProfilers:
    def build_scene(self):
        bounds = AABB(Vec3(-50, -50, 0), Vec3(100, 50, 30))
        world = World(bounds)
        world.add_obstacle(Obstacle(AABB.from_center(Vec3(10, 2, 10), Vec3(2, 2, 20))))
        world.add_obstacle(Obstacle(AABB.from_center(Vec3(10, -4, 10), Vec3(2, 2, 20))))
        rig = CameraRig(width=9, height=7, max_range=40.0)
        scan = rig.capture(world, Vec3(0, 0, 5))
        cloud = PointCloudKernel().process(scan, resolution=0.6)
        octree = OccupancyOctree(vox_min=0.3)
        octree.insert_point_cloud(cloud)
        return rig, scan, cloud, octree

    def test_profile_produces_every_table_1_variable(self):
        rig, scan, cloud, octree = self.build_scene()
        suite = ProfilerSuite()
        state = StateEstimate(0.0, Vec3(0, 0, 5), Vec3(1, 0, 0))
        profile = suite.profile(
            timestamp=0.0,
            state=state,
            cloud=cloud,
            scan=scan,
            octree=octree,
            trajectory=None,
            rig_max_volume=rig.max_sensor_volume(),
        )
        # Table I rows: gaps, closest obstacle, closest unknown, sensor/map
        # volume, velocity, position, trajectory.
        assert profile.gap_min > 0
        assert profile.gap_avg >= profile.gap_min
        assert 0 < profile.closest_obstacle <= suite.max_visibility
        assert profile.closest_unknown >= 0
        assert 0 < profile.visibility <= suite.max_visibility
        assert profile.sensor_volume > 0
        assert profile.map_volume > 0
        assert profile.velocity == pytest.approx(1.0)
        assert profile.position == Vec3(0, 0, 5)
        assert profile.trajectory is None

    def test_gap_statistics_near_vs_open(self):
        rig, scan, cloud, octree = self.build_scene()
        suite = ProfilerSuite()
        near_min, near_avg = suite.gap_statistics(cloud)
        empty_cloud = PointCloudKernel.from_points(Vec3(0, 0, 5), [], resolution=0.6)
        open_min, open_avg = suite.gap_statistics(empty_cloud)
        assert near_avg < open_avg
        assert open_min == suite.open_space_gap

    def test_visibility_limited_by_obstacle(self):
        rig, scan, cloud, octree = self.build_scene()
        suite = ProfilerSuite()
        visibility = suite.visibility(scan, closest_unknown=40.0)
        assert visibility < 15.0

    def test_closest_obstacle_falls_back_to_map(self):
        _, _, _, octree = self.build_scene()
        suite = ProfilerSuite()
        empty_cloud = PointCloudKernel.from_points(Vec3(0, 0, 5), [], resolution=0.6)
        d = suite.closest_obstacle(empty_cloud, octree, Vec3(0, 0, 5))
        assert 0 < d <= suite.max_visibility


class TestComputeModels:
    def test_workload_latencies_scale_with_work(self):
        model = WorkloadCostModel()
        light = KernelWork(pixels_converted=100, map_cells_updated=100)
        heavy = KernelWork(pixels_converted=100, map_cells_updated=10_000)
        assert model.octomap_latency(heavy) > model.octomap_latency(light)
        assert model.end_to_end_latency(heavy, True) > model.end_to_end_latency(light, True)

    def test_stage_breakdown_keys_and_runtime_overhead(self):
        model = WorkloadCostModel()
        work = KernelWork(pixels_converted=500, map_cells_updated=1000, planner_iterations=50)
        aware = model.stage_latencies(work, spatial_aware=True)
        oblivious = model.stage_latencies(work, spatial_aware=False)
        assert aware["runtime"] == pytest.approx(model.runtime_overhead_s)
        assert oblivious["runtime"] == 0.0
        assert set(aware) >= {"point_cloud", "octomap", "piecewise_planning", "comm_planning"}

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            KernelWork(pixels_converted=-1)

    def test_merge_work_sums(self):
        merged = merge_work(
            KernelWork(pixels_converted=10, planner_iterations=5),
            KernelWork(pixels_converted=20, view_cells=7),
        )
        assert merged.pixels_converted == 30
        assert merged.planner_iterations == 5
        assert merged.view_cells == 7

    def test_eq4_latency_model_shape(self):
        model = DEFAULT_STAGE_MODELS[STAGE_PERCEPTION]
        fine = model.latency(0.3, 46_000.0)
        coarse = model.latency(9.6, 46_000.0)
        assert fine > coarse
        assert model.latency(0.3, 92_000.0) == pytest.approx(2 * fine)

    def test_fit_stage_model_recovers_latencies(self):
        true_model = StageLatencyModel(q0=1e-3, q1=1e-4, q2=1e-5, q3=1e-3)
        samples = [
            LatencyProfileSample(p, v, true_model.latency(p, v))
            for p in (0.3, 0.6, 1.2, 2.4, 4.8, 9.6)
            for v in (10_000.0, 46_000.0, 150_000.0)
        ]
        fitted = fit_stage_model(samples)
        assert model_mse(fitted, samples) < 0.01

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_stage_model([LatencyProfileSample(0.3, 1000.0, 1.0)])

    def test_pipeline_model_end_to_end(self):
        model = PipelineLatencyModel.default()
        precisions = {s: 0.3 for s in ("perception", "perception_to_planning", "planning")}
        volumes = {
            "perception": 46_000.0,
            "perception_to_planning": 150_000.0,
            "planning": 150_000.0,
        }
        total = model.end_to_end(precisions, volumes)
        assert total > 1.0  # worst-case static latency lands in the seconds range

    def test_cpu_utilization_tracker(self):
        tracker = CpuUtilizationTracker(sensor_period_s=0.5)
        tracker.record_decision(0, busy_seconds=0.25)
        tracker.record_decision(1, busy_seconds=1.0)
        assert tracker.mean_utilization() == pytest.approx((0.5 + 1.0) / 2)
        assert tracker.total_busy_seconds() == pytest.approx(1.25)
        assert tracker.headroom() == pytest.approx(1 - (0.5 + 1.0) / 2)


class TestOperators:
    def make_scene(self):
        bounds = AABB(Vec3(-50, -50, 0), Vec3(150, 50, 30))
        world = World(bounds)
        world.add_obstacle(Obstacle(AABB.from_center(Vec3(15, 0, 10), Vec3(2, 2, 20))))
        rig = CameraRig(width=9, height=7, max_range=40.0)
        return world, rig, bounds

    def test_perception_respects_precision_and_volume_knobs(self):
        world, rig, _ = self.make_scene()
        scan = rig.capture(world, Vec3(0, 0, 5))
        fine_ops = OperatorSet()
        coarse_ops = OperatorSet()
        fine_policy = KnobPolicy(0.3, 0.3, 60_000, 1_000_000, 1_000_000)
        coarse_policy = KnobPolicy(4.8, 4.8, 60_000, 1_000_000, 1_000_000)
        fine_out = fine_ops.run_perception(scan, fine_policy)
        coarse_out = coarse_ops.run_perception(scan, coarse_policy)
        assert len(coarse_out.cloud) <= len(fine_out.cloud)
        assert coarse_out.work.map_cells_updated <= fine_out.work.map_cells_updated

    def test_planning_builds_view_and_trajectory(self):
        world, rig, bounds = self.make_scene()
        ops = OperatorSet()
        scan = rig.capture(world, Vec3(0, 0, 5))
        policy = KnobPolicy(0.6, 0.6, 60_000, 1_000_000, 1_000_000)
        ops.run_perception(scan, policy)
        out = ops.run_planning(
            policy=policy,
            start=Vec3(0, 0, 5),
            goal=Vec3(60, 0, 5),
            bounds=bounds,
            replan=True,
            previous_trajectory=None,
            start_time=0.0,
            velocity_cap=2.0,
        )
        assert out.plan is not None and out.plan.success
        assert out.trajectory is not None
        assert out.trajectory.max_speed() <= 2.0 + 1e-6
        assert out.work.planner_iterations > 0
        assert ops.plan_count == 1

    def test_planning_skips_replan_when_tracking(self):
        world, rig, bounds = self.make_scene()
        ops = OperatorSet()
        scan = rig.capture(world, Vec3(0, 0, 5))
        policy = KnobPolicy(0.6, 0.6, 60_000, 1_000_000, 1_000_000)
        ops.run_perception(scan, policy)
        first = ops.run_planning(policy, Vec3(0, 0, 5), Vec3(60, 0, 5), bounds, True, None, 0.0, 2.0)
        second = ops.run_planning(
            policy, Vec3(1, 0, 5), Vec3(60, 0, 5), bounds, False, first.trajectory, 1.0, 2.0
        )
        assert second.plan is None
        assert second.trajectory is first.trajectory
        assert ops.plan_count == 1


class TestRuntimes:
    def make_profile(self, **overrides):
        from tests.core.test_budget_solver_governor import make_profile

        return make_profile(**overrides)

    def test_baseline_is_static_across_decisions(self):
        baseline = SpatialObliviousRuntime()
        open_decision = baseline.decide(self.make_profile(gap_min=25.0, gap_avg=25.0))
        tight_decision = baseline.decide(self.make_profile(gap_min=0.6, gap_avg=1.0))
        assert open_decision.policy == tight_decision.policy == STATIC_BASELINE_POLICY
        assert open_decision.velocity_cap == tight_decision.velocity_cap
        assert open_decision.time_budget == tight_decision.time_budget

    def test_baseline_design_velocity_is_conservative(self):
        baseline = SpatialObliviousRuntime()
        assert 0.1 <= baseline.design_velocity <= 1.5
        assert baseline.design_latency > 1.0

    def test_baseline_worst_case_assumptions_matter(self):
        optimistic = SpatialObliviousRuntime(
            design_point=BaselineDesignPoint(worst_case_visibility=30.0)
        )
        pessimistic = SpatialObliviousRuntime(
            design_point=BaselineDesignPoint(worst_case_visibility=5.0)
        )
        assert optimistic.design_velocity >= pessimistic.design_velocity

    def test_roborun_adapts_policy_to_space(self):
        runtime = RoboRunRuntime()
        open_decision = runtime.decide(
            self.make_profile(gap_min=25.0, gap_avg=25.0, closest_obstacle=40.0, visibility=40.0)
        )
        tight_decision = runtime.decide(
            self.make_profile(gap_min=0.6, gap_avg=1.2, closest_obstacle=3.0, visibility=5.0)
        )
        assert (
            open_decision.policy.point_cloud_precision
            > tight_decision.policy.point_cloud_precision
        )
        assert open_decision.velocity_cap >= tight_decision.velocity_cap
        assert len(runtime.decisions) == 2
        assert len(runtime.precision_trace()) == 2
        assert len(runtime.budget_trace()) == 2

    def test_roborun_reset_clears_trace(self):
        runtime = RoboRunRuntime()
        runtime.decide(self.make_profile())
        runtime.reset()
        assert runtime.decisions == []
