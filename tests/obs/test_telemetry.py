"""Campaign telemetry: heartbeats, runtime tables, live progress.

The contract has two halves: with telemetry ON, heartbeats flow from every
worker (serial or pooled) into the JSONL file, the progress hook and the
report's runtime table; with telemetry OFF (the default), campaigns take
exactly the pre-obs code path and their trace files are byte-identical to
a telemetry-enabled run.
"""

import json

import pytest

from repro import (
    CampaignRunner,
    CampaignReport,
    EnvironmentConfig,
    MissionConfig,
    ScenarioSpec,
)
from repro.obs.heartbeat import (
    HEARTBEAT_FILE,
    HeartbeatEmitter,
    HeartbeatRecord,
    ListSink,
    peak_rss_mb,
    read_heartbeats,
    runtime_summary,
    write_heartbeats,
)
from repro.report import _ProgressLine

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.15, obstacle_spread=25.0, goal_distance=30.0, seed=11
)
TINY_CFG = MissionConfig(max_decisions=3, max_mission_time_s=30.0)


def _specs(count=2):
    return [
        ScenarioSpec(
            name=f"tele-{i}", environment=TINY_ENV, mission=TINY_CFG
        ).seeded(11 + i)
        for i in range(count)
    ]


class TestHeartbeatPrimitives:
    def test_record_round_trips_and_omits_empty_error(self):
        record = HeartbeatRecord(
            spec="s", status="done", seq=3, epoch=7, decisions=8,
            wall_elapsed_s=1.5, rss_mb=120.0, pid=42,
        )
        data = record.to_dict()
        assert "error" not in data
        assert HeartbeatRecord.from_dict(json.loads(json.dumps(data))) == record
        errored = HeartbeatRecord(
            spec="s", status="error", seq=4, epoch=7, decisions=8,
            wall_elapsed_s=1.6, rss_mb=120.0, pid=42, error="ValueError: no",
        )
        assert errored.to_dict()["error"] == "ValueError: no"

    def test_peak_rss_is_positive_on_this_platform(self):
        assert peak_rss_mb() > 0

    def test_write_and_read_round_trip(self, tmp_path):
        sink = ListSink()
        emitter = HeartbeatEmitter("spec-a", sink, min_interval_s=0.0)
        emitter.emit("start")
        emitter.emit("done")
        path = write_heartbeats(sink.records, tmp_path / "t" / HEARTBEAT_FILE)
        records = read_heartbeats(path)
        assert [r.status for r in records] == ["start", "done"]
        assert [r.seq for r in records] == [0, 1]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "absent.jsonl") == []

    def test_runtime_summary_uses_last_record_per_spec(self):
        records = [
            HeartbeatRecord("a", "start", 0, -1, 0, 0.0, 10.0, 1),
            HeartbeatRecord("a", "running", 1, 4, 5, 2.0, 11.0, 1),
            HeartbeatRecord("a", "done", 2, 9, 10, 5.0, 12.0, 1),
            HeartbeatRecord("b", "error", 1, -1, 0, 0.5, 9.0, 2,
                            error="ValueError: boom"),
        ]
        summary = runtime_summary(records)
        assert summary["a"]["status"] == "done"
        assert summary["a"]["decisions"] == 10
        assert summary["a"]["decisions_per_sec"] == pytest.approx(2.0)
        assert summary["a"]["peak_rss_mb"] == 12.0
        assert summary["b"]["status"] == "error"
        assert summary["b"]["error"] == "ValueError: boom"

    def test_runtime_summary_prefers_arrival_order_over_seq(self):
        # An async retry restarts the emitter: the dead attempt got further
        # (higher seq) than the successful retry, but the retry's 'done'
        # arrived later and must win.
        records = [
            HeartbeatRecord("a", "running", 8, 30, 31, 9.0, 15.0, 1),
            HeartbeatRecord("a", "retry", 0, -1, 0, 9.5, 0.0, 99),
            HeartbeatRecord("a", "done", 2, 9, 10, 4.0, 12.0, 2),
        ]
        summary = runtime_summary(records)
        assert summary["a"]["status"] == "done"
        assert summary["a"]["decisions"] == 10


class TestCampaignTelemetry:
    def test_serial_campaign_writes_heartbeat_file(self, tmp_path):
        specs = _specs()
        CampaignRunner(max_workers=1).run(
            specs, telemetry_dir=tmp_path / "telemetry"
        )
        records = read_heartbeats(tmp_path / "telemetry" / HEARTBEAT_FILE)
        by_spec = {}
        for record in records:
            by_spec.setdefault(record.spec, []).append(record.status)
        assert set(by_spec) == {s.name for s in specs}
        for statuses in by_spec.values():
            assert statuses[0] == "start"
            assert statuses[-1] == "done"

    def test_parallel_campaign_streams_heartbeats(self, tmp_path):
        specs = _specs()
        CampaignRunner(max_workers=2).run(
            specs, telemetry_dir=tmp_path / "telemetry"
        )
        records = read_heartbeats(tmp_path / "telemetry" / HEARTBEAT_FILE)
        statuses = {(r.spec, r.status) for r in records}
        for spec in specs:
            assert (spec.name, "start") in statuses
            assert (spec.name, "done") in statuses

    def test_traces_identical_with_and_without_telemetry(self, tmp_path):
        specs = _specs()
        plain_dir = tmp_path / "plain"
        tele_dir = tmp_path / "tele"
        CampaignRunner(max_workers=1).run(specs, trace_dir=plain_dir)
        CampaignRunner(max_workers=2).run(
            specs, trace_dir=tele_dir, telemetry_dir=tele_dir / "telemetry"
        )
        plain = sorted(p.name for p in plain_dir.glob("*.jsonl"))
        tele = sorted(p.name for p in tele_dir.glob("*.jsonl"))
        assert plain == tele and plain
        for name in plain:
            assert (plain_dir / name).read_bytes() == (
                tele_dir / name
            ).read_bytes(), f"telemetry perturbed trace {name}"

    def test_rerun_into_same_telemetry_dir_replaces_heartbeats(self, tmp_path):
        """Regression: write_heartbeats appends, so without the campaign-start
        sweep a re-run would accumulate the previous run's records and
        runtime_summary would report stale totals."""
        specs = _specs()
        telemetry_dir = tmp_path / "telemetry"
        CampaignRunner(max_workers=1).run(specs, telemetry_dir=telemetry_dir)
        first = read_heartbeats(telemetry_dir / HEARTBEAT_FILE)
        CampaignRunner(max_workers=1).run(specs, telemetry_dir=telemetry_dir)
        second = read_heartbeats(telemetry_dir / HEARTBEAT_FILE)
        assert len(second) == len(first)  # not len(first) + len(second run)
        summary = runtime_summary(second)
        assert set(summary) == {s.name for s in specs}

    def test_pool_drain_sentinel_never_reaches_the_heartbeat_file(self, tmp_path):
        specs = _specs()
        telemetry_dir = tmp_path / "telemetry"
        CampaignRunner(max_workers=2).run(specs, telemetry_dir=telemetry_dir)
        for record in read_heartbeats(telemetry_dir / HEARTBEAT_FILE):
            assert record.status in (
                "start", "running", "done", "error", "timeout", "retry"
            )

    def test_no_telemetry_by_default(self, tmp_path):
        CampaignRunner(max_workers=1).run(_specs(1), trace_dir=tmp_path)
        assert not (tmp_path / "telemetry").exists()

    def test_progress_hook_receives_heartbeats(self):
        seen = []
        CampaignRunner(max_workers=1).run(_specs(1), progress=seen.append)
        assert [r["status"] for r in seen][0] == "start"
        assert [r["status"] for r in seen][-1] == "done"

    def test_failing_spec_emits_error_heartbeat(self, monkeypatch):
        def exploding_run(self, recorder=None, taps=()):
            for tap in taps:
                pass
            raise RuntimeError("mid-air collision with a test")

        monkeypatch.setattr(ScenarioSpec, "run", exploding_run)
        seen = []
        CampaignRunner(max_workers=1).run(_specs(1), progress=seen.append)
        error = [r for r in seen if r["status"] == "error"]
        assert len(error) == 1
        assert "RuntimeError" in error[0]["error"]


class TestReportIntegration:
    def test_runtime_table_folds_into_the_report(self, tmp_path):
        specs = _specs()
        CampaignRunner(max_workers=1).run(
            specs,
            trace_dir=tmp_path,
            telemetry_dir=tmp_path / "telemetry",
        )
        report = CampaignReport.from_trace_dir(tmp_path)
        table = report.runtime_table()
        assert [row[0] for row in table.rows] == sorted(s.name for s in specs)
        status_col = table.columns.index("status")
        assert all(row[status_col] == "done" for row in table.rows)
        markdown = report.to_markdown(title="t")
        assert "## Runtime (campaign telemetry)" in markdown

    def test_report_without_telemetry_has_no_runtime_section(self, tmp_path):
        CampaignRunner(max_workers=1).run(_specs(1), trace_dir=tmp_path)
        report = CampaignReport.from_trace_dir(tmp_path)
        assert report.runtime_table().rows == []
        assert "Runtime (campaign telemetry)" not in report.to_markdown(title="t")

    def test_runtime_csv_is_written(self, tmp_path):
        CampaignRunner(max_workers=1).run(
            _specs(1),
            trace_dir=tmp_path,
            telemetry_dir=tmp_path / "telemetry",
        )
        report = CampaignReport.from_trace_dir(tmp_path)
        written = report.write_csvs(tmp_path / "csv")
        assert any(p.name == "runtime.csv" for p in written)


class TestProgressLine:
    def _record(self, status, spec="s", epoch=3):
        return {"status": status, "spec": spec, "epoch": epoch, "rss_mb": 50.0}

    def test_counts_done_and_failed(self):
        line = _ProgressLine(total_specs=3)
        line(self._record("start"))
        line(self._record("done"))
        line(self._record("error"))
        assert line.done == 2
        assert line.failed == 1

    def test_silent_when_stderr_is_not_a_tty(self, capsys):
        line = _ProgressLine(total_specs=1)
        line(self._record("done"))
        line.close()
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_renders_on_a_tty(self, monkeypatch, capsys):
        import repro.report as report_module

        class _TtyStderr:
            def __init__(self):
                self.buffer = []

            def isatty(self):
                return True

            def write(self, text):
                self.buffer.append(text)

            def flush(self):
                pass

        fake = _TtyStderr()
        monkeypatch.setattr(report_module.sys, "stderr", fake)
        line = _ProgressLine(total_specs=2)
        line(self._record("done", spec="alpha"))
        line.close()
        text = "".join(fake.buffer)
        assert "[1/2] alpha" in text
        assert text.endswith("\n")
