"""MetricsRegistry: instruments, snapshot round-trip, Prometheus rendering."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_PREFIX,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("dispatches_total")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_tracks_peak(self):
        g = MetricsRegistry().gauge("queue_depth")
        for v in (3, 9, 2):
            g.set(v)
        assert g.value == 2
        assert g.peak == 9
        assert g.samples == 3

    def test_histogram_buckets_and_mean(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.mean == pytest.approx(6.05 / 4)

    def test_histogram_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are cumulative upper bounds (le): an observation
        # equal to a bound belongs to that bound's bucket.
        h = MetricsRegistry().histogram("edge", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"drone": "0"})
        b = registry.counter("c", labels={"drone": "0"})
        other = registry.counter("c", labels={"drone": "1"})
        assert a is b
        assert a is not other
        assert len(registry) == 2

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("dispatches_total", help="deliveries").inc(7)
        registry.gauge("queue_depth", labels={"drone": "drone0"}).set(4)
        h = registry.histogram("stage_seconds", unit="s", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.5)
        return registry

    def test_snapshot_round_trips_through_json(self):
        registry = self._populated()
        payload = json.dumps(registry.snapshot(), sort_keys=True)
        rebuilt = MetricsRegistry.from_snapshot(json.loads(payload))
        assert rebuilt.snapshot() == registry.snapshot()
        assert json.dumps(rebuilt.snapshot(), sort_keys=True) == payload

    def test_snapshot_is_deterministically_ordered(self):
        a = MetricsRegistry()
        a.counter("b").inc()
        a.counter("a").inc()
        b = MetricsRegistry()
        b.counter("a").inc()
        b.counter("b").inc()
        assert a.snapshot() == b.snapshot()

    def test_write_snapshot(self, tmp_path):
        path = self._populated().write_snapshot(tmp_path / "deep" / "m.json")
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert {m["name"] for m in data["metrics"]} == {
            "dispatches_total", "queue_depth", "stage_seconds",
        }


class TestPrometheus:
    def test_rendering_shape(self):
        registry = MetricsRegistry()
        registry.counter(
            "dispatches_total", help="deliveries", labels={"drone": "drone0"}
        ).inc(5)
        text = registry.to_prometheus()
        assert f"# HELP {PROMETHEUS_PREFIX}dispatches_total deliveries" in text
        assert f"# TYPE {PROMETHEUS_PREFIX}dispatches_total counter" in text
        assert 'repro_dispatches_total{drone="drone0"} 5' in text
        assert text.endswith("\n")

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry.to_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_sum 0.55" in text
        assert "repro_lat_seconds_count 2" in text

    def test_exposition_is_parseable_line_format(self):
        """Every non-comment line is `name{labels} value` with a float value."""
        registry = MetricsRegistry()
        registry.counter("a_total", labels={"x": "1"}).inc()
        registry.gauge("b").set(2.5)
        registry.histogram("c", buckets=DEFAULT_BUCKETS).observe(0.3)
        for line in registry.to_prometheus().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part.startswith(PROMETHEUS_PREFIX)
            assert value_part == "+Inf" or not math.isnan(float(value_part))

    def test_invalid_metric_name_characters_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("comm.point-cloud").inc()
        assert "repro_comm_point_cloud 1" in registry.to_prometheus()
