"""``python -m repro.profile``: artefacts, spec selection, failure modes."""

import json

import pytest

from repro.obs.tap import ObsTap
from repro.obs.tracer import validate_chrome_trace
from repro.profile import build_parser, hotspot_table, main

TINY_GRID = {
    "specs": [
        {
            "name": "profile-tiny",
            "design": "roborun",
            "environment": {
                "obstacle_density": 0.15,
                "obstacle_spread": 25.0,
                "goal_distance": 30.0,
                "seed": 5,
            },
            "mission": {"max_decisions": 3, "max_mission_time_s": 30.0},
        },
        {
            "name": "profile-tiny-baseline",
            "design": "spatial_oblivious",
            "environment": {
                "obstacle_density": 0.15,
                "obstacle_spread": 25.0,
                "goal_distance": 30.0,
                "seed": 5,
            },
            "mission": {"max_decisions": 2, "max_mission_time_s": 30.0},
        },
    ]
}


@pytest.fixture()
def grid_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(TINY_GRID))
    return path


class TestMain:
    def test_produces_all_artefacts(self, grid_file, tmp_path, caplog):
        out_dir = tmp_path / "out"
        code = main([str(grid_file), "--out-dir", str(out_dir)])
        assert code == 0
        trace = out_dir / "profile-tiny_trace.json"
        metrics = out_dir / "profile-tiny_metrics.json"
        prom = out_dir / "profile-tiny_metrics.prom"
        assert trace.exists() and metrics.exists() and prom.exists()
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema_version"] == 1
        assert "# TYPE repro_decisions_total counter" in prom.read_text()

    def test_hotspot_table_is_logged(self, grid_file, tmp_path, capsys):
        code = main([str(grid_file), "--out-dir", str(tmp_path / "o")])
        assert code == 0
        out = capsys.readouterr().out
        assert "| span |" in out
        assert "decision" in out

    def test_spec_selection_by_name(self, grid_file, tmp_path):
        out_dir = tmp_path / "o"
        code = main([
            str(grid_file), "--spec", "profile-tiny-baseline",
            "--out-dir", str(out_dir),
        ])
        assert code == 0
        assert (out_dir / "profile-tiny-baseline_trace.json").exists()

    def test_unknown_spec_fails_listing_choices(self, grid_file, tmp_path, capsys):
        code = main([str(grid_file), "--spec", "nope", "--out-dir", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "profile-tiny" in out
        assert not list(tmp_path.glob("*_trace.json"))

    def test_list_flies_nothing(self, grid_file, tmp_path, capsys):
        code = main([str(grid_file), "--list", "--out-dir", str(tmp_path / "o")])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile-tiny" in out
        assert "profile-tiny-baseline" in out
        assert not (tmp_path / "o").exists()

    def test_empty_grid_fails(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"specs": []}))
        assert main([str(empty)]) == 1


class TestHotspotTable:
    def test_ranked_by_total_and_capped(self):
        tap = ObsTap()
        slow = tap.tracer.begin("slow")
        for _ in range(3):
            fast = tap.tracer.begin("fast")
            tap.tracer.end(fast)
        tap.tracer.end(slow)
        table = hotspot_table(tap, top=1)
        assert table.columns == ["span", "count", "total_ms", "mean_ms", "max_ms"]
        assert len(table.rows) == 1
        assert table.rows[0][0] == "slow"

    def test_parser_defaults(self):
        args = build_parser().parse_args(["grid.json"])
        assert args.top == 10
        assert args.spec is None
        assert not args.list
