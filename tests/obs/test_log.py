"""The logging discipline: one root logger, env knob, no stale streams."""

import logging

import pytest

from repro.obs.log import (
    LOG_LEVEL_ENV,
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    level_from_env,
)


@pytest.fixture(autouse=True)
def _reset_handlers():
    """Strip any CLI handler installed by a test so tests stay independent."""
    yield
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)


class TestGetLogger:
    def test_bare_name_nests_under_root(self):
        assert get_logger("report").name == "repro.report"

    def test_prefixed_name_passes_through(self):
        assert get_logger("repro.obs.tap").name == "repro.obs.tap"

    def test_empty_name_is_the_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME

    def test_root_has_null_handler(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestLevelFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert level_from_env() == logging.INFO

    def test_level_name(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        assert level_from_env() == logging.DEBUG

    def test_numeric_level(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "40")
        assert level_from_env() == logging.ERROR

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "LOUD")
        assert level_from_env() == logging.INFO


class TestConfigureLogging:
    def test_output_lands_on_current_stdout(self, capsys):
        configure_logging(level=logging.INFO)
        get_logger("test").info("hello from the obs logger")
        assert "hello from the obs logger" in capsys.readouterr().out

    def test_reconfigure_does_not_stack_handlers(self):
        configure_logging()
        configure_logging()
        root = logging.getLogger(ROOT_LOGGER_NAME)
        marked = [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1

    def test_env_knob_controls_level(self, monkeypatch, capsys):
        monkeypatch.setenv(LOG_LEVEL_ENV, "WARNING")
        configure_logging()
        log = get_logger("test")
        log.info("quiet")
        log.warning("loud")
        out = capsys.readouterr().out
        assert "quiet" not in out
        assert "loud" in out

    def test_library_is_silent_without_configuration(self, capsys):
        get_logger("test").info("library message")
        assert capsys.readouterr().out == ""
