"""The observability contract: strictly off the data path.

Two layers, mirroring ``tests/simulation/test_faults_backcompat.py``:

* **Fast** — on a small mission, a run with an :class:`ObsTap` attached
  produces a dispatch log, mission metrics and decision records that are
  *byte-identical* to an untapped run, while the tap itself yields a valid
  Chrome trace and a populated metrics registry.
* **Slow** — the benchmark-seed mission with the tap ENABLED still hashes
  to the pre-obs SHA-256 goldens, and a no-obs campaign reproduces the
  golden trace files bit for bit.
"""

import hashlib
import json

import pytest

from repro import (
    CampaignRunner,
    EnvironmentConfig,
    MissionConfig,
    MissionSimulator,
    ObsTap,
    RoboRunRuntime,
    ScenarioSpec,
    TraceRecorder,
    build_environment,
    scenario_grid,
)
from repro.obs.tracer import validate_chrome_trace
from tests.simulation.test_faults_backcompat import (
    GOLDEN_CFG,
    GOLDEN_DISPATCH_SHA,
    GOLDEN_ENV,
    GOLDEN_METRICS_SHA,
    GOLDEN_TRACE_SHA,
)

SMALL_ENV = EnvironmentConfig(
    obstacle_density=0.2, obstacle_spread=25.0, goal_distance=40.0, seed=3
)
SMALL_CFG = MissionConfig(max_decisions=8, max_mission_time_s=60.0)


def _run_small(tap=None, recorder=None):
    environment = build_environment(SMALL_ENV)
    simulator = MissionSimulator(environment, RoboRunRuntime(), SMALL_CFG)
    taps = (tap,) if tap is not None else ()
    return simulator.run(recorder=recorder, taps=taps)


class TestOffTheDataPath:
    """Tapped and untapped runs are indistinguishable on the data path."""

    def test_dispatch_log_and_metrics_identical_with_tap(self):
        baseline = _run_small()
        tapped = _run_small(tap=ObsTap())
        assert json.dumps(tapped.pipeline.dispatch_log()) == json.dumps(
            baseline.pipeline.dispatch_log()
        ), "attaching an ObsTap changed the message cascade"
        assert json.dumps(
            tapped.metrics.as_dict(), sort_keys=True
        ) == json.dumps(baseline.metrics.as_dict(), sort_keys=True)

    def test_decision_records_identical_with_tap(self):
        plain = TraceRecorder()
        _run_small(recorder=plain)
        taprec = TraceRecorder()
        _run_small(tap=ObsTap(), recorder=taprec)
        as_lines = lambda rec: [
            json.dumps(r.to_dict(), sort_keys=True) for r in rec.records
        ]
        assert as_lines(taprec) == as_lines(plain), (
            "an ObsTap must not perturb DecisionRecord bytes"
        )

    def test_repeated_tapped_runs_are_deterministic(self):
        a = _run_small(tap=ObsTap())
        b = _run_small(tap=ObsTap())
        assert json.dumps(a.pipeline.dispatch_log()) == json.dumps(
            b.pipeline.dispatch_log()
        )


class TestTapOutputs:
    """What the tap collects is well-formed and covers the mission."""

    def test_chrome_trace_validates_and_covers_all_nodes(self):
        tap = ObsTap()
        result = _run_small(tap=tap)
        tap.finish()
        document = tap.tracer.to_chrome_trace()
        assert validate_chrome_trace(document) == []
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "B"}
        assert {"mission", "decision"} <= names
        for node in ("sense", "profile", "governor", "perception",
                     "planning", "flight"):
            assert node in names, f"no span for pipeline node {node!r}"
        durations = tap.tracer.span_durations()
        assert durations["decision"]["count"] == result.metrics.decision_count

    def test_metrics_cover_the_catalogue(self):
        tap = ObsTap()
        result = _run_small(tap=tap)
        tap.finish()
        labels = {"drone": "drone0"}
        get = lambda name: tap.metrics.get(name, labels)
        assert get("decisions_total").value == result.metrics.decision_count
        assert get("executor_dispatches_total").value > 0
        assert get("solver_solves_total").value > 0
        assert get("planner_iterations_total").value > 0
        assert get("octree_occupied_voxels").peak > 0
        budget = tap.metrics.get("governor_time_budget_seconds", labels)
        assert budget.count == result.metrics.decision_count
        for stage_name in ("point_cloud", "octomap", "piecewise_planning",
                           "comm_point_cloud"):
            stage = tap.metrics.get(
                "pipeline_stage_seconds",
                {"drone": "drone0", "stage": stage_name},
            )
            assert stage is not None, f"no latency histogram for {stage_name}"
            assert stage.count == result.metrics.decision_count

    def test_snapshot_round_trips_and_prometheus_renders(self, tmp_path):
        tap = ObsTap()
        _run_small(tap=tap)
        tap.finish()
        paths = tap.export(tmp_path, stem="small")
        snapshot = json.loads(paths["metrics"].read_text())
        from repro import MetricsRegistry
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == tap.metrics.snapshot()
        prom = paths["prometheus"].read_text()
        assert "# TYPE repro_decisions_total counter" in prom
        trace = json.loads(paths["trace"].read_text())
        assert validate_chrome_trace(trace) == []

    def test_fleet_mission_gets_one_lane_per_drone(self):
        spec = ScenarioSpec(
            name="fleet-obs",
            environment=SMALL_ENV,
            mission=SMALL_CFG,
            n_drones=2,
        )
        tap = ObsTap()
        spec.run(taps=(tap,))
        tap.finish()
        assert {"drone0", "drone1"} <= set(tap.tracer.lanes)
        assert validate_chrome_trace(tap.tracer.to_chrome_trace()) == []


@pytest.mark.slow
class TestGoldenIdentity:
    """The benchmark-seed artefacts hash to the pre-obs goldens."""

    def test_tapped_golden_mission_matches_pre_obs_digests(self):
        environment = build_environment(GOLDEN_ENV)
        result = MissionSimulator(
            environment, RoboRunRuntime(), GOLDEN_CFG
        ).run(taps=(ObsTap(),))
        dispatch = json.dumps(result.pipeline.dispatch_log())
        metrics = json.dumps(result.metrics.as_dict(), sort_keys=True)
        assert hashlib.sha256(dispatch.encode()).hexdigest() == (
            GOLDEN_DISPATCH_SHA
        ), "an ENABLED ObsTap moved the golden dispatch log"
        assert hashlib.sha256(metrics.encode()).hexdigest() == (
            GOLDEN_METRICS_SHA
        ), "an ENABLED ObsTap moved the golden mission metrics"

    def test_no_obs_campaign_traces_still_bit_identical(self, tmp_path):
        specs = scenario_grid(
            "golden",
            densities=(0.3,),
            base_environment=GOLDEN_ENV,
            mission=GOLDEN_CFG,
            base_seed=7,
        )
        CampaignRunner(max_workers=1).run(
            specs, trace_dir=tmp_path, telemetry_dir=tmp_path / "telemetry"
        )
        produced = {p.name for p in tmp_path.glob("*.jsonl")}
        assert produced == set(GOLDEN_TRACE_SHA)
        for name, expected in GOLDEN_TRACE_SHA.items():
            digest = hashlib.sha256((tmp_path / name).read_bytes()).hexdigest()
            assert digest == expected, (
                f"campaign telemetry perturbed golden trace {name}"
            )
        assert (tmp_path / "telemetry" / "heartbeats.jsonl").exists()
