"""Tracer: span nesting, Chrome trace-event structure, validation."""

import json

import pytest

from repro.obs.tracer import Span, TRACE_PID, Tracer, validate_chrome_trace


def _events(tracer, phases=("B", "E")):
    return [e for e in tracer.events if e.get("ph") in phases]


class TestSpans:
    def test_begin_end_emits_balanced_pair(self):
        tracer = Tracer()
        span = tracer.begin("work", lane="drone0")
        duration = tracer.end(span)
        events = _events(tracer)
        assert [e["ph"] for e in events] == ["B", "E"]
        assert events[0]["name"] == events[1]["name"] == "work"
        assert duration >= 0
        assert events[1]["ts"] >= events[0]["ts"]

    def test_nesting_on_one_lane(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(outer)
        assert [e["name"] for e in _events(tracer)] == [
            "outer", "inner", "inner", "outer",
        ]

    def test_ending_outer_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("forgotten")
        tracer.end(outer)
        assert not validate_chrome_trace(tracer.to_chrome_trace())

    def test_end_unknown_span_raises(self):
        tracer = Tracer()
        span = tracer.begin("once")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_lanes_are_stable_and_distinct(self):
        tracer = Tracer()
        a = tracer.lane("drone0")
        b = tracer.lane("drone1")
        assert a != b
        assert tracer.lane("drone0") == a

    def test_finish_closes_everything_idempotently(self):
        tracer = Tracer()
        tracer.begin("open", lane="drone0")
        tracer.begin("open2", lane="drone1")
        tracer.finish()
        tracer.finish()
        assert not validate_chrome_trace(tracer.to_chrome_trace())


class TestChromeTraceDocument:
    def _sample(self):
        tracer = Tracer(process_name="spec-x")
        mission = tracer.begin("mission", lane="drone0")
        for i in range(3):
            decision = tracer.begin("decision", lane="drone0", args={"index": i})
            node = tracer.begin("sense", category="node", lane="drone0")
            tracer.end(node)
            tracer.end(decision)
        tracer.instant("fault", lane="drone0")
        tracer.counter("queue", {"depth": 2}, lane="drone0")
        tracer.end(mission)
        return tracer

    def test_document_envelope(self):
        doc = self._sample().to_chrome_trace()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_metadata_names_process_and_threads(self):
        doc = self._sample().to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"].get("name")) for e in meta}
        assert ("process_name", "spec-x") in names
        assert ("thread_name", "drone0") in names
        assert all(e["pid"] == TRACE_PID for e in meta)

    def test_validates_clean(self):
        assert validate_chrome_trace(self._sample().to_chrome_trace()) == []

    def test_write_chrome_trace(self, tmp_path):
        path = self._sample().write_chrome_trace(tmp_path / "t" / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_span_durations_aggregate(self):
        durations = self._sample().span_durations()
        assert durations["decision"]["count"] == 3
        assert durations["sense"]["count"] == 3
        assert durations["mission"]["count"] == 1
        assert durations["mission"]["total_us"] >= durations["decision"]["total_us"]


class TestValidator:
    def test_flags_unbalanced_begin(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        assert any("unclosed" in p for p in validate_chrome_trace(doc))

    def test_flags_end_without_begin(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        assert any("without matching B" in p for p in validate_chrome_trace(doc))

    def test_flags_backwards_timestamps(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        assert any("backwards" in p for p in validate_chrome_trace(doc))

    def test_flags_missing_envelope(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
