"""Tests for RRT*, smoothing, trajectories, control and dynamics/energy."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.flight_controller import FlightController
from repro.control.follower import PurePursuitFollower
from repro.control.pid import PIDController, PIDGains, Vec3PID
from repro.dynamics.drone import DroneState, QuadrotorKinematics
from repro.dynamics.energy import EnergyModel
from repro.dynamics.stopping import StoppingDistanceModel
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.planning_view import build_planning_view
from repro.planning.rrt_star import RRTStarConfig, RRTStarPlanner
from repro.planning.smoothing import PathSmoother, SmoothingConfig
from repro.planning.trajectory import Trajectory, TrajectoryPoint


def wall_view(gap_center_y=0.0, gap_width=4.0):
    """A wall at x=20 spanning y in [-15, 15] with a gap around ``gap_center_y``."""
    octree = OccupancyOctree(vox_min=0.3)
    y = -15.0
    while y <= 15.0:
        if abs(y - gap_center_y) > gap_width / 2.0:
            for z in (4.0, 5.0, 6.0):
                octree.mark_occupied(Vec3(20.0, y, z))
        y += 0.3
    return build_planning_view(octree, precision=0.3)


BOUNDS = AABB(Vec3(-5, -20, 2), Vec3(60, 20, 10))


class TestTrajectory:
    def make(self):
        return Trajectory(
            [
                TrajectoryPoint(0.0, Vec3(0, 0, 5), Vec3(1, 0, 0)),
                TrajectoryPoint(1.0, Vec3(1, 0, 5), Vec3(1, 0, 0)),
                TrajectoryPoint(3.0, Vec3(3, 0, 5), Vec3(1, 0, 0)),
            ]
        )

    def test_monotone_times_required(self):
        with pytest.raises(ValueError):
            Trajectory(
                [
                    TrajectoryPoint(1.0, Vec3(0, 0, 0), Vec3.zero()),
                    TrajectoryPoint(1.0, Vec3(1, 0, 0), Vec3.zero()),
                ]
            )

    def test_sampling_interpolates_and_clamps(self):
        traj = self.make()
        assert traj.position_at(-1.0) == Vec3(0, 0, 5)
        assert traj.position_at(10.0) == Vec3(3, 0, 5)
        assert traj.position_at(2.0) == Vec3(2, 0, 5)

    def test_lengths_and_speeds(self):
        traj = self.make()
        assert traj.length() == pytest.approx(3.0)
        assert traj.duration == pytest.approx(3.0)
        assert traj.mean_speed() == pytest.approx(1.0)
        assert traj.max_speed() == pytest.approx(1.0)

    def test_nearest_and_remaining(self):
        traj = self.make()
        nearest = traj.nearest_point_to(Vec3(1.2, 0.5, 5))
        assert nearest.position == Vec3(1, 0, 5)
        assert traj.remaining_length(1.0) == pytest.approx(2.0)

    def test_upcoming_waypoints(self):
        traj = self.make()
        upcoming = traj.upcoming_waypoints(0.5, 5)
        assert len(upcoming) == 2
        assert traj.upcoming_waypoints(10.0, 5) == []

    def test_hover(self):
        hover = Trajectory.hover(Vec3(1, 1, 1), start_time=2.0, duration=3.0)
        assert hover.length() == 0.0
        assert hover.duration == pytest.approx(3.0)


class TestRRTStar:
    def test_finds_path_through_gap(self):
        view = wall_view()
        planner = RRTStarPlanner(RRTStarConfig(seed=1, max_iterations=800))
        result = planner.plan(Vec3(0, 0, 5), Vec3(40, 0, 5), view, BOUNDS)
        assert result.success
        assert result.waypoints[0] == Vec3(0, 0, 5)
        assert result.waypoints[-1].distance_to(Vec3(40, 0, 5)) <= planner.config.goal_tolerance
        assert result.path_length >= 40.0 - planner.config.goal_tolerance
        assert result.collision_samples > 0
        # The found path never crosses the wall cells.
        for a, b in zip(result.waypoints, result.waypoints[1:]):
            assert not view.segment_in_collision(a, b)

    def test_empty_view_is_trivially_plannable(self):
        view = build_planning_view(OccupancyOctree(vox_min=0.3), precision=0.3)
        planner = RRTStarPlanner(RRTStarConfig(seed=2))
        result = planner.plan(Vec3(0, 0, 5), Vec3(30, 0, 5), view, BOUNDS)
        assert result.success

    def test_volume_monitor_stops_search(self):
        view = wall_view(gap_width=0.1)  # effectively no gap: the search cannot finish
        planner = RRTStarPlanner(
            RRTStarConfig(seed=3, max_iterations=2000, max_explored_volume=5_000.0)
        )
        result = planner.plan(Vec3(0, 0, 5), Vec3(40, 0, 5), view, BOUNDS)
        assert not result.success
        assert result.stopped_by_volume_monitor
        assert result.explored_volume >= 5_000.0

    def test_coarser_ray_step_probes_fewer_samples(self):
        view = wall_view()
        fine = RRTStarPlanner(RRTStarConfig(seed=4, collision_ray_step=0.3)).plan(
            Vec3(0, 0, 5), Vec3(40, 0, 5), view, BOUNDS
        )
        coarse = RRTStarPlanner(RRTStarConfig(seed=4, collision_ray_step=4.8)).plan(
            Vec3(0, 0, 5), Vec3(40, 0, 5), view, BOUNDS
        )
        if fine.success and coarse.success:
            assert coarse.collision_samples <= fine.collision_samples

    def test_start_hugging_obstacle_recovers(self):
        view = wall_view()
        planner = RRTStarPlanner(RRTStarConfig(seed=5, max_iterations=800))
        # Start directly adjacent to the wall (inside the inflated margin).
        result = planner.plan(Vec3(19.4, 6.0, 5.0), Vec3(40, 0, 5), view, BOUNDS)
        assert result.success

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RRTStarConfig(max_iterations=0)
        with pytest.raises(ValueError):
            RRTStarConfig(goal_bias=1.5)


class TestSmoothing:
    def test_smoothed_path_respects_velocity_cap(self):
        smoother = PathSmoother(SmoothingConfig(max_velocity=2.0))
        waypoints = [Vec3(0, 0, 5), Vec3(10, 0, 5), Vec3(20, 5, 5), Vec3(40, 5, 5)]
        traj = smoother.smooth(waypoints)
        assert traj.max_speed() <= 2.0 + 1e-6
        assert traj.start == waypoints[0]
        assert traj.goal == waypoints[-1]
        assert traj.duration > 0

    def test_velocity_override(self):
        smoother = PathSmoother(SmoothingConfig(max_velocity=2.0))
        waypoints = [Vec3(0, 0, 5), Vec3(30, 0, 5)]
        slow = smoother.smooth(waypoints, max_velocity=0.5)
        fast = smoother.smooth(waypoints, max_velocity=2.0)
        assert slow.duration > fast.duration
        assert slow.max_speed() <= 0.5 + 1e-6

    def test_shortcut_removes_detours_in_open_space(self):
        view = build_planning_view(OccupancyOctree(vox_min=0.3), precision=0.3)
        smoother = PathSmoother()
        zigzag = [Vec3(0, 0, 5), Vec3(5, 8, 5), Vec3(10, -8, 5), Vec3(20, 0, 5)]
        traj = smoother.smooth(zigzag, view=view)
        direct = Vec3(0, 0, 5).distance_to(Vec3(20, 0, 5))
        assert traj.length() <= direct * 1.2

    def test_smoothed_path_avoids_obstacles(self):
        view = wall_view()
        planner = RRTStarPlanner(RRTStarConfig(seed=7, max_iterations=800))
        plan = planner.plan(Vec3(0, 0, 5), Vec3(40, 0, 5), view, BOUNDS)
        assert plan.success
        traj = PathSmoother().smooth(plan.waypoints, view=view)
        for a, b in zip(traj.waypoint_positions(), traj.waypoint_positions()[1:]):
            assert not view.segment_in_collision(a, b)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PathSmoother().smooth([])

    def test_single_point_hovers(self):
        traj = PathSmoother().smooth([Vec3(1, 2, 3)])
        assert traj.length() == 0.0


class TestControl:
    def test_pid_converges_toward_setpoint(self):
        pid = PIDController(PIDGains(kp=1.0, ki=0.1, kd=0.0), output_limit=5.0)
        value = 0.0
        for _ in range(200):
            value += pid.update(10.0 - value, dt=0.1) * 0.1
        assert value == pytest.approx(10.0, abs=1.0)

    def test_pid_output_clamped(self):
        pid = PIDController(PIDGains(kp=100.0), output_limit=2.0)
        assert abs(pid.update(50.0, 0.1)) <= 2.0

    def test_pid_rejects_bad_dt(self):
        pid = PIDController(PIDGains(kp=1.0))
        with pytest.raises(ValueError):
            pid.update(1.0, 0.0)

    def test_vec3_pid(self):
        pid = Vec3PID(PIDGains(kp=1.0))
        out = pid.update(Vec3(1, -2, 0.5), dt=0.1)
        assert out.x > 0 and out.y < 0

    def test_flight_controller_tracks_and_clamps(self):
        traj = Trajectory(
            [
                TrajectoryPoint(0.0, Vec3(0, 0, 5), Vec3(2, 0, 0)),
                TrajectoryPoint(5.0, Vec3(10, 0, 5), Vec3(2, 0, 0)),
            ]
        )
        controller = FlightController(max_velocity=1.5)
        command = controller.velocity_command(traj, Vec3(0, 0, 5), time=0.0, dt=0.1)
        assert command.norm() <= 1.5 + 1e-9

    def test_pure_pursuit_moves_along_path(self):
        traj = Trajectory(
            [
                TrajectoryPoint(0.0, Vec3(0, 0, 5), Vec3(1, 0, 0)),
                TrajectoryPoint(10.0, Vec3(10, 0, 5), Vec3(1, 0, 0)),
                TrajectoryPoint(20.0, Vec3(10, 10, 5), Vec3(0, 1, 0)),
            ]
        )
        follower = PurePursuitFollower(lookahead=2.0)
        command = follower.velocity_command(traj, Vec3(0, 0, 5), speed=2.0)
        assert command.x > 0
        assert command.norm() == pytest.approx(2.0, abs=0.01)
        # Near the goal the commanded speed tapers.
        near_goal = follower.velocity_command(traj, Vec3(10, 9, 5), speed=2.0)
        assert near_goal.norm() < 2.0


class TestDynamics:
    def test_step_moves_toward_command(self):
        model = QuadrotorKinematics()
        state = DroneState(0.0, Vec3(0, 0, 5), Vec3.zero())
        for _ in range(40):
            state = model.step(state, Vec3(2, 0, 0), dt=0.1)
        assert state.velocity.x == pytest.approx(2.0, abs=0.2)
        assert state.position.x > 0

    def test_velocity_clamped_to_airframe_limit(self):
        model = QuadrotorKinematics(max_velocity=3.0)
        state = DroneState(0.0, Vec3(0, 0, 5), Vec3.zero())
        for _ in range(100):
            state = model.step(state, Vec3(50, 0, 0), dt=0.1)
        assert state.speed <= 3.0 + 1e-6

    def test_stopping_distance_monotone_in_speed(self):
        model = QuadrotorKinematics()
        assert model.stopping_distance(1.0) < model.stopping_distance(3.0)

    def test_bad_dt_rejected(self):
        model = QuadrotorKinematics()
        with pytest.raises(ValueError):
            model.step(DroneState(0.0, Vec3.zero(), Vec3.zero()), Vec3.zero(), dt=0.0)


class TestStoppingModel:
    def test_default_model_monotone_and_nonnegative(self):
        model = StoppingDistanceModel()
        previous = 0.0
        for v in (0.0, 0.5, 1.0, 2.0, 3.0, 5.0):
            d = model.distance(v)
            assert d >= previous
            previous = d

    def test_paper_form_clamped_at_zero(self):
        model = StoppingDistanceModel(paper_form=True)
        assert model.distance(5.0) == 0.0
        assert model.distance(0.0) == pytest.approx(0.2)

    def test_fit_from_kinematics_matches_measurements(self):
        kinematics = QuadrotorKinematics()
        fitted = StoppingDistanceModel.fit_from_kinematics(kinematics)
        mse = fitted.mse_against(kinematics, [0.5, 1.5, 3.0])
        assert mse < 0.5

    def test_negative_velocity_rejected(self):
        with pytest.raises(ValueError):
            StoppingDistanceModel().distance(-1.0)


class TestEnergyModel:
    def test_flight_power_grows_with_speed(self):
        model = EnergyModel()
        assert model.flight_power(2.0) > model.flight_power(0.0)

    def test_energy_dominated_by_flight_time(self):
        model = EnergyModel()
        short = model.mission_energy(flight_time_s=400.0, mean_speed=2.5, compute_busy_s=300.0)
        long = model.mission_energy(flight_time_s=2000.0, mean_speed=0.4, compute_busy_s=2000.0)
        assert long > short * 3

    def test_compute_energy_fraction_is_tiny(self):
        model = EnergyModel()
        fraction = model.compute_energy_fraction(
            flight_time_s=2000.0, mean_speed=0.5, compute_busy_s=1800.0
        )
        assert fraction < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(hover_power_w=0.0)
        with pytest.raises(ValueError):
            EnergyModel().flight_energy(-1.0)
