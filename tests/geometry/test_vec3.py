"""Unit tests for the Vec3 primitive."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec3 import Vec3, centroid

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = st.builds(Vec3, finite, finite, finite)


class TestBasics:
    def test_zero_and_ones(self):
        assert Vec3.zero() == Vec3(0, 0, 0)
        assert Vec3.ones() == Vec3(1, 1, 1)

    def test_unit_vectors_are_unit_length(self):
        for unit in (Vec3.unit_x(), Vec3.unit_y(), Vec3.unit_z()):
            assert unit.norm() == pytest.approx(1.0)

    def test_from_iter_round_trip(self):
        assert Vec3.from_iter([1, 2, 3]) == Vec3(1, 2, 3)

    def test_from_iter_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Vec3.from_iter([1, 2])

    def test_indexing_and_iteration(self):
        v = Vec3(1, 2, 3)
        assert list(v) == [1, 2, 3]
        assert v[0] == 1 and v[2] == 3
        assert len(v) == 3
        assert v.as_tuple() == (1, 2, 3)

    def test_hashable(self):
        assert len({Vec3(1, 2, 3), Vec3(1, 2, 3), Vec3(0, 0, 0)}) == 2


class TestArithmetic:
    def test_add_sub(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_multiplication_both_sides(self):
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)

    def test_division(self):
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_negation(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_hadamard_scale(self):
        assert Vec3(1, 2, 3).scale(Vec3(2, 3, 4)) == Vec3(2, 6, 12)


class TestGeometry:
    def test_dot_and_cross(self):
        assert Vec3.unit_x().dot(Vec3.unit_y()) == 0.0
        assert Vec3.unit_x().cross(Vec3.unit_y()) == Vec3.unit_z()

    def test_norm(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)
        assert Vec3(3, 4, 0).norm_sq() == pytest.approx(25.0)

    def test_normalized(self):
        n = Vec3(0, 3, 4).normalized()
        assert n.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec3.zero().normalized()

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 2, 2)) == pytest.approx(3.0)

    def test_horizontal_distance_ignores_z(self):
        assert Vec3(0, 0, 10).horizontal_distance_to(Vec3(3, 4, -10)) == pytest.approx(5.0)

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec3(1, 2, 3)

    def test_clamp(self):
        v = Vec3(5, -5, 0.5)
        assert v.clamp(Vec3(-1, -1, -1), Vec3(1, 1, 1)) == Vec3(1, -1, 0.5)

    def test_is_close(self):
        assert Vec3(1, 1, 1).is_close(Vec3(1 + 1e-12, 1, 1))
        assert not Vec3(1, 1, 1).is_close(Vec3(1.1, 1, 1))

    def test_is_finite(self):
        assert Vec3(1, 2, 3).is_finite()
        assert not Vec3(math.inf, 0, 0).is_finite()


class TestCentroid:
    def test_centroid_of_points(self):
        points = [Vec3(0, 0, 0), Vec3(2, 2, 2)]
        assert centroid(points) == Vec3(1, 1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert (a + b).is_close(b + a, tol=1e-6)

    @given(vectors)
    def test_subtracting_self_is_zero(self, a):
        assert (a - a).is_close(Vec3.zero())

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors, vectors)
    def test_dot_symmetry(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-9, abs=1e-6)

    @given(vectors)
    def test_cross_with_self_is_zero(self, a):
        assert a.cross(a).is_close(Vec3.zero(), tol=1e-3)
