"""Unit and property tests for AABB, voxel grids, rays and frustums."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.frustum import Frustum
from repro.geometry.grid import VoxelGrid, downsample_points, voxel_bounds, voxel_center, voxel_key
from repro.geometry.ray import (
    Ray,
    ray_aabb_intersect,
    sample_ray,
    segment_intersects_aabb,
    traverse_voxels,
)
from repro.geometry.vec3 import Vec3

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Vec3, coords, coords, coords)


class TestAABB:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            AABB(Vec3(1, 0, 0), Vec3(0, 1, 1))

    def test_from_center_and_volume(self):
        box = AABB.from_center(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.volume == pytest.approx(48.0)
        assert box.center == Vec3(0, 0, 0)
        assert box.size == Vec3(2, 4, 6)

    def test_contains_boundary(self):
        box = AABB.cube(Vec3(0, 0, 0), 2.0)
        assert box.contains(Vec3(1, 1, 1))
        assert not box.contains(Vec3(1.01, 0, 0))

    def test_from_points_is_tight(self):
        box = AABB.from_points([Vec3(0, 0, 0), Vec3(1, 2, 3), Vec3(-1, 0, 1)])
        assert box.min_corner == Vec3(-1, 0, 0)
        assert box.max_corner == Vec3(1, 2, 3)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            AABB.from_points([])

    def test_intersection_and_union(self):
        a = AABB(Vec3(0, 0, 0), Vec3(2, 2, 2))
        b = AABB(Vec3(1, 1, 1), Vec3(3, 3, 3))
        inter = a.intersection(b)
        assert inter is not None
        assert inter.min_corner == Vec3(1, 1, 1)
        assert a.union(b).max_corner == Vec3(3, 3, 3)

    def test_disjoint_intersection_is_none(self):
        a = AABB.cube(Vec3(0, 0, 0), 1.0)
        b = AABB.cube(Vec3(10, 10, 10), 1.0)
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_distance_to_point(self):
        box = AABB.cube(Vec3(0, 0, 0), 2.0)
        assert box.distance_to_point(Vec3(0, 0, 0)) == 0.0
        assert box.distance_to_point(Vec3(4, 0, 0)) == pytest.approx(3.0)

    def test_expanded(self):
        box = AABB.cube(Vec3(0, 0, 0), 2.0).expanded(1.0)
        assert box.size == Vec3(4, 4, 4)

    def test_split_octants_cover_volume(self):
        box = AABB.cube(Vec3(0, 0, 0), 4.0)
        octants = box.split_octants()
        assert len(octants) == 8
        assert sum(o.volume for o in octants) == pytest.approx(box.volume)

    def test_corners_count(self):
        assert len(AABB.cube(Vec3(0, 0, 0), 1.0).corners()) == 8

    @given(points, st.floats(min_value=0.1, max_value=10))
    def test_closest_point_is_inside(self, p, edge):
        box = AABB.cube(Vec3(0, 0, 0), edge)
        assert box.contains(box.closest_point(p))


class TestVoxelGrid:
    def test_voxel_key_and_center_round_trip(self):
        key = voxel_key(Vec3(0.95, 0.05, -0.05), 0.3)
        center = voxel_center(key, 0.3)
        assert voxel_key(center, 0.3) == key

    def test_voxel_bounds_contain_center(self):
        key = (3, -2, 1)
        assert voxel_bounds(key, 0.5).contains(voxel_center(key, 0.5))

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            voxel_key(Vec3(0, 0, 0), 0.0)
        with pytest.raises(ValueError):
            VoxelGrid(-1.0)

    def test_insert_and_average(self):
        grid = VoxelGrid(1.0)
        grid.insert(Vec3(0.2, 0.2, 0.2))
        grid.insert(Vec3(0.8, 0.8, 0.8))
        grid.insert(Vec3(5.5, 5.5, 5.5))
        assert len(grid) == 2
        assert grid.total_points() == 3
        averaged = grid.averaged_points()
        assert len(averaged) == 2
        assert any(p.is_close(Vec3(0.5, 0.5, 0.5)) for p in averaged)

    def test_occupied_volume(self):
        grid = VoxelGrid(2.0)
        grid.insert(Vec3(0, 0, 0))
        assert grid.occupied_volume() == pytest.approx(8.0)

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            VoxelGrid(1.0).bounds()

    @given(st.lists(points, min_size=1, max_size=50), st.floats(min_value=0.2, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_downsample_never_increases_points(self, pts, resolution):
        reduced = downsample_points(pts, resolution)
        assert 1 <= len(reduced) <= len(pts)

    @given(st.lists(points, min_size=1, max_size=30), st.floats(min_value=0.5, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_downsample_points_stay_in_cloud_bounds(self, pts, resolution):
        box = AABB.from_points(pts).expanded(1e-6)
        for p in downsample_points(pts, resolution):
            assert box.contains(p)


class TestRay:
    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            Ray(Vec3(0, 0, 0), Vec3(0, 0, 0))

    def test_ray_aabb_hit_and_miss(self):
        box = AABB.cube(Vec3(5, 0, 0), 2.0)
        hit = ray_aabb_intersect(Ray(Vec3(0, 0, 0), Vec3(1, 0, 0)), box)
        assert hit is not None
        t_enter, t_exit = hit
        assert t_enter == pytest.approx(4.0)
        assert t_exit == pytest.approx(6.0)
        assert ray_aabb_intersect(Ray(Vec3(0, 0, 0), Vec3(0, 1, 0)), box) is None

    def test_box_behind_origin_is_missed(self):
        box = AABB.cube(Vec3(-5, 0, 0), 2.0)
        assert ray_aabb_intersect(Ray(Vec3(0, 0, 0), Vec3(1, 0, 0)), box) is None

    def test_segment_intersects(self):
        box = AABB.cube(Vec3(5, 0, 0), 2.0)
        assert segment_intersects_aabb(Vec3(0, 0, 0), Vec3(10, 0, 0), box)
        assert not segment_intersects_aabb(Vec3(0, 0, 0), Vec3(3, 0, 0), box)
        assert segment_intersects_aabb(Vec3(5, 0, 0), Vec3(5, 0, 0), box)

    def test_traverse_starts_and_ends_correctly(self):
        keys = list(traverse_voxels(Vec3(0.1, 0.1, 0.1), Vec3(2.9, 0.1, 0.1), 1.0))
        assert keys[0] == (0, 0, 0)
        assert keys[-1] == (2, 0, 0)
        assert keys == [(0, 0, 0), (1, 0, 0), (2, 0, 0)]

    def test_traverse_diagonal_is_connected(self):
        keys = list(traverse_voxels(Vec3(0.5, 0.5, 0.5), Vec3(3.5, 2.5, 1.5), 1.0))
        for a, b in zip(keys, keys[1:]):
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @given(points, points, st.floats(min_value=0.2, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_traverse_contains_endpoints(self, a, b, res):
        keys = list(traverse_voxels(a, b, res, max_voxels=5000))
        assert voxel_key(a, res) == keys[0]
        # The end voxel is present unless the traversal was capped; points that
        # sit exactly on a voxel boundary may legitimately land one cell off.
        if len(keys) < 5000 and a.distance_to(b) > 1e-6:
            end_key = voxel_key(b, res)
            assert any(
                all(abs(k[i] - end_key[i]) <= 1 for i in range(3)) for k in keys
            )

    def test_sample_ray_includes_endpoint(self):
        samples = sample_ray(Vec3(0, 0, 0), Vec3(1, 0, 0), 0.3)
        assert samples[0] == Vec3(0, 0, 0)
        assert samples[-1] == Vec3(1, 0, 0)

    def test_sample_ray_step_controls_count(self):
        fine = sample_ray(Vec3(0, 0, 0), Vec3(10, 0, 0), 0.5)
        coarse = sample_ray(Vec3(0, 0, 0), Vec3(10, 0, 0), 5.0)
        assert len(fine) > len(coarse)


class TestFrustum:
    def make(self, max_range=10.0):
        return Frustum(
            apex=Vec3(0, 0, 0),
            forward=Vec3(1, 0, 0),
            up=Vec3(0, 0, 1),
            horizontal_fov_deg=90.0,
            vertical_fov_deg=60.0,
            max_range=max_range,
        )

    def test_contains_points_on_axis(self):
        f = self.make()
        assert f.contains(Vec3(5, 0, 0))
        assert not f.contains(Vec3(-1, 0, 0))
        assert not f.contains(Vec3(15, 0, 0))

    def test_contains_respects_fov(self):
        f = self.make()
        assert f.contains(Vec3(5, 4.9, 0))
        assert not f.contains(Vec3(5, 5.5, 0))

    def test_volume_positive_and_scales_with_range(self):
        assert self.make(20.0).volume() > self.make(10.0).volume()

    def test_clipped_volume_monotone(self):
        f = self.make()
        assert f.clipped_volume(2.0) < f.clipped_volume(5.0) <= f.volume()
        assert f.clipped_volume(0.0) == 0.0

    def test_sample_directions_count_and_unit_norm(self):
        dirs = self.make().sample_directions(4, 3)
        assert len(dirs) == 12
        for d in dirs:
            assert d.norm() == pytest.approx(1.0)

    def test_invalid_fov_rejected(self):
        with pytest.raises(ValueError):
            Frustum(Vec3.zero(), Vec3.unit_x(), Vec3.unit_z(), 190.0, 60.0, 10.0)
