"""The package version and pyproject.toml must agree."""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def _pyproject_version() -> str:
    text = PYPROJECT.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
        assert match, "no version field in pyproject.toml"
        return match.group(1)
    return tomllib.loads(text)["project"]["version"]


def test_version_matches_pyproject():
    assert repro.__version__ == _pyproject_version()


def test_version_is_semver_shaped():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
