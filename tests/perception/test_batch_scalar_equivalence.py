"""Property-style equivalence: every batch query == its scalar twin, exactly.

The vectorised hot path (PR 7) promises *bit-identical* results, not
approximate ones: every numpy batch routine reproduces the scalar twin's
IEEE-754 arithmetic operation for operation.  These tests enforce that
promise on randomized inputs — voxel sets, segments, query points, mover
configurations — plus the empty-index and single-voxel edge cases, comparing
with ``==`` throughout (no tolerances anywhere).
"""

import random

import numpy as np
import pytest

from repro import (
    EnvironmentConfig,
    EnvironmentGenerator,
    MissionConfig,
    MissionSimulator,
    MoverSpec,
    RoboRunRuntime,
)
from repro import hotpath
from repro.environment.world import World, Obstacle
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.planning_view import build_planning_view
from repro.perception.point_cloud import PointCloud
from repro.perception.spatial_index import (
    PackedCellTable,
    SpatialIndex,
    point_hits_cells,
    point_hits_cells_batch,
    segment_hits_cells,
    segment_hits_cells_batch,
)
from repro.sensors.depth_camera import DepthCamera
from repro.worlds.movers import DynamicObstacleSet, build_movers


def random_keys(rng, count, spread=12):
    return {
        (
            rng.randint(-spread, spread),
            rng.randint(-spread, spread),
            rng.randint(-spread // 2, spread),
        )
        for _ in range(count)
    }


def random_vec(rng, lo=-6.0, hi=6.0):
    return Vec3(rng.uniform(lo, hi), rng.uniform(lo, hi), rng.uniform(lo, hi))


def seeded_index(rng, count, vox_min=0.25):
    index = SpatialIndex(vox_min=vox_min, levels=4)
    for key in random_keys(rng, count):
        index.add(key)
    return index


def segment_batch_arrays(pairs):
    starts = np.array([(a.x, a.y, a.z) for a, _ in pairs], dtype=np.float64)
    ends = np.array([(b.x, b.y, b.z) for _, b in pairs], dtype=np.float64)
    return starts, ends


class TestSpatialIndexBatches:
    @pytest.mark.parametrize("seed", range(5))
    def test_segment_occupied_batch_matches_scalar(self, seed):
        rng = random.Random(100 + seed)
        index = seeded_index(rng, rng.choice([0, 1, 40, 400]))
        pairs = [(random_vec(rng), random_vec(rng)) for _ in range(60)]
        # Degenerate segments (zero length) must agree too.
        p = random_vec(rng)
        pairs.append((p, p))
        starts, ends = segment_batch_arrays(pairs)
        for step in (0.1, 0.3, 1.7):
            for lateral in (0.0, 0.4):
                for include_start in (True, False):
                    scalar = [
                        index.segment_occupied(a, b, step, lateral, include_start)
                        for a, b in pairs
                    ]
                    batch = index.segment_occupied_batch(
                        starts, ends, step, lateral, include_start
                    )
                    assert batch.tolist() == scalar

    @pytest.mark.parametrize("seed", range(5))
    def test_nearest_occupied_distance_batch_matches_scalar(self, seed):
        rng = random.Random(200 + seed)
        index = seeded_index(rng, rng.choice([0, 1, 40, 400]))
        points = [random_vec(rng, -10.0, 10.0) for _ in range(50)]
        arr = np.array([(p.x, p.y, p.z) for p in points], dtype=np.float64)
        for max_radius in (0.5, 4.0, 100.0):
            scalar = [index.nearest_occupied_distance(p, max_radius) for p in points]
            batch = index.nearest_occupied_distance_batch(arr, max_radius)
            assert batch.tolist() == scalar

    def test_batches_track_mutation(self):
        # The array snapshot must be invalidated by add/remove/clear.
        index = SpatialIndex(vox_min=0.25, levels=4)
        pt = np.array([[0.1, 0.1, 0.1]])
        assert index.nearest_occupied_distance_batch(pt, 10.0).tolist() == [10.0]
        index.add((0, 0, 0))
        first = index.nearest_occupied_distance_batch(pt, 10.0)[0]
        assert first == index.nearest_occupied_distance(Vec3(0.1, 0.1, 0.1), 10.0)
        index.remove((0, 0, 0))
        assert index.nearest_occupied_distance_batch(pt, 10.0).tolist() == [10.0]


class TestCellTableBatches:
    @pytest.mark.parametrize("cell_count", [0, 1, 30, 300])
    def test_point_hits_cells_batch_matches_scalar(self, cell_count):
        rng = random.Random(17 + cell_count)
        cells = frozenset(random_keys(rng, cell_count))
        table = PackedCellTable(cells)
        resolution = 0.6
        points = [random_vec(rng) for _ in range(80)]
        arr = np.array([(p.x, p.y, p.z) for p in points], dtype=np.float64)
        for margin in (0.0, 0.5, 1.3):
            scalar = [point_hits_cells(cells, resolution, p, margin) for p in points]
            batch = point_hits_cells_batch(table, resolution, arr, margin)
            assert batch.tolist() == scalar

    @pytest.mark.parametrize("cell_count", [0, 1, 30, 300])
    def test_segment_hits_cells_batch_matches_scalar(self, cell_count):
        rng = random.Random(23 + cell_count)
        cells = frozenset(random_keys(rng, cell_count))
        table = PackedCellTable(cells)
        resolution = 0.6
        pairs = [(random_vec(rng), random_vec(rng)) for _ in range(40)]
        p = random_vec(rng)
        pairs.append((p, p))
        starts, ends = segment_batch_arrays(pairs)
        for step in (None, 0.2, 5.0):
            for margin in (0.0, 0.7):
                scalar = [
                    segment_hits_cells(cells, resolution, a, b, step, margin)
                    for a, b in pairs
                ]
                batch = segment_hits_cells_batch(
                    table, resolution, starts, ends, step, margin
                )
                assert batch.tolist() == scalar


def _mover_world(rng):
    """A world with static boxes plus mover and agent layers, as the fleet sees it."""
    world = World(AABB(Vec3(-60, -60, 0), Vec3(60, 60, 40)))
    for _ in range(rng.randint(3, 12)):
        c = Vec3(rng.uniform(-40, 40), rng.uniform(-40, 40), rng.uniform(2, 20))
        world.add_obstacle(Obstacle(AABB.cube(c, rng.uniform(1.0, 5.0))))
    specs = (
        MoverSpec(
            kind="crosser",
            origin=(rng.uniform(-20, 20), rng.uniform(-20, 0), 3.0),
            velocity=(0.0, 2.0, 0.0),
            span_m=30.0,
            epoch_s=0.5,
            size=(2.0, 2.0, 2.0),
        ),
        MoverSpec(
            kind="waypoint_loop",
            waypoints=((10.0, 5.0, 2.0), (20.0, 5.0, 2.0), (20.0, -5.0, 2.0)),
            speed_mps=2.0,
            epoch_s=0.5,
        ),
    )
    movers = DynamicObstacleSet(build_movers(specs), world)
    movers.step(rng.randint(0, 40))
    world.set_agent_obstacles(
        [Obstacle(AABB.cube(Vec3(5.0, 5.0, 4.0), 1.2), name="peer")]
    )
    return world


class TestWorldAndCameraEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_capture_scalar_vs_vectorised(self, seed):
        rng = random.Random(300 + seed)
        world = _mover_world(rng)
        camera = DepthCamera(width=12, height=8, max_range=35.0)
        for _ in range(6):
            pose = Vec3(rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(2, 15))
            yaw = rng.uniform(-180.0, 180.0)
            with hotpath.vectorized_mode():
                fast = camera.capture(world, pose, yaw)
                fast_hits = fast.hit_points()
            with hotpath.scalar_mode():
                slow = camera.capture(world, pose, yaw)
                slow_hits = slow.hit_points()
            assert fast.depths == slow.depths
            assert fast.directions == slow.directions
            assert fast_hits == slow_hits

    @pytest.mark.parametrize("seed", range(4))
    def test_obstacle_arrays_near_matches_obstacles_near(self, seed):
        rng = random.Random(400 + seed)
        world = _mover_world(rng)
        from repro.environment.world import _boxes_distance_to_point, _corner_arrays

        for _ in range(10):
            point = Vec3(rng.uniform(-40, 40), rng.uniform(-40, 40), rng.uniform(0, 20))
            radius = rng.uniform(5.0, 60.0)
            scalar = world.obstacles_near(point, radius)
            lo, hi = world.obstacle_arrays_near(point, radius)
            slo, shi = _corner_arrays(scalar)
            assert lo.tolist() == slo.tolist()
            assert hi.tolist() == shi.tolist()
            # And the batched point distance matches the per-box scalar.
            if scalar:
                batch_d = _boxes_distance_to_point(lo, hi, point)
                assert batch_d.tolist() == [o.distance_to(point) for o in scalar]


class TestPointCloudAndViewEquivalence:
    def make_cloud(self, rng, count):
        origin = random_vec(rng)
        points = [random_vec(rng, -15.0, 15.0) for _ in range(count)]
        return PointCloud(
            origin=origin,
            points=tuple(points),
            raw_point_count=count,
            resolution=0.3,
        )

    @pytest.mark.parametrize("count", [1, 2, 50])
    def test_cloud_queries_scalar_vs_vectorised(self, count):
        rng = random.Random(500 + count)
        cloud = self.make_cloud(rng, count)
        with hotpath.vectorized_mode():
            fast = (cloud.nearest_distance(), cloud.points_within(6.0))
        with hotpath.scalar_mode():
            slow = (cloud.nearest_distance(), cloud.points_within(6.0))
        assert fast == slow

    @pytest.mark.parametrize("seed", range(3))
    def test_build_planning_view_scalar_vs_vectorised(self, seed):
        rng = random.Random(600 + seed)
        octree = OccupancyOctree(vox_min=0.3, levels=4)
        for key in random_keys(rng, rng.choice([1, 30, 250])):
            octree.mark_occupied(
                Vec3(key[0] * 0.3 + 0.15, key[1] * 0.3 + 0.15, key[2] * 0.3 + 0.15)
            )
        focus = random_vec(rng)
        for precision in (0.3, 0.6):
            for max_volume, region in ((None, None), (2.0, 8.0), (0.5, None)):
                with hotpath.vectorized_mode():
                    fast = build_planning_view(
                        octree, precision, max_volume, focus, region
                    )
                with hotpath.scalar_mode():
                    slow = build_planning_view(
                        octree, precision, max_volume, focus, region
                    )
                assert fast.cells == slow.cells
                assert fast.total_volume == slow.total_volume
                assert fast.precision == slow.precision


class TestMissionEquivalence:
    """End to end: a short mission must be bit-identical in both modes."""

    ENV = EnvironmentConfig(
        obstacle_density=0.3, obstacle_spread=40.0, goal_distance=100.0, seed=11
    )
    CFG = MissionConfig(max_decisions=12, max_mission_time_s=60.0)

    def run_mission(self):
        env = EnvironmentGenerator().generate(self.ENV)
        return MissionSimulator(env, RoboRunRuntime(), self.CFG).run()

    def test_short_mission_scalar_vs_vectorised(self):
        with hotpath.vectorized_mode():
            fast = self.run_mission()
        with hotpath.scalar_mode():
            slow = self.run_mission()
        assert fast.metrics.as_dict() == slow.metrics.as_dict()
        assert len(fast.traces) == len(slow.traces)
        for a, b in zip(fast.traces, slow.traces):
            assert a.end_to_end_latency == b.end_to_end_latency
            assert a.policy == b.policy
            assert a.zone == b.zone
