"""Tests for the incremental spatial index and the index-backed octree paths."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.grid import voxel_center, voxel_key
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloudKernel
from repro.perception.spatial_index import (
    SpatialIndex,
    cell_margin_radius,
    neighbour_offsets,
    point_hits_cells,
    segment_hits_cells,
)


def brute_force_nearest(occupied, vox_min, point, max_radius):
    """The pre-index linear scan, kept as the reference implementation."""
    best_sq = max_radius * max_radius
    for key in occupied:
        center = voxel_center(key, vox_min)
        d_sq = (
            (center.x - point.x) ** 2
            + (center.y - point.y) ** 2
            + (center.z - point.z) ** 2
        )
        if d_sq < best_sq:
            best_sq = d_sq
    return math.sqrt(best_sq)


def brute_force_coarse(occupied, level):
    factor = 2**level
    cells = {}
    for (i, j, k) in occupied:
        coarse = (i // factor, j // factor, k // factor)
        cells[coarse] = cells.get(coarse, 0) + 1
    return cells


class TestSpatialIndexMaintenance:
    def test_add_remove_roundtrip(self):
        index = SpatialIndex(vox_min=0.3, levels=6)
        assert index.add((1, 2, 3))
        assert not index.add((1, 2, 3)), "double add must be a no-op"
        assert (1, 2, 3) in index
        assert len(index) == 1
        assert index.remove((1, 2, 3))
        assert not index.remove((1, 2, 3)), "double remove must be a no-op"
        assert len(index) == 0
        assert index.matches(set())

    def test_level_counts_aggregate(self):
        index = SpatialIndex(vox_min=0.3, levels=4)
        keys = [(0, 0, 0), (1, 0, 0), (1, 1, 1), (8, 0, 0), (-1, -1, -1)]
        for key in keys:
            index.add(key)
        for level in range(4):
            assert dict(index.level_cells(level)) == brute_force_coarse(set(keys), level)

    def test_negative_keys_bucket_correctly(self):
        index = SpatialIndex(vox_min=0.5, levels=3)
        index.add((-1, -9, -17))
        assert index.matches({(-1, -9, -17)})
        index.remove((-1, -9, -17))
        assert index.matches(set())

    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialIndex(vox_min=0.0, levels=3)
        with pytest.raises(ValueError):
            SpatialIndex(vox_min=0.3, levels=0)
        with pytest.raises(ValueError):
            SpatialIndex(vox_min=0.3, levels=3, bucket_resolution=0.1)
        index = SpatialIndex(vox_min=0.3, levels=3)
        with pytest.raises(ValueError):
            index.level_cells(3)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-40, max_value=40),
                st.integers(min_value=-40, max_value=40),
                st.integers(min_value=-40, max_value=40),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_index_stays_consistent_under_random_workload(self, ops):
        index = SpatialIndex(vox_min=0.3, levels=5)
        shadow = set()
        for (i, j, k, insert) in ops:
            key = (i, j, k)
            if insert:
                index.add(key)
                shadow.add(key)
            else:
                index.remove(key)
                shadow.discard(key)
        assert index.matches(shadow)


class TestNearestOccupiedDistance:
    @given(
        st.lists(
            st.builds(
                Vec3,
                st.floats(min_value=-25, max_value=25),
                st.floats(min_value=-25, max_value=25),
                st.floats(min_value=0, max_value=12),
            ),
            min_size=0,
            max_size=60,
        ),
        st.builds(
            Vec3,
            st.floats(min_value=-30, max_value=30),
            st.floats(min_value=-30, max_value=30),
            st.floats(min_value=0, max_value=12),
        ),
        st.floats(min_value=1.0, max_value=60.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, points, query, max_radius):
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for p in points:
            octree.mark_occupied(p)
        expected = brute_force_nearest(
            octree.occupied_keys(), octree.vox_min, query, max_radius
        )
        actual = octree.nearest_occupied_distance(query, max_radius)
        assert actual == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_empty_map_returns_max_radius(self):
        octree = OccupancyOctree(vox_min=0.3)
        assert octree.nearest_occupied_distance(Vec3(5, 5, 5), 17.5) == 17.5

    def test_far_obstacle_beyond_radius(self):
        octree = OccupancyOctree(vox_min=0.3)
        octree.mark_occupied(Vec3(100, 0, 0))
        assert octree.nearest_occupied_distance(Vec3(0, 0, 0), 10.0) == 10.0


class TestIndexBackedOctreePaths:
    def random_octree(self, seed=3, n=400):
        rng = random.Random(seed)
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for _ in range(n):
            octree.mark_occupied(
                Vec3(rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(0, 10))
            )
        return octree

    def test_coarse_cells_match_brute_force_after_mutations(self):
        octree = self.random_octree()
        # Mutate through every code path: insertion, clearing, forgetting.
        cloud = PointCloudKernel.from_points(
            Vec3(0, 0, 5), [Vec3(10, 0, 5), Vec3(0, 10, 5)], resolution=0.3
        )
        octree.insert_point_cloud(cloud, ray_step=0.3)
        octree.forget_beyond(Vec3(0, 0, 5), radius=15.0)
        occupied = octree.occupied_keys()
        for precision in (0.3, 0.6, 1.2, 2.4, 4.8, 9.6):
            level = octree.coarsen_level_for(precision)
            assert octree.coarse_occupied_cells(precision) == brute_force_coarse(
                occupied, level
            )

    def test_forget_beyond_matches_direct_predicate(self):
        octree = self.random_octree(seed=9)
        center = Vec3(2, -3, 4)
        radius = 11.0
        expected_kept = {
            k
            for k in octree.occupied_keys()
            if voxel_center(k, octree.vox_min).distance_to(center) <= radius
        }
        octree.forget_beyond(center, radius)
        assert octree.occupied_keys() == expected_kept

    def test_build_tree_matches_occupancy(self):
        octree = self.random_octree(seed=5, n=150)
        root = octree.build_tree()
        assert root.occupied_leaves == octree.occupied_voxel_count()
        leaves = root.leaves()
        assert len(leaves) == octree.occupied_voxel_count()
        leaf_keys = {voxel_key(leaf.center, octree.vox_min) for leaf in leaves}
        assert leaf_keys == octree.occupied_keys()
        # Parent bookkeeping: every internal node's count equals its children's.
        def check(node):
            if node.children:
                assert node.occupied_leaves == sum(
                    c.occupied_leaves for c in node.children
                )
                for child in node.children:
                    check(child)

        check(root)

    def test_build_tree_children_sorted(self):
        octree = self.random_octree(seed=7, n=80)
        def check(node):
            if not node.children:
                return
            keys = [
                voxel_key(c.center, c.size) for c in node.children
            ]
            assert keys == sorted(keys)
            for child in node.children:
                check(child)

        check(octree.build_tree())

    def test_segment_occupied_matches_pointwise_probes(self):
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for i in range(10):
            octree.mark_occupied(Vec3(6.0, -1.5 + 0.3 * i, 5.0))
        # Straight through the wall.
        assert octree.segment_occupied(Vec3(0, 0, 5), Vec3(12, 0, 5), step=0.3)
        # Parallel to the wall, clear.
        assert not octree.segment_occupied(Vec3(0, 5, 5), Vec3(12, 5, 5), step=0.3)
        # Lateral tube catches a graze one voxel to the side of the centre line.
        graze_start, graze_end = Vec3(6.45, -1.0, 5.0), Vec3(6.45, 1.0, 5.0)
        assert not octree.segment_occupied(graze_start, graze_end, step=0.3)
        assert octree.segment_occupied(graze_start, graze_end, step=0.3, lateral=0.3)

    def test_segment_occupied_include_start(self):
        octree = OccupancyOctree(vox_min=0.3)
        octree.mark_occupied(Vec3(0.15, 0.15, 0.15))
        start = Vec3(0.15, 0.15, 0.15)
        end = Vec3(5.0, 0.15, 0.15)
        assert octree.segment_occupied(start, end, step=0.3, include_start=True)
        assert not octree.segment_occupied(start, end, step=0.3, include_start=False)

    def test_segment_occupied_validates_step(self):
        octree = OccupancyOctree(vox_min=0.3)
        octree.mark_occupied(Vec3(1, 1, 1))
        with pytest.raises(ValueError):
            octree.segment_occupied(Vec3(0, 0, 0), Vec3(1, 1, 1), step=0.0)

    @given(
        st.lists(
            st.builds(
                Vec3,
                st.floats(min_value=-10, max_value=10),
                st.floats(min_value=-10, max_value=10),
                st.floats(min_value=0, max_value=8),
            ),
            min_size=1,
            max_size=40,
        ),
        st.builds(
            Vec3,
            st.floats(min_value=-12, max_value=12),
            st.floats(min_value=-12, max_value=12),
            st.floats(min_value=0, max_value=8),
        ),
        st.builds(
            Vec3,
            st.floats(min_value=-12, max_value=12),
            st.floats(min_value=-12, max_value=12),
            st.floats(min_value=0, max_value=8),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_occupied_matches_is_occupied_sampling(self, points, a, b):
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for p in points:
            octree.mark_occupied(p)
        step = 0.3
        length = a.distance_to(b)
        intervals = max(1, int(length / step))
        expected = any(
            octree.is_occupied(a.lerp(b, i / intervals)) for i in range(intervals + 1)
        )
        assert octree.segment_occupied(a, b, step=step) == expected


class TestCellHelpers:
    def test_neighbour_offsets_sizes(self):
        assert len(neighbour_offsets(0)) == 1
        assert len(neighbour_offsets(1)) == 27
        assert len(neighbour_offsets(2)) == 125
        with pytest.raises(ValueError):
            neighbour_offsets(-1)

    def test_cell_margin_radius(self):
        assert cell_margin_radius(0.0, 0.3) == 0
        assert cell_margin_radius(0.3, 0.3) == 1
        assert cell_margin_radius(10.0, 0.3) == 2

    def test_point_hits_cells_margin(self):
        cells = {(10, 0, 0)}
        probe = Vec3(10 * 0.3 + 0.15, 0.45, 0.15)  # one cell over in y
        assert not point_hits_cells(cells, 0.3, probe)
        assert point_hits_cells(cells, 0.3, probe, margin=0.3)

    def test_segment_hits_cells_step_clamped(self):
        # A single thin cell must be found even with a huge requested step.
        cells = {(10, 0, 0)}
        assert segment_hits_cells(cells, 0.3, Vec3(0, 0.15, 0.15), Vec3(6, 0.15, 0.15), step=5.0)

    def test_segment_hits_cells_empty_and_invalid(self):
        assert not segment_hits_cells(frozenset(), 0.3, Vec3(0, 0, 0), Vec3(1, 0, 0))
        with pytest.raises(ValueError):
            segment_hits_cells({(0, 0, 0)}, 0.3, Vec3(0, 0, 0), Vec3(1, 0, 0), step=0.0)
