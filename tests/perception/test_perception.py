"""Tests for sensors, the point-cloud kernel, the occupancy octree and views."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.environment.world import Obstacle, World
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree, allowed_precisions, prune_tree_to_volume
from repro.perception.planning_view import build_planning_view
from repro.perception.point_cloud import PointCloud, PointCloudKernel
from repro.sensors.depth_camera import DepthCamera
from repro.sensors.rig import CameraRig
from repro.sensors.state_sensors import GPS, IMU, StateSensorSuite


def simple_world():
    bounds = AABB(Vec3(-50, -50, 0), Vec3(100, 50, 30))
    world = World(bounds)
    world.add_obstacle(Obstacle(AABB.from_center(Vec3(10, 0, 10), Vec3(2, 2, 20))))
    return world


class TestSensors:
    def test_camera_sees_obstacle_ahead(self):
        camera = DepthCamera(width=9, height=7, max_range=30.0)
        image = camera.capture(simple_world(), Vec3(0, 0, 5))
        assert image.hit_count() > 0
        assert image.min_depth() == pytest.approx(9.0, abs=0.5)

    def test_camera_open_space_reports_infinite_depths(self):
        camera = DepthCamera(width=5, height=5, max_range=20.0)
        image = camera.capture(simple_world(), Vec3(0, 40, 5))
        assert image.hit_count() == 0
        assert image.mean_visibility() == pytest.approx(20.0)

    def test_rig_covers_all_directions(self):
        rig = CameraRig(width=7, height=5, max_range=30.0)
        scan = rig.capture(simple_world(), Vec3(20, 0, 5))
        # The obstacle at x=10 is behind the drone relative to +x; a full rig
        # still observes it with one of its rear-facing cameras.
        assert len(scan.all_hit_points()) > 0
        assert scan.total_pixels() == 6 * 7 * 5
        assert scan.min_obstacle_distance() < 15.0

    def test_rig_forward_visibility_open_vs_blocked(self):
        rig = CameraRig(width=7, height=5, max_range=30.0)
        blocked = rig.capture(simple_world(), Vec3(0, 0, 5)).forward_min_depth()
        open_ = rig.capture(simple_world(), Vec3(0, 40, 5)).forward_min_depth()
        assert blocked < open_

    def test_state_sensors_ideal_and_noisy(self):
        suite = StateSensorSuite.ideal()
        est = suite.estimate(1.0, Vec3(1, 2, 3), Vec3(0.5, 0, 0))
        assert est.position == Vec3(1, 2, 3)
        assert est.speed == pytest.approx(0.5)
        noisy = StateSensorSuite(gps=GPS(noise_std=0.1, seed=1), imu=IMU(noise_std=0.1, seed=2))
        est2 = noisy.estimate(1.0, Vec3(1, 2, 3), Vec3(0.5, 0, 0))
        assert est2.position != Vec3(1, 2, 3)


class TestPointCloudKernel:
    def test_precision_controls_point_count(self):
        rig = CameraRig(width=9, height=7, max_range=30.0)
        scan = rig.capture(simple_world(), Vec3(0, 0, 5))
        kernel = PointCloudKernel()
        fine = kernel.process(scan, resolution=0.3)
        coarse = kernel.process(scan, resolution=4.8)
        assert len(coarse) <= len(fine)
        assert fine.raw_point_count == coarse.raw_point_count

    def test_from_points_and_queries(self):
        cloud = PointCloudKernel.from_points(
            Vec3(0, 0, 0), [Vec3(5, 0, 0), Vec3(5.1, 0, 0), Vec3(0, 8, 0)], resolution=0.5
        )
        assert len(cloud) == 2
        assert cloud.nearest_distance() == pytest.approx(5.05, abs=0.1)
        assert len(cloud.points_within(6.0)) == 1
        assert not cloud.is_empty()

    def test_empty_cloud(self):
        cloud = PointCloudKernel.from_points(Vec3(0, 0, 0), [], resolution=0.5)
        assert cloud.is_empty()
        assert cloud.nearest_distance() == math.inf
        assert cloud.centroid() is None

    def test_max_points_keeps_closest(self):
        rig = CameraRig(width=9, height=7, max_range=30.0)
        scan = rig.capture(simple_world(), Vec3(0, 0, 5))
        kernel = PointCloudKernel()
        capped = kernel.process(scan, resolution=0.3, max_points=5)
        full = kernel.process(scan, resolution=0.3)
        assert len(capped) == min(5, len(full))

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            PointCloudKernel(default_resolution=0.0)


class TestOccupancyOctree:
    def test_allowed_precisions_ladder(self):
        ladder = allowed_precisions(0.3, 6)
        assert ladder == [0.3, 0.6, 1.2, 2.4, 4.8, 9.6]
        with pytest.raises(ValueError):
            allowed_precisions(-1, 3)

    def test_mark_and_query(self):
        octree = OccupancyOctree(vox_min=0.5)
        octree.mark_occupied(Vec3(1.1, 1.1, 1.1))
        assert octree.is_occupied(Vec3(1.2, 1.2, 1.2))
        assert not octree.is_occupied(Vec3(5, 5, 5))
        assert octree.is_unknown(Vec3(5, 5, 5))
        octree.mark_free(Vec3(5, 5, 5))
        assert octree.is_free(Vec3(5, 5, 5))
        assert not octree.is_unknown(Vec3(5, 5, 5))

    def test_occupied_wins_over_free(self):
        octree = OccupancyOctree(vox_min=0.5)
        octree.mark_occupied(Vec3(1, 1, 1))
        octree.mark_free(Vec3(1, 1, 1))
        assert octree.is_occupied(Vec3(1, 1, 1))
        assert not octree.is_free(Vec3(1, 1, 1))

    def test_insert_point_cloud_marks_endpoints_and_free_space(self):
        octree = OccupancyOctree(vox_min=0.3)
        cloud = PointCloudKernel.from_points(
            Vec3(0, 0, 0), [Vec3(10, 0, 0), Vec3(0, 10, 0)], resolution=0.3
        )
        stats = octree.insert_point_cloud(cloud)
        assert octree.is_occupied(Vec3(10, 0, 0))
        assert octree.is_occupied(Vec3(0, 10, 0))
        assert octree.is_free(Vec3(5, 0, 0))
        assert stats["points_integrated"] == 2
        assert stats["cells_updated"] > 2

    def test_ray_step_controls_charged_cells(self):
        cloud = PointCloudKernel.from_points(Vec3(0, 0, 0), [Vec3(20, 0, 0)], resolution=0.3)
        fine = OccupancyOctree(vox_min=0.3)
        coarse = OccupancyOctree(vox_min=0.3)
        fine_stats = fine.insert_point_cloud(cloud, ray_step=0.3)
        coarse_stats = coarse.insert_point_cloud(cloud, ray_step=4.8)
        assert fine_stats["cells_updated"] > coarse_stats["cells_updated"]

    def test_volume_budget_skips_far_points_but_keeps_endpoints(self):
        points = [Vec3(5 + i, 0, 0) for i in range(20)]
        cloud = PointCloudKernel.from_points(Vec3(0, 0, 0), points, resolution=0.3)
        octree = OccupancyOctree(vox_min=0.3)
        stats = octree.insert_point_cloud(cloud, max_volume=50.0, focus=Vec3(0, 0, 0))
        assert stats["points_skipped"] > 0
        # Every endpoint is still in the map even when carving was skipped.
        for p in points:
            assert octree.is_occupied(p)

    def test_observation_clears_phantom_occupied(self):
        octree = OccupancyOctree(vox_min=0.3)
        octree.mark_occupied(Vec3(5, 0, 0))
        cloud = PointCloudKernel.from_points(Vec3(0, 0, 0), [Vec3(10.05, 0, 0)], resolution=0.3)
        octree.insert_point_cloud(cloud, ray_step=0.3)
        assert not octree.is_occupied(Vec3(5, 0, 0))

    def test_coarsen_and_counts(self):
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for i in range(8):
            octree.mark_occupied(Vec3(0.05 + 0.3 * i, 0.05, 0.05))
        fine_cells = octree.coarse_occupied_cells(0.3)
        coarse_cells = octree.coarse_occupied_cells(2.4)
        assert len(fine_cells) == 8
        assert len(coarse_cells) < 8
        assert sum(coarse_cells.values()) == 8
        assert octree.coarsen_level_for(0.3) == 0
        assert octree.coarsen_level_for(9.6) == 5
        assert octree.coarsen_level_for(100.0) == 5

    def test_nearest_occupied_distance(self):
        octree = OccupancyOctree(vox_min=0.3)
        assert octree.nearest_occupied_distance(Vec3(0, 0, 0), 25.0) == 25.0
        octree.mark_occupied(Vec3(3, 0, 0))
        assert octree.nearest_occupied_distance(Vec3(0, 0, 0), 25.0) == pytest.approx(3.0, abs=0.3)

    def test_forget_beyond(self):
        octree = OccupancyOctree(vox_min=0.3)
        octree.mark_occupied(Vec3(1, 0, 0))
        octree.mark_occupied(Vec3(100, 0, 0))
        forgotten = octree.forget_beyond(Vec3(0, 0, 0), radius=10.0)
        assert forgotten == 1
        assert octree.is_occupied(Vec3(1, 0, 0))
        assert not octree.is_occupied(Vec3(100, 0, 0))

    def test_build_tree_invariants(self):
        octree = OccupancyOctree(vox_min=0.3, levels=4)
        positions = [Vec3(0.1, 0.1, 0.1), Vec3(1.0, 0.1, 0.1), Vec3(5.0, 5.0, 0.1)]
        for p in positions:
            octree.mark_occupied(p)
        root = octree.build_tree()
        assert root.occupied_leaves == octree.occupied_voxel_count()
        assert len(root.leaves()) == octree.occupied_voxel_count()
        # Every leaf is at depth 0 and minimum size.
        for leaf in root.leaves():
            assert leaf.depth == 0
            assert leaf.size == pytest.approx(0.3)

    def test_prune_tree_to_volume(self):
        octree = OccupancyOctree(vox_min=0.3, levels=4)
        octree.mark_occupied(Vec3(0.1, 0.1, 0.1))
        octree.mark_occupied(Vec3(20.0, 0.1, 0.1))
        root = octree.build_tree()
        pruned = prune_tree_to_volume(root, max_volume=1.0, focus=Vec3(0, 0, 0))
        assert len(pruned) >= 1
        assert pruned[0].center.distance_to(Vec3(0, 0, 0)) <= pruned[-1].center.distance_to(
            Vec3(0, 0, 0)
        )

    @given(
        st.lists(
            st.builds(
                Vec3,
                st.floats(min_value=-20, max_value=20),
                st.floats(min_value=-20, max_value=20),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_every_marked_point_is_occupied(self, pts):
        octree = OccupancyOctree(vox_min=0.5)
        for p in pts:
            octree.mark_occupied(p)
        for p in pts:
            assert octree.is_occupied(p)
        assert octree.occupied_voxel_count() <= len(pts)


class TestPlanningView:
    def build_octree(self):
        octree = OccupancyOctree(vox_min=0.3, levels=6)
        for i in range(10):
            octree.mark_occupied(Vec3(10.0, -1.5 + 0.3 * i, 5.0))
        return octree

    def test_view_precision_snaps_to_ladder(self):
        view = build_planning_view(self.build_octree(), precision=1.0)
        assert view.precision in (0.6, 1.2)

    def test_collision_queries(self):
        view = build_planning_view(self.build_octree(), precision=0.3)
        assert view.point_in_collision(Vec3(10, 0, 5))
        assert not view.point_in_collision(Vec3(0, 0, 5))
        assert view.segment_in_collision(Vec3(0, 0, 5), Vec3(20, 0, 5))
        assert not view.segment_in_collision(Vec3(0, 10, 5), Vec3(20, 10, 5))

    def test_margin_inflation(self):
        view = build_planning_view(self.build_octree(), precision=0.3)
        probe = Vec3(10, 1.5, 5)
        assert not view.point_in_collision(probe)
        assert view.point_in_collision(probe, margin=0.6)

    def test_volume_budget_limits_cells(self):
        octree = self.build_octree()
        unlimited = build_planning_view(octree, precision=0.3, focus=Vec3(0, 0, 5))
        limited = build_planning_view(
            octree, precision=0.3, max_volume=0.3**3 * 3, focus=Vec3(0, 0, 5)
        )
        assert len(limited) < len(unlimited)
        assert limited.total_volume <= unlimited.total_volume

    def test_region_radius_filters(self):
        octree = self.build_octree()
        octree.mark_occupied(Vec3(200, 0, 5))
        view = build_planning_view(octree, precision=0.3, focus=Vec3(0, 0, 5), region_radius=50.0)
        assert not view.point_in_collision(Vec3(200, 0, 5))

    def test_empty_view(self):
        view = build_planning_view(OccupancyOctree(vox_min=0.3), precision=0.3)
        assert view.is_empty()
        assert not view.segment_in_collision(Vec3(0, 0, 0), Vec3(100, 0, 0))
        assert view.bounding_box() is None

    def test_coarse_view_inflates_obstacles(self):
        octree = self.build_octree()
        fine = build_planning_view(octree, precision=0.3)
        coarse = build_planning_view(octree, precision=4.8)
        assert coarse.total_volume >= fine.total_volume
        assert len(coarse) <= len(fine)
