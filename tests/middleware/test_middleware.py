"""Tests for the clock, topics, executor, nodes and latency ledger."""

import pytest

from repro.middleware.clock import SimClock, Stopwatch
from repro.middleware.executor import DispatchRecord, Executor
from repro.middleware.latency import ALL_STAGES, LatencyLedger
from repro.middleware.message import Message
from repro.middleware.node import Node
from repro.middleware.topic import Topic, TopicBus


class TestSimClock:
    def test_advance_and_advance_to(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        assert clock.now == pytest.approx(1.5)
        clock.advance_to(1.0)  # no-op in the past
        assert clock.now == pytest.approx(1.5)
        clock.advance_to(3.0)
        assert clock.now == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_timers_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.schedule_at(2.0, lambda t: fired.append(("b", t)))
        clock.schedule_at(1.0, lambda t: fired.append(("a", t)))
        clock.advance(3.0)
        assert [name for name, _ in fired] == ["a", "b"]
        assert fired[0][1] == pytest.approx(1.0)

    def test_schedule_after(self):
        clock = SimClock(start=5.0)
        fired = []
        clock.schedule_after(1.0, lambda t: fired.append(t))
        clock.advance(0.5)
        assert not fired
        clock.advance(1.0)
        assert fired == [pytest.approx(6.0)]

    def test_stopwatch_accumulates(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        watch.charge("flight", 2.0)
        watch.charge("compute", 1.0)
        watch.charge("flight", 3.0)
        assert watch.total("flight") == pytest.approx(5.0)
        assert watch.grand_total() == pytest.approx(6.0)
        assert clock.now == pytest.approx(6.0)


class TestTopicsAndExecutor:
    def test_topic_name_validation(self):
        with pytest.raises(ValueError):
            Topic("no_slash")

    def test_publish_and_spin(self):
        bus = TopicBus()
        clock = SimClock()
        executor = Executor(bus, clock)
        received = []
        executor.subscribe("/cloud", lambda m: received.append(m.payload))
        executor.publish("/cloud", {"points": 3}, frame_id="camera")
        assert executor.pending == 1
        executor.spin()
        assert received == [{"points": 3}]
        assert executor.dispatched == 1

    def test_latched_topic_replays_last_message(self):
        bus = TopicBus()
        clock = SimClock()
        executor = Executor(bus, clock)
        bus.topic("/map", latched=True)
        executor.publish("/map", "m1", frame_id="octomap")
        executor.spin()
        late = []
        executor.subscribe("/map", lambda m: late.append(m.payload))
        assert late == ["m1"]

    def test_publish_cycle_detected(self):
        bus = TopicBus()
        executor = Executor(bus, SimClock())
        executor.subscribe("/a", lambda m: executor.publish("/a", m.payload, "looper"))
        executor.publish("/a", 0, frame_id="start")
        with pytest.raises(RuntimeError):
            executor.spin(max_callbacks=50)

    def test_node_compute_accounting(self):
        bus = TopicBus()
        executor = Executor(bus, SimClock())
        node = Node("octomap", executor)
        node.charge_compute(0.25)
        node.charge_compute(0.75)
        assert node.compute_seconds == pytest.approx(1.0)
        with pytest.raises(ValueError):
            node.charge_compute(-1.0)

    def test_node_publish_and_latest(self):
        bus = TopicBus()
        executor = Executor(bus, SimClock())
        node = Node("planner", executor)
        assert node.latest("/plan") is None
        node.publish("/plan", [1, 2, 3])
        assert node.publish_count("/plan") == 1
        assert node.latest("/plan").payload == [1, 2, 3]

    def test_message_age(self):
        msg = Message.create("x", stamp=1.0, frame_id="n")
        assert msg.age(3.0) == pytest.approx(2.0)
        assert msg.age(0.5) == 0.0


class TestExecutorReentrancy:
    """Callbacks that publish while being dispatched (the node-graph pattern)."""

    def make_executor(self, **kwargs):
        return Executor(TopicBus(), SimClock(), **kwargs)

    def test_nested_publish_is_fifo_ordered(self):
        # A callback's own publications queue behind everything already
        # pending: the delivery order is breadth-first, as in a ROS spinner.
        executor = self.make_executor()
        order = []
        executor.subscribe("/a", lambda m: (order.append("a1"), executor.publish("/b", None, "a1")))
        executor.subscribe("/a", lambda m: order.append("a2"))
        executor.subscribe("/b", lambda m: order.append("b"))
        executor.publish("/a", None, frame_id="start")
        executor.spin()
        assert order == ["a1", "a2", "b"]

    def test_chained_republication_terminates(self):
        # A bounded relay chain (a → b → c) drains without tripping the guard.
        executor = self.make_executor()
        seen = []
        executor.subscribe("/a", lambda m: executor.publish("/b", m.payload + 1, "a"))
        executor.subscribe("/b", lambda m: executor.publish("/c", m.payload + 1, "b"))
        executor.subscribe("/c", lambda m: seen.append(m.payload))
        executor.publish("/a", 0, frame_id="start")
        delivered = executor.spin()
        assert delivered == 3
        assert seen == [2]
        assert executor.pending == 0

    def test_runaway_guard_trips_at_budget(self):
        executor = self.make_executor()
        executor.subscribe("/a", lambda m: executor.publish("/a", m.payload, "looper"))
        executor.publish("/a", 0, frame_id="start")
        with pytest.raises(RuntimeError, match="publish cycle"):
            executor.spin(max_callbacks=7)
        # The guard fires after exactly the budgeted number of deliveries.
        assert executor.dispatched == 7

    def test_spin_after_guard_trip_can_resume(self):
        # The guard raises but leaves the queue intact; a non-cyclic workload
        # can still be drained afterwards.
        executor = self.make_executor()
        hits = []
        cycling = {"on": True}

        def maybe_cycle(m):
            hits.append(m.payload)
            if cycling["on"]:
                executor.publish("/a", m.payload + 1, "looper")

        executor.subscribe("/a", maybe_cycle)
        executor.publish("/a", 0, frame_id="start")
        with pytest.raises(RuntimeError):
            executor.spin(max_callbacks=3)
        cycling["on"] = False
        executor.spin()
        assert executor.pending == 0
        assert hits == list(range(len(hits)))

    def test_dispatch_log_records_topic_and_frame(self):
        executor = self.make_executor(record_dispatch=True)
        executor.subscribe("/a", lambda m: executor.publish("/b", None, "node_a"))
        executor.subscribe("/b", lambda m: None)
        executor.publish("/a", None, frame_id="source")
        executor.spin()
        assert executor.dispatch_log == [("/a", "source"), ("/b", "node_a")]

    def test_dispatch_log_disabled_by_default(self):
        executor = self.make_executor()
        executor.subscribe("/a", lambda m: None)
        executor.publish("/a", None, frame_id="source")
        executor.spin()
        assert executor.dispatch_log == []


class TestExecutorObservability:
    """The obs-facing surface: typed records, high-water mark, observers."""

    def make_executor(self, **kwargs):
        return Executor(TopicBus(), SimClock(), **kwargs)

    def test_dispatch_records_mirror_the_raw_log(self):
        executor = self.make_executor(record_dispatch=True)
        executor.subscribe("/drone/2/scan", lambda m: None)
        executor.subscribe("/plan", lambda m: None)
        executor.publish("/drone/2/scan", None, frame_id="sense")
        executor.publish("/plan", None, frame_id="planner")
        executor.spin()
        records = executor.dispatch_records()
        assert [(r.topic, r.frame_id) for r in records] == executor.dispatch_log
        assert records[0] == DispatchRecord(topic="/drone/2/scan", frame_id="sense")

    def test_dispatch_record_drone_id_parsing(self):
        assert DispatchRecord("/drone/3/scan", "f").drone_id == "3"
        assert DispatchRecord("/scan", "f").drone_id == ""
        assert DispatchRecord("/dronex/3/scan", "f").drone_id == ""

    def test_queue_high_water_tracks_peak_not_current(self):
        executor = self.make_executor()
        executor.subscribe("/a", lambda m: None)
        executor.subscribe("/a", lambda m: None)
        executor.subscribe("/a", lambda m: None)
        assert executor.queue_high_water == 0
        executor.publish("/a", None, frame_id="src")
        assert executor.queue_high_water == 3
        executor.spin()
        assert executor.pending == 0
        assert executor.queue_high_water == 3

    def test_observer_sees_every_dispatch_in_order(self):
        executor = self.make_executor()
        seen = []

        class Watcher:
            def before_dispatch(self, topic, callback, message):
                seen.append(("before", topic, message.payload))

            def after_dispatch(self, topic, callback, message):
                seen.append(("after", topic, message.payload))

        executor.add_observer(Watcher())
        executor.subscribe("/a", lambda m: None)
        executor.publish("/a", 7, frame_id="src")
        executor.spin()
        assert seen == [("before", "/a", 7), ("after", "/a", 7)]

    def test_observer_with_partial_hooks_is_fine(self):
        executor = self.make_executor()
        befores = []

        class BeforeOnly:
            def before_dispatch(self, topic, callback, message):
                befores.append(topic)

        executor.add_observer(BeforeOnly())
        executor.subscribe("/a", lambda m: None)
        executor.publish("/a", None, frame_id="src")
        executor.spin()
        assert befores == ["/a"]

    def test_observer_does_not_change_the_dispatch_log(self):
        def run(with_observer):
            executor = self.make_executor(record_dispatch=True)

            class Silent:
                def before_dispatch(self, *a):
                    pass

                def after_dispatch(self, *a):
                    pass

            if with_observer:
                executor.add_observer(Silent())
            executor.subscribe(
                "/a", lambda m: executor.publish("/b", None, "node_a")
            )
            executor.subscribe("/b", lambda m: None)
            executor.publish("/a", None, frame_id="source")
            executor.spin()
            return executor.dispatch_log

        assert run(with_observer=True) == run(with_observer=False)

    def test_remove_observer(self):
        executor = self.make_executor()
        calls = []

        class Watcher:
            def before_dispatch(self, topic, callback, message):
                calls.append(topic)

        watcher = Watcher()
        executor.add_observer(watcher)
        executor.add_observer(watcher)  # idempotent
        executor.subscribe("/a", lambda m: None)
        executor.publish("/a", None, frame_id="src")
        executor.spin()
        executor.remove_observer(watcher)
        executor.remove_observer(watcher)  # tolerated
        executor.publish("/a", None, frame_id="src")
        executor.spin()
        assert calls == ["/a"]


class TestLatencyLedger:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            LatencyLedger().record(0, "bogus_stage", 0.1, 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyLedger().record(0, "octomap", -0.1, 0.0)

    def test_decision_aggregation(self):
        ledger = LatencyLedger()
        ledger.record_many(0, {"point_cloud": 0.2, "octomap": 0.3, "comm_octomap": 0.1}, 0.0)
        ledger.record_many(1, {"point_cloud": 0.2, "octomap": 0.1}, 1.0)
        decisions = ledger.decisions()
        assert len(decisions) == 2
        assert decisions[0].total == pytest.approx(0.6)
        assert decisions[0].compute_total == pytest.approx(0.5)
        assert decisions[0].comm_total == pytest.approx(0.1)
        assert ledger.median_latency() == pytest.approx((0.6 + 0.3) / 2)
        assert ledger.max_latency() == pytest.approx(0.6)

    def test_stage_shares_sum_to_one(self):
        ledger = LatencyLedger()
        ledger.record_many(0, {"point_cloud": 0.4, "piecewise_planning": 0.6}, 0.0)
        shares = ledger.stage_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_latency_range_in_window(self):
        ledger = LatencyLedger()
        ledger.record_many(0, {"octomap": 0.5}, timestamp=10.0)
        ledger.record_many(1, {"octomap": 1.5}, timestamp=20.0)
        ledger.record_many(2, {"octomap": 0.2}, timestamp=100.0)
        assert ledger.latency_range_in_window(0.0, 50.0) == pytest.approx(1.0)
        assert ledger.latency_range_in_window(90.0, 110.0) == 0.0

    def test_all_canonical_stages_accepted(self):
        ledger = LatencyLedger()
        for stage in ALL_STAGES:
            ledger.record(0, stage, 0.01, 0.0)
        assert len(ledger) == len(ALL_STAGES)
