"""Trace round-tripping: write → read → aggregate must lose nothing.

Three invariants are pinned here:

1. a mission's streamed JSONL trace reads back into exactly the records the
   recorder held in memory;
2. aggregating from a trace file equals aggregating from the in-memory
   records (the figures are a pure function of the records); and
3. campaign trace files are byte-identical between serial and
   multiprocessing runs of the same specs.
"""

import dataclasses

import pytest

from repro import (
    CampaignRunner,
    EnvironmentConfig,
    MissionConfig,
    ScenarioSpec,
)
from repro.analysis import (
    CampaignReport,
    TraceReader,
    TraceRecorder,
    TraceWriter,
    clear_traces,
    read_traces,
    trace_path,
)
from repro.analysis.trace import DecisionRecord, MissionRecord, record_from_line, record_to_line

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)
TINY_CFG = MissionConfig(max_decisions=12, max_mission_time_s=100.0)


def tiny_spec(name="tiny", design="roborun", seed=7):
    return ScenarioSpec(
        name=name,
        design=design,
        environment=dataclasses.replace(TINY_ENV, seed=seed),
        mission=TINY_CFG,
    ).seeded(seed)


@pytest.fixture(scope="module")
def traced_mission(tmp_path_factory):
    """One traced mission: the recorder's memory plus its JSONL file."""
    path = tmp_path_factory.mktemp("traces") / "tiny.jsonl"
    spec = tiny_spec()
    with TraceWriter(path) as writer:
        recorder = TraceRecorder(writer=writer, spec=spec)
        result = spec.run(recorder=recorder)
    return {"path": path, "recorder": recorder, "result": result, "spec": spec}


class TestRecorder:
    def test_one_record_per_decision(self, traced_mission):
        recorder = traced_mission["recorder"]
        result = traced_mission["result"]
        assert len(recorder.records) == result.metrics.decision_count
        assert [r.index for r in recorder.records] == list(
            range(len(recorder.records))
        )
        assert recorder.mission_record is not None
        assert recorder.mission_record.ok

    def test_records_carry_decision_content(self, traced_mission):
        record = traced_mission["recorder"].records[0]
        assert record.spec_name == "tiny"
        assert record.design == "roborun"
        assert record.time_budget > 0
        assert record.end_to_end_latency > 0
        assert record.policy  # solver knobs present
        assert any(k.startswith("comm_") for k in record.stage_latencies)
        assert record.map_voxels > 0
        assert record.energy > 0
        assert record.stage_latencies["runtime"] >= 0

    def test_records_match_pipeline_traces(self, traced_mission):
        """The tap sees exactly what the pipeline's own traces saw."""
        recorder = traced_mission["recorder"]
        result = traced_mission["result"]
        for record, trace in zip(recorder.records, result.traces):
            assert record.index == trace.index
            assert record.stage_latencies == trace.stage_latencies
            assert record.end_to_end_latency == trace.end_to_end_latency
            assert record.time_budget == trace.time_budget
            assert record.zone == trace.zone

    def test_mission_record_metrics_match(self, traced_mission):
        mission = traced_mission["recorder"].mission_record
        assert mission.metrics == traced_mission["result"].metrics.as_dict()
        assert mission.environment["seed"] == 7


class TestRoundTrip:
    def test_file_reads_back_to_identical_records(self, traced_mission):
        records = TraceReader(traced_mission["path"]).records()
        recorder = traced_mission["recorder"]
        assert records[:-1] == recorder.records
        assert records[-1] == recorder.mission_record

    def test_line_codec_is_stable(self, traced_mission):
        for record in traced_mission["recorder"].records:
            line = record_to_line(record)
            assert record_from_line(line) == record
            assert record_to_line(record_from_line(line)) == line

    def test_aggregation_from_file_equals_in_memory(self, traced_mission):
        recorder = traced_mission["recorder"]
        decisions, missions = read_traces([traced_mission["path"]])
        from_file = CampaignReport(decisions, missions)
        in_memory = CampaignReport(recorder.records, [recorder.mission_record])
        for file_table, memory_table in zip(from_file.tables(), in_memory.tables()):
            assert file_table.columns == memory_table.columns
            assert file_table.rows == memory_table.rows
        assert from_file.to_markdown() == in_memory.to_markdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_line('{"kind": "mystery"}')

    def test_clear_traces(self, tmp_path):
        (tmp_path / "old.jsonl").write_text("{}")
        (tmp_path / "keep.txt").write_text("not a trace")
        assert clear_traces(tmp_path) == 1
        assert clear_traces(tmp_path) == 0
        assert (tmp_path / "keep.txt").exists()
        assert clear_traces(tmp_path / "missing") == 0


class TestPreWorldsCompat:
    def test_pre_worlds_decision_line_still_parses(self, traced_mission):
        """A trace line without the worlds fields (schema as of PR 3) reads
        back with the documented defaults — old saved traces stay loadable."""
        import json

        record = traced_mission["recorder"].records[0]
        data = json.loads(record_to_line(record))
        assert data["archetype"] == "paper_corridor"
        del data["archetype"]
        del data["difficulty"]
        old = DecisionRecord.from_dict(data)
        assert old.archetype == ""
        assert old.difficulty == 0.0
        assert old.index == record.index
        assert old.stage_latencies == record.stage_latencies

    def test_worlds_context_recorded_per_decision(self, traced_mission):
        for record in traced_mission["recorder"].records:
            assert record.archetype == "paper_corridor"
            assert 0.0 <= record.difficulty <= 1.0
        mission = traced_mission["recorder"].mission_record
        assert mission.archetype == "paper_corridor"


class TestCampaignTraceDeterminism:
    def test_serial_and_parallel_traces_byte_identical(self, tmp_path):
        specs = [
            tiny_spec(name="a", seed=1),
            tiny_spec(name="b", design="spatial_oblivious", seed=2),
        ]
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = CampaignRunner(max_workers=1).run(specs, trace_dir=serial_dir)
        parallel = CampaignRunner(max_workers=2).run(specs, trace_dir=parallel_dir)
        assert serial.trace_dir == str(serial_dir)
        assert parallel.trace_dir == str(parallel_dir)
        for spec in specs:
            serial_bytes = trace_path(serial_dir, spec.name).read_bytes()
            parallel_bytes = trace_path(parallel_dir, spec.name).read_bytes()
            assert serial_bytes, f"empty trace for {spec.name}"
            assert serial_bytes == parallel_bytes

    def test_mixed_archetype_campaign_traces_byte_identical(self, tmp_path):
        """Worlds determinism across process boundaries: a grid sweeping two
        archetypes (one with a dynamic obstacle) streams byte-identical
        traces from serial and multiprocessing workers."""
        from repro import MoverSpec, WorldSpec, scenario_grid

        crosser = MoverSpec(
            kind="crosser", origin=(30.0, -20.0, 2.0), velocity=(0.0, 2.0, 0.0),
            span_m=40.0,
        )
        specs = scenario_grid(
            "mix",
            designs=("roborun",),
            worlds=(WorldSpec(archetype="forest"),
                    WorldSpec(archetype="warehouse", movers=(crosser,))),
            base_environment=TINY_ENV,
            mission=dataclasses.replace(TINY_CFG, max_decisions=8),
            base_seed=21,
        )
        assert len(specs) == 2
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        CampaignRunner(max_workers=1).run(specs, trace_dir=serial_dir)
        CampaignRunner(max_workers=2).run(specs, trace_dir=parallel_dir)
        for spec in specs:
            serial_bytes = trace_path(serial_dir, spec.name).read_bytes()
            assert serial_bytes, f"empty trace for {spec.name}"
            assert serial_bytes == trace_path(parallel_dir, spec.name).read_bytes()
        # The traces carry the archetype context they were flown in.
        report = CampaignReport.from_trace_dir(serial_dir)
        assert sorted({d.archetype for d in report.decisions}) == [
            "forest", "warehouse",
        ]
        assert {m.archetype for m in report.missions} == {"forest", "warehouse"}
        assert any(d.difficulty > 0.0 for d in report.decisions)

    def test_campaign_trace_aggregates_match_outcomes(self, tmp_path):
        specs = [
            tiny_spec(name="a", seed=1),
            tiny_spec(name="b", design="spatial_oblivious", seed=2),
        ]
        campaign = CampaignRunner(max_workers=1).run(specs, trace_dir=tmp_path)
        report = CampaignReport.from_trace_dir(tmp_path)
        assert len(report.missions) == 2
        by_name = {m.spec_name: m for m in report.missions}
        for outcome in campaign.outcomes:
            assert by_name[outcome.spec.name].metrics == outcome.metrics

    def test_stale_traces_swept_by_run(self, tmp_path):
        ghost = tmp_path / "ghost.jsonl"
        ghost.write_text("{}")
        CampaignRunner(max_workers=1).run(
            [tiny_spec(name="a", seed=1)], trace_dir=tmp_path
        )
        assert not ghost.exists()
        assert trace_path(tmp_path, "a").exists()

    def test_colliding_sanitised_names_rejected(self, tmp_path):
        specs = [tiny_spec(name="a/b", seed=1), tiny_spec(name="a_b", seed=2)]
        with pytest.raises(ValueError, match="colliding trace files"):
            CampaignRunner(max_workers=1).run(specs, trace_dir=tmp_path)

    def test_traced_mission_equals_untraced(self):
        """Tracing must not perturb the mission (same seed, same metrics)."""
        plain = tiny_spec(name="t", seed=3).run()
        recorder = TraceRecorder(spec=tiny_spec(name="t", seed=3))
        traced = tiny_spec(name="t", seed=3).run(recorder=recorder)
        assert traced.metrics.as_dict() == plain.metrics.as_dict()


class TestMissionRecordFromResult:
    def test_from_result_matches_recorder(self, traced_mission):
        record = MissionRecord.from_result(
            traced_mission["result"], spec=traced_mission["spec"]
        )
        assert record == traced_mission["recorder"].mission_record
