"""Figure aggregators, campaign error surfacing and the report CLI."""

import dataclasses
import json

import pytest

from repro import (
    CampaignRunner,
    EnvironmentConfig,
    MissionConfig,
    ScenarioSpec,
)
from repro.analysis import CampaignReport, FigureTable
from repro.analysis.figures import (
    archetype_comparison,
    fig2_latency_deadline,
    fig2a_model_table,
    fig5_governor_response,
    fig5_model_table,
    fig7_overall,
    fig8_sensitivity,
)
from repro.analysis.trace import DecisionRecord, MissionRecord
from repro.report import load_grid_file, main as report_main

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)
TINY_CFG = MissionConfig(max_decisions=12, max_mission_time_s=100.0)


def make_decision(design="roborun", index=0, speed=1.0, visibility=10.0,
                  latency=0.5, budget=2.0):
    return DecisionRecord(
        spec_name="t",
        design=design,
        index=index,
        timestamp=float(index),
        position=(0.0, 0.0, 5.0),
        zone="A",
        speed=speed,
        velocity_cap=2.0,
        time_budget=budget,
        predicted_latency=latency,
        solver_feasible=True,
        policy={"point_cloud_precision": 0.6},
        stage_latencies={"runtime": latency, "comm_control": 0.0},
        end_to_end_latency=latency,
        visibility=visibility,
        closest_obstacle=5.0,
        gap_min=1.0,
        gap_avg=2.0,
        sensor_volume=1000.0,
        map_volume=500.0,
        map_voxels=100,
        flown=1.0,
        interval=1.0,
        energy=450.0,
        replanned=False,
        dropped=False,
        hit=False,
    )


def make_mission(design="roborun", name="m", density=0.3, time_s=100.0, error=None,
                 archetype=None):
    return MissionRecord(
        spec_name=name,
        design=design,
        seed=1,
        environment={"obstacle_density": density, "obstacle_spread": 30.0,
                     "goal_distance": 60.0},
        metrics={} if error else {
            "success": 1.0,
            "mission_time_s": time_s,
            "mean_velocity_mps": 60.0 / time_s,
            "energy_kj": time_s * 0.5,
            "mean_cpu_utilization": 0.5,
            "decision_count": 10.0,
        },
        error=error,
        spec={"world": {"archetype": archetype}} if archetype else None,
    )


class TestFigureTable:
    def test_markdown_and_csv(self):
        table = FigureTable("k", "T", ["a", "b"], [[1, 2], [3, 4]])
        md = table.to_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| 3 | 4 |" in md
        assert table.to_csv() == "a,b\n1,2\n3,4\n"
        assert table.as_rows() == [["a", "b"], [1, 2], [3, 4]]


class TestTraceAggregators:
    def test_fig2_bins_by_design_and_speed(self):
        decisions = [
            make_decision(speed=0.2, latency=0.4, budget=1.0),
            make_decision(speed=0.3, latency=0.6, budget=2.0),
            make_decision(design="spatial_oblivious", speed=0.2),
        ]
        table = fig2_latency_deadline(decisions)
        # baseline row first, then roborun; one bucket each
        assert table.rows[0][0] == "spatial_oblivious"
        robo = table.rows[1]
        assert robo[2] == 2  # two decisions in the [0, 0.5) bucket
        assert robo[3] == pytest.approx(1.5)  # mean deadline
        assert robo[4] == pytest.approx(0.5)  # mean latency
        assert robo[5] == 1.0  # both met their deadline

    def test_fig5_static_column_is_flat(self):
        decisions = [
            make_decision(design="spatial_oblivious", visibility=v,
                          latency=2.0, budget=6.7)
            for v in (2.0, 12.0, 22.0)
        ] + [
            make_decision(visibility=v, latency=0.2 + v / 100.0, budget=v / 2.0)
            for v in (2.0, 12.0, 22.0)
        ]
        table = fig5_governor_response(decisions)
        static_deadlines = {row[table.columns.index("spatial_oblivious_deadline_s")]
                            for row in table.rows}
        assert static_deadlines == {6.7}
        robo_deadlines = [row[table.columns.index("roborun_deadline_s")]
                          for row in table.rows]
        assert robo_deadlines == sorted(robo_deadlines)

    def test_fig7_improvement_ratios(self):
        missions = [
            make_mission(design="spatial_oblivious", name="b", time_s=200.0),
            make_mission(design="roborun", name="r", time_s=100.0),
        ]
        table = fig7_overall(missions)
        assert table.columns == ["metric", "spatial_oblivious", "roborun", "improvement"]
        by_metric = {row[0]: row for row in table.rows}
        assert by_metric["mission time (s)"][3] == pytest.approx(2.0)
        assert by_metric["flight velocity (m/s)"][3] == pytest.approx(2.0)
        assert by_metric["CPU utilization"][3] == pytest.approx(0.0)

    def test_fig7_skips_errored_missions(self):
        missions = [
            make_mission(design="roborun", name="ok", time_s=100.0),
            make_mission(design="roborun", name="bad",
                         error={"type": "ValueError", "message": "boom"}),
        ]
        table = fig7_overall(missions)
        assert table.rows[0] == ["missions", 1]

    def test_fig8_ratio_and_degenerate_sweep(self):
        missions = [
            make_mission(name="a", density=0.3, time_s=100.0),
            make_mission(name="b", density=0.6, time_s=150.0),
        ]
        table = fig8_sensitivity(missions, "obstacle_density")
        assert table.meta["ratios"]["roborun"] == pytest.approx(1.5)
        degenerate = fig8_sensitivity(missions, "obstacle_spread")
        assert degenerate.meta["ratios"]["roborun"] is None
        assert degenerate.rows[0][-1] == "n/a"

    def test_failed_mission_decisions_excluded_from_fig_tables(self):
        """Partial decision records of a crashed spec must not skew fig2/fig5."""
        good = make_decision(speed=1.0, latency=0.5)
        bad = dataclasses.replace(
            make_decision(speed=1.0, latency=99.0), spec_name="bad"
        )
        missions = [
            make_mission(name="t"),
            make_mission(name="bad", error={"type": "X", "message": "y"}),
        ]
        report = CampaignReport([good, bad], missions)
        fig2 = report.fig2()
        assert sum(row[2] for row in fig2.rows) == 1  # only the completed one
        assert all(row[4] != 99.0 for row in fig2.rows)

    def test_model_tables_have_expected_shape(self):
        fig2a = fig2a_model_table()
        assert fig2a.columns[0] == "precision_m"
        assert len(fig2a.rows) == 6
        fig5 = fig5_model_table()
        static = [row[1] for row in fig5.rows]
        assert len(set(static)) == 1  # static latency is flat by construction


class TestArchetypeComparison:
    def test_rows_group_by_archetype_with_speedups(self):
        missions = [
            make_mission(design="spatial_oblivious", name="b1", time_s=200.0,
                         archetype="forest"),
            make_mission(design="roborun", name="r1", time_s=100.0,
                         archetype="forest"),
            make_mission(design="spatial_oblivious", name="b2", time_s=300.0,
                         archetype="warehouse"),
            make_mission(design="roborun", name="r2", time_s=100.0,
                         archetype="warehouse"),
        ]
        table = archetype_comparison(missions)
        assert table.key == "archetypes"
        assert [row[0] for row in table.rows] == ["forest", "warehouse"]
        assert table.meta["speedups"]["forest"] == pytest.approx(2.0)
        assert table.meta["speedups"]["warehouse"] == pytest.approx(3.0)
        # Baseline columns come first (design_order), then roborun.
        assert table.columns[1].startswith("spatial_oblivious")
        assert table.rows[0][-1] == 2.0

    def test_missing_pair_reports_na(self):
        missions = [make_mission(design="roborun", name="r", archetype="forest")]
        table = archetype_comparison(missions)
        assert table.rows[0][-1] == "n/a"
        assert table.meta["speedups"]["forest"] is None

    def test_pre_worlds_records_count_as_paper_corridor(self):
        missions = [
            make_mission(design="roborun", name="old"),  # no spec at all
            make_mission(design="spatial_oblivious", name="old_b"),
        ]
        table = archetype_comparison(missions)
        assert [row[0] for row in table.rows] == ["paper_corridor"]
        assert missions[0].archetype == "paper_corridor"

    def test_errored_missions_excluded(self):
        missions = [
            make_mission(design="roborun", name="ok", archetype="forest"),
            make_mission(design="roborun", name="bad", archetype="forest",
                         error={"type": "RuntimeError", "message": "boom"}),
        ]
        table = archetype_comparison(missions)
        assert table.columns[1] == "roborun_missions"
        assert table.rows[0][1] == 1  # only "ok" counted

    def test_report_includes_archetype_table(self):
        report = CampaignReport(
            decisions=[],
            missions=[make_mission(design="roborun", name="r", archetype="forest")],
        )
        assert report.archetypes().rows
        assert "Per-archetype comparison" in report.to_markdown()


class TestCampaignErrorRecords:
    def _good_spec(self):
        return ScenarioSpec(
            name="good", design="roborun", environment=TINY_ENV, mission=TINY_CFG
        )

    def test_worker_surfaces_exception_as_error_row(self):
        from repro.simulation.campaign import _run_payload

        bad_payload = {
            "spec": {"name": "bad", "design": "roborun",
                     "environment": {"obstacle_density": 5.0}},
            "keep_results": False,
        }
        row = _run_payload(bad_payload)
        assert "metrics" not in row
        assert row["error"]["type"] == "ValueError"
        assert "obstacle density" in row["error"]["message"]
        assert json.loads(row["error"]["spec_json"])["name"] == "bad"
        assert "Traceback" in row["error"]["traceback"]

    def test_unparseable_spec_still_leaves_error_trace(self, tmp_path):
        """A spec that fails to even parse must leave an error record on disk."""
        from repro.analysis import CampaignReport as Report
        from repro.simulation.campaign import _run_payload

        row = _run_payload({
            "spec": {"name": "bad", "design": "roborun",
                     "environment": {"obstacle_density": 5.0}},
            "trace_dir": str(tmp_path),
        })
        assert row["error"]["type"] == "ValueError"
        report = Report.from_trace_dir(tmp_path)
        assert len(report.failures()) == 1
        assert report.failures()[0].spec_name == "bad"

    def test_clean_campaign_has_no_failures(self):
        campaign = CampaignRunner(max_workers=1).run([self._good_spec()])
        assert campaign.failures() == []
        assert campaign.outcomes[0].ok

    def test_error_outcome_aggregation(self, tmp_path, monkeypatch):
        import repro.simulation.campaign as campaign_mod

        good = self._good_spec()
        bad = dataclasses.replace(good, name="boom")
        original = campaign_mod.ScenarioSpec.run

        def exploding_run(self, recorder=None):
            if self.name == "boom":
                raise RuntimeError("mid-mission failure")
            return original(self, recorder=recorder)

        monkeypatch.setattr(campaign_mod.ScenarioSpec, "run", exploding_run)
        campaign = CampaignRunner(max_workers=1).run(
            [good, bad], trace_dir=tmp_path
        )
        assert len(campaign.failures()) == 1
        failure = campaign.failures()[0]
        assert failure.spec.name == "boom"
        assert failure.metrics is None
        assert failure.error["type"] == "RuntimeError"
        assert json.loads(failure.error["spec_json"])["name"] == "boom"
        # Aggregates skip the failed spec but count it against success.
        summary = campaign.summary()
        assert summary["roborun"]["failed"] == 1.0
        assert summary["roborun"]["mean_mission_time_s"] > 0
        # The trace stream records the failure too, so trace-only reports
        # show the partial failure.
        report = CampaignReport.from_trace_dir(tmp_path)
        assert len(report.failures()) == 1
        assert report.failures()[0].spec_name == "boom"
        markdown = report.to_markdown()
        assert "Partial failures" in markdown
        assert "RuntimeError" in markdown


class TestReportCli:
    def test_grid_file_shapes(self, tmp_path):
        grid = tmp_path / "g.json"
        grid.write_text(json.dumps({
            "grid": {
                "name_prefix": "g",
                "designs": ["roborun"],
                "densities": [0.3, 0.5],
                "base_environment": {"obstacle_spread": 30.0, "goal_distance": 60.0},
                "mission": {"max_decisions": 5},
                "base_seed": 3,
            }
        }))
        specs = load_grid_file(grid)
        assert [s.design for s in specs] == ["roborun", "roborun"]
        assert [s.seed for s in specs] == [3, 4]

        listed = tmp_path / "list.json"
        listed.write_text(json.dumps([s.to_dict() for s in specs]))
        assert load_grid_file(listed) == specs

        with pytest.raises(ValueError):
            bad = tmp_path / "bad.json"
            bad.write_text(json.dumps({"nope": 1}))
            load_grid_file(bad)

    def test_cli_end_to_end_on_tiny_grid(self, tmp_path):
        grid = tmp_path / "tiny.json"
        grid.write_text(json.dumps({
            "grid": {
                "name_prefix": "tiny",
                "densities": [0.3],
                "base_environment": {"obstacle_spread": 30.0, "goal_distance": 60.0,
                                     "seed": 7},
                "mission": {"max_decisions": 8, "max_mission_time_s": 60.0},
                "base_seed": 7,
            }
        }))
        out = tmp_path / "report.md"
        trace_dir = tmp_path / "traces"
        # A stale trace from an earlier, different campaign must not leak
        # into the new report.
        trace_dir.mkdir()
        stale = trace_dir / "stale_spec.jsonl"
        stale.write_text("")
        code = report_main([
            "--grid", str(grid),
            "--out", str(out),
            "--trace-dir", str(trace_dir),
            "--workers", "1",
            "--csv-dir", str(tmp_path / "csv"),
        ])
        assert code == 0
        assert not stale.exists()
        content = out.read_text()
        assert content.strip()
        assert "stale_spec" not in content
        for anchor in ("Figure 2", "Figure 5", "Figure 7", "Figure 8",
                       "Per-archetype comparison"):
            assert anchor in content
        assert "paper_corridor" in content
        assert (tmp_path / "csv" / "fig7.csv").exists()
        # Re-reporting from the saved traces alone reproduces the report.
        out2 = tmp_path / "report2.md"
        assert report_main(["--traces", str(trace_dir), "--out", str(out2)]) == 0
        body = lambda text: text.split("\n", 1)[1]
        assert body(out2.read_text()) == body(content)
