"""Tests for the declarative scenario layer and the campaign runner."""

import dataclasses

import pytest

from repro import (
    CampaignRunner,
    EnvironmentConfig,
    FaultSet,
    MissionConfig,
    ScenarioSpec,
    SensorDropout,
    WorldSpec,
    scenario_grid,
)
from repro.simulation.campaign import _run_payload

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)
TINY_CFG = MissionConfig(max_decisions=15, max_mission_time_s=100.0)


def tiny_spec(name="tiny", design="roborun", **overrides):
    return ScenarioSpec(
        name=name,
        design=design,
        environment=dataclasses.replace(TINY_ENV, **overrides),
        mission=TINY_CFG,
    )


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="", design="roborun")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", design="not_a_design")

    def test_json_round_trip(self):
        spec = ScenarioSpec(
            name="rt",
            design="spatial_oblivious",
            environment=TINY_ENV,
            mission=dataclasses.replace(TINY_CFG, flight_band_m=(1.5, 9.5)),
            faults=FaultSet(sensor_dropout=SensorDropout(every_n=4, start_decision=2)),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.mission.flight_band_m == (1.5, 9.5)
        assert restored.faults.sensor_dropout.every_n == 4

    def test_seeded_stamps_both_seeds(self):
        spec = tiny_spec().seeded(99)
        assert spec.environment.seed == 99
        assert spec.mission.rng_seed == 99
        assert spec.seed == 99

    def test_run_produces_mission_result(self):
        result = tiny_spec().run()
        assert result.design == "roborun"
        assert result.metrics.decision_count > 0

    def test_worker_payload_round_trip(self):
        spec = tiny_spec(name="worker")
        row = _run_payload({"spec": spec.to_dict(), "keep_results": False})
        assert row["metrics"]["decision_count"] > 0
        assert "result" not in row


class TestScenarioGrid:
    def test_grid_covers_product_with_distinct_seeds(self):
        specs = scenario_grid(
            "g",
            densities=(0.3, 0.5),
            spreads=(30.0,),
            goal_distances=(60.0, 90.0),
            base_environment=TINY_ENV,
            mission=TINY_CFG,
            base_seed=10,
        )
        assert len(specs) == 2 * 2 * 2  # designs x densities x goals
        assert len({spec.name for spec in specs}) == len(specs)
        assert [spec.seed for spec in specs] == list(range(10, 10 + len(specs)))
        assert {spec.design for spec in specs} == {"roborun", "spatial_oblivious"}

    def test_grid_defaults_to_base_environment_values(self):
        specs = scenario_grid("g", designs=("roborun",), base_environment=TINY_ENV,
                              mission=TINY_CFG)
        assert len(specs) == 1
        assert specs[0].environment.obstacle_density == TINY_ENV.obstacle_density
        # No worlds axis: the default world and the pre-worlds names.
        assert specs[0].world == WorldSpec()
        assert "paper_corridor" not in specs[0].name

    def test_grid_sweeps_world_archetypes(self):
        specs = scenario_grid(
            "g",
            designs=("roborun",),
            worlds=("paper_corridor", "forest", WorldSpec(archetype="warehouse")),
            densities=(0.3, 0.5),
            base_environment=TINY_ENV,
            mission=TINY_CFG,
            base_seed=5,
        )
        assert len(specs) == 3 * 2  # worlds x densities
        assert len({spec.name for spec in specs}) == len(specs)
        assert [spec.seed for spec in specs] == list(range(5, 11))
        archetypes = [spec.world.archetype for spec in specs]
        assert archetypes == ["paper_corridor"] * 2 + ["forest"] * 2 + ["warehouse"] * 2
        # Archetype names land in the spec names when worlds are swept.
        assert all(spec.world.archetype in spec.name for spec in specs)
        # Grid dictionaries round-trip through JSON (the campaign pool path).
        for spec in specs:
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_repeated_archetype_variants_get_distinct_names(self):
        specs = scenario_grid(
            "g",
            designs=("roborun",),
            worlds=(WorldSpec(archetype="forest"),
                    WorldSpec(archetype="forest", params={"cover_scale": 0.2})),
            base_environment=TINY_ENV,
            mission=TINY_CFG,
        )
        assert len({spec.name for spec in specs}) == 2
        assert specs[0].world != specs[1].world

    def test_unknown_archetype_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="archetype"):
            ScenarioSpec(name="x", world=WorldSpec(archetype="volcano"))


class TestCampaignRunner:
    def test_duplicate_names_rejected(self):
        specs = [tiny_spec(name="dup"), tiny_spec(name="dup", design="spatial_oblivious")]
        with pytest.raises(ValueError):
            CampaignRunner(max_workers=1).run(specs)

    def test_serial_and_parallel_agree(self):
        specs = [
            tiny_spec(name="a").seeded(1),
            tiny_spec(name="b", design="spatial_oblivious").seeded(2),
        ]
        serial = CampaignRunner(max_workers=1).run(specs)
        parallel = CampaignRunner(max_workers=2).run(specs)
        assert [o.metrics for o in serial.outcomes] == [
            o.metrics for o in parallel.outcomes
        ]
        assert [o.spec.name for o in parallel.outcomes] == ["a", "b"]

    def test_aggregates(self):
        specs = [
            tiny_spec(name="a").seeded(1),
            tiny_spec(name="b", design="spatial_oblivious").seeded(2),
        ]
        campaign = CampaignRunner(max_workers=1).run(specs)
        assert len(campaign) == 2
        assert set(campaign.by_design()) == {"roborun", "spatial_oblivious"}
        assert 0.0 <= campaign.success_rate() <= 1.0
        assert campaign.mean_metric("mission_time_s") > 0
        summary = campaign.summary()
        assert summary["roborun"]["missions"] == 1.0
        payload = campaign.to_dict()
        assert len(payload["outcomes"]) == 2

    def test_keep_results_returns_traces(self):
        campaign = CampaignRunner(max_workers=1).run(
            [tiny_spec(name="traced")], keep_results=True
        )
        result = campaign.outcomes[0].result
        assert result is not None
        assert len(result.traces) == result.metrics.decision_count
        # The live node graph never crosses the campaign boundary.
        assert result.pipeline is None


@pytest.mark.slow
class TestCampaignSweepAcceptance:
    """The acceptance sweep: ≥8 scenarios incl. a fault injection, parallel."""

    def build_specs(self):
        specs = scenario_grid(
            "acc",
            densities=(0.3, 0.5),
            goal_distances=(60.0, 90.0),
            base_environment=TINY_ENV,
            mission=dataclasses.replace(TINY_CFG, max_decisions=40),
            base_seed=50,
        )
        specs.append(
            ScenarioSpec(
                name="acc_roborun_dropout",
                design="roborun",
                environment=TINY_ENV,
                mission=dataclasses.replace(TINY_CFG, max_decisions=40),
                faults=FaultSet(sensor_dropout=SensorDropout(every_n=3)),
            ).seeded(60)
        )
        return specs

    def test_parallel_sweep_is_deterministic(self):
        specs = self.build_specs()
        assert len(specs) >= 8
        assert any(spec.faults.active() for spec in specs)
        parallel = CampaignRunner(max_workers=4).run(specs)
        serial = CampaignRunner(max_workers=1).run(specs)
        assert [o.metrics for o in parallel.outcomes] == [
            o.metrics for o in serial.outcomes
        ]
        assert len(parallel) == len(specs)
        summary = parallel.summary()
        assert summary["roborun"]["missions"] == float(
            sum(1 for s in specs if s.design == "roborun")
        )
        assert all(o.metrics["decision_count"] > 0 for o in parallel.outcomes)
