"""The fault-matrix harness: every registered fault, every contract.

One parametrised suite proves, per registered fault class:

* serialisation — a scheduled fault round-trips through JSON to an equal
  value;
* validation — invalid parameters and unknown keys are rejected with a
  clear :class:`ValueError`;
* effect — a short mission flown under the fault observably diverges from
  the no-fault golden run of the same scenario;
* determinism — a named fault sweep produces byte-identical trace files
  whether the campaign runs serially or across a process pool.

The matrix is keyed by the registry itself (:func:`repro.fault_names`), so
registering a new fault without adding a matrix case fails the suite — the
registry cannot silently outgrow its tests.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import (
    CameraDegradation,
    CampaignRunner,
    CommsDropout,
    CommsLatencySpike,
    EnvironmentConfig,
    FaultOrchestrator,
    FaultSchedule,
    FaultSet,
    MissionConfig,
    MoverSpec,
    PowerBrownout,
    ScenarioSpec,
    SensorDropout,
    StuckMover,
    ThermalThrottle,
    WorldSpec,
    fault_names,
    scenario_grid,
)
from repro.analysis.recorder import TraceRecorder
from repro.middleware.latency import COMM_STAGES, is_comm_stage
from repro.simulation.faults import get_fault, is_registered_fault, register_fault

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)
TINY_CFG = MissionConfig(max_decisions=15, max_mission_time_s=100.0)

#: A mover crossing the corridor flight line: starts south of the start→goal
#: axis and drifts north through it, so freezing it mid-route is observable
#: in the world's ground-truth dynamic layer.
CROSSER_WORLD = WorldSpec(
    movers=(
        MoverSpec(
            kind="crosser",
            origin=(15.0, -6.0, 5.0),
            velocity=(0.0, 1.5, 0.0),
            span_m=12.0,
            name="cart",
        ),
    )
)


@dataclasses.dataclass(frozen=True)
class FaultCase:
    """One registered fault's matrix row."""

    #: A representative valid instance (used for round-trips and missions).
    valid: object
    #: Parameter dictionaries ``from_dict`` must reject with ValueError.
    invalid: tuple
    #: World used for the divergence mission (faults needing movers override).
    world: WorldSpec = WorldSpec()


FAULT_CASES = {
    "sensor_dropout": FaultCase(
        valid=SensorDropout(every_n=2),
        invalid=({"every_n": 1}, {"every_n": 3, "start_decision": -1}),
    ),
    "camera_degradation": FaultCase(
        valid=CameraDegradation(width=16, height=12),
        invalid=({"width": 0, "height": 12}, {"width": 16, "height": 12,
                                              "after_decision": -2}),
    ),
    "comms_dropout": FaultCase(
        valid=CommsDropout(hop="comm_octomap", every_n=1, retransmit_s=0.08),
        invalid=({"hop": "comm_teleport"}, {"every_n": 0}, {"retransmit_s": 0.0}),
    ),
    "comms_latency_spike": FaultCase(
        valid=CommsLatencySpike(factor=4.0, hop="all"),
        invalid=({"factor": 1.0}, {"factor": 4.0, "hop": "sideband"}),
    ),
    "power_brownout": FaultCase(
        valid=PowerBrownout(scale=0.4),
        invalid=({"scale": 0.0}, {"scale": 1.0}, {"scale": 1.5}),
    ),
    "thermal_throttle": FaultCase(
        valid=ThermalThrottle(ramp_per_decision=0.2, max_factor=1.8),
        invalid=({"ramp_per_decision": 0.0}, {"ramp_per_decision": 0.1,
                                              "max_factor": 0.5}),
    ),
    "stuck_mover": FaultCase(
        valid=StuckMover(mover="cart"),
        invalid=({"mover": ""},),
        world=CROSSER_WORLD,
    ),
}

ALL_FAULTS = sorted(FAULT_CASES)


def scheduled_set(fault, activate_at=2, clear_at=None, jitter=0):
    """A fault set holding one timed window around the given fault."""
    return FaultSet(
        schedule=(
            FaultSchedule(
                fault=fault, activate_at=activate_at, clear_at=clear_at,
                jitter=jitter,
            ),
        )
    )


def fly(faults=None, world=None, design="roborun"):
    """One short, fully seeded mission; returns the live MissionResult."""
    spec = ScenarioSpec(
        name="matrix",
        design=design,
        environment=TINY_ENV,
        mission=TINY_CFG,
        faults=faults if faults is not None else FaultSet(),
        world=world if world is not None else WorldSpec(),
    )
    return spec.build_simulator().run()


def trace_signature(result):
    """The per-decision observables a fault must be able to perturb."""
    return [
        (
            trace.index,
            (trace.position.x, trace.position.y, trace.position.z),
            trace.time_budget,
            trace.velocity_cap,
            dict(trace.policy),
            dict(trace.stage_latencies),
            trace.end_to_end_latency,
        )
        for trace in result.traces
    ]


def mover_signature(result):
    """Final ground-truth positions of the world's dynamic obstacles."""
    dynamics = getattr(result.environment, "dynamics", None)
    if dynamics is None:
        return []
    return [
        (obstacle.name, obstacle.center.x, obstacle.center.y, obstacle.center.z)
        for obstacle in dynamics.world.dynamic_obstacles
    ]


@pytest.fixture(scope="module")
def goldens():
    """No-fault golden signatures, one per world used by the matrix."""
    cache = {}
    for world in {WorldSpec(), CROSSER_WORLD}:
        result = fly(world=world)
        cache[world] = (trace_signature(result), mover_signature(result))
    return cache


class TestMatrixCompleteness:
    def test_every_registered_fault_has_a_case(self):
        assert set(FAULT_CASES) == set(fault_names()), (
            "every registered fault needs a FAULT_CASES row (and vice versa)"
        )

    def test_registry_lookups(self):
        for name in fault_names():
            assert is_registered_fault(name)
            cls = get_fault(name)
            assert cls.fault_name == name
            assert isinstance(FAULT_CASES[name].valid, cls)
        assert not is_registered_fault("volcano")
        with pytest.raises(KeyError, match="registered"):
            get_fault("volcano")

    def test_duplicate_and_empty_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_fault("sensor_dropout")
            class Shadow:  # pragma: no cover - never registered
                pass
        with pytest.raises(ValueError, match="non-empty"):
            register_fault("")


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_fault_round_trips_through_json(self, name):
        fault = FAULT_CASES[name].valid
        payload = json.loads(json.dumps(fault.to_dict()))
        assert type(fault).from_dict(payload) == fault

    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_scheduled_fault_set_round_trips(self, name):
        original = scheduled_set(FAULT_CASES[name].valid, activate_at=3,
                                 clear_at=9, jitter=1)
        payload = json.loads(json.dumps(original.to_dict()))
        assert FaultSet.from_dict(payload) == original

    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_scenario_spec_round_trips_with_schedule(self, name):
        spec = ScenarioSpec(
            name="rt",
            environment=TINY_ENV,
            mission=TINY_CFG,
            faults=scheduled_set(FAULT_CASES[name].valid, clear_at=8),
            world=FAULT_CASES[name].world,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestValidation:
    @pytest.mark.parametrize(
        "name,params",
        [(name, params) for name in ALL_FAULTS
         for params in FAULT_CASES[name].invalid],
        ids=[f"{name}-{i}" for name in ALL_FAULTS
             for i in range(len(FAULT_CASES[name].invalid))],
    )
    def test_invalid_params_rejected(self, name, params):
        with pytest.raises(ValueError) as err:
            get_fault(name).from_dict(dict(params))
        assert str(err.value), "rejection must carry a message"

    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_unknown_param_key_rejected_by_name(self, name):
        params = dict(FAULT_CASES[name].valid.to_dict())
        params["warp_drive"] = 1
        with pytest.raises(ValueError, match="warp_drive"):
            get_fault(name).from_dict(params)

    def test_unknown_fault_set_key_names_registered_faults(self):
        with pytest.raises(ValueError) as err:
            FaultSet.from_dict({"power_brownout": {"scale": 0.4}})
        message = str(err.value)
        assert "power_brownout" in message
        for name in fault_names():
            assert name in message

    def test_unknown_schedule_fault_rejected(self):
        with pytest.raises(ValueError, match="volcano"):
            FaultSet.from_dict(
                {"schedule": [{"fault": "volcano", "params": {}}]}
            )

    def test_schedule_window_validation(self):
        fault = PowerBrownout(scale=0.4)
        with pytest.raises(ValueError, match="activate_at"):
            FaultSchedule(fault=fault, activate_at=-1)
        with pytest.raises(ValueError, match="clear_at"):
            FaultSchedule(fault=fault, activate_at=5, clear_at=5)
        with pytest.raises(ValueError, match="jitter"):
            FaultSchedule(fault=fault, jitter=-1)
        with pytest.raises(ValueError, match="registered"):
            FaultSchedule(fault=object())


class TestScheduleResolution:
    def test_no_jitter_resolves_exactly(self):
        entry = FaultSchedule(fault=PowerBrownout(), activate_at=4, clear_at=9)
        assert entry.resolve(seed=123, ordinal=0) == (4, 9)

    def test_jitter_is_deterministic_and_bounded(self):
        entry = FaultSchedule(
            fault=PowerBrownout(), activate_at=5, clear_at=10, jitter=2
        )
        first = entry.resolve(seed=42, ordinal=0)
        assert first == entry.resolve(seed=42, ordinal=0)
        start, end = first
        assert 3 <= start <= 7
        assert 8 <= end <= 12
        assert end > start
        # A different seed may (and here does) move the window.
        windows = {entry.resolve(seed=s, ordinal=0) for s in range(20)}
        assert len(windows) > 1

    def test_orchestrator_window_semantics(self):
        faults = scheduled_set(PowerBrownout(scale=0.4), activate_at=3,
                               clear_at=6)
        orch = FaultOrchestrator(faults, seed=0)
        assert orch.enabled
        assert [orch.budget_scale(i) for i in range(8)] == [
            1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0, 1.0
        ]
        assert orch.active_fault_names(3) == ("power_brownout",)
        assert orch.active_fault_names(6) == ()

    def test_orchestrator_disabled_without_faults(self):
        orch = FaultOrchestrator(FaultSet(), seed=0)
        assert not orch.enabled
        assert orch.windows == ()
        stages = {"perception": 0.1, "comm_octomap": 0.01}
        assert orch.apply_stage_latencies(0, stages) == stages

    def test_orchestrator_folds_comm_and_compute_stages(self):
        faults = FaultSet(
            schedule=(
                FaultSchedule(fault=CommsLatencySpike(factor=2.0), activate_at=0),
                FaultSchedule(
                    fault=ThermalThrottle(ramp_per_decision=0.5, max_factor=4.0),
                    activate_at=0,
                ),
            )
        )
        orch = FaultOrchestrator(faults, seed=0)
        stages = {"perception": 0.1, "comm_octomap": 0.01}
        adjusted = orch.apply_stage_latencies(2, stages)
        # active_for=2 → thermal factor 1 + 0.5*2 = 2.0; spike doubles comms.
        assert adjusted["perception"] == pytest.approx(0.2)
        assert adjusted["comm_octomap"] == pytest.approx(0.02)

    def test_legacy_fields_become_always_on_windows(self):
        faults = FaultSet(sensor_dropout=SensorDropout(every_n=2))
        orch = FaultOrchestrator(faults, seed=0)
        assert orch.enabled
        window = orch.windows[0]
        assert (window.start, window.end) == (0, None)
        assert orch.sensor_dropped(1) and not orch.sensor_dropped(0)

    def test_stuck_mover_pins_earliest_covering_window(self):
        faults = FaultSet(
            schedule=(
                FaultSchedule(fault=StuckMover(mover="cart"), activate_at=4),
                FaultSchedule(fault=StuckMover(mover="*"), activate_at=2),
            )
        )
        orch = FaultOrchestrator(faults, seed=0)
        assert orch.frozen_epoch("cart_0", 1) is None
        assert orch.frozen_epoch("cart_0", 3) == 2
        assert orch.frozen_epoch("cart_0", 7) == 2
        assert orch.frozen_epoch("other", 7) == 2  # "*" matches everything


class TestFaultEffects:
    """Each fault, flown inside a timed window, perturbs a short mission."""

    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_mission_diverges_from_no_fault_golden(self, name, goldens):
        case = FAULT_CASES[name]
        golden_traces, golden_movers = goldens[case.world]
        result = fly(faults=scheduled_set(case.valid, activate_at=2),
                     world=case.world)
        observed = (trace_signature(result), mover_signature(result))
        assert observed != (golden_traces, golden_movers), (
            f"fault {name!r} left the mission bit-identical to no-fault"
        )

    @pytest.mark.parametrize("name", ALL_FAULTS)
    def test_pre_activation_decisions_match_golden(self, name, goldens):
        """Before the window opens the mission is bit-identical to no-fault."""
        case = FAULT_CASES[name]
        golden_traces, _ = goldens[case.world]
        result = fly(faults=scheduled_set(case.valid, activate_at=2),
                     world=case.world)
        assert trace_signature(result)[:2] == golden_traces[:2]

    def test_comm_spike_scales_the_comm_ledger(self, goldens):
        """The spike lands exactly on the comm_* entries, nowhere else."""
        golden_traces, _ = goldens[WorldSpec()]
        result = fly(
            faults=scheduled_set(CommsLatencySpike(factor=4.0), activate_at=2)
        )
        trace = result.traces[2]
        golden_stage = golden_traces[2][5]
        for stage, seconds in trace.stage_latencies.items():
            if is_comm_stage(stage):
                assert seconds == pytest.approx(golden_stage[stage] * 4.0)
            else:
                assert seconds == golden_stage[stage]
        assert set(COMM_STAGES) <= set(trace.stage_latencies)

    def test_brownout_scales_the_recorded_budget(self, goldens):
        golden_traces, _ = goldens[WorldSpec()]
        result = fly(
            faults=scheduled_set(PowerBrownout(scale=0.4), activate_at=2)
        )
        golden_budget = golden_traces[2][2]
        assert result.traces[2].time_budget == pytest.approx(golden_budget * 0.4)
        # Before activation the budget is untouched.
        assert result.traces[1].time_budget == golden_traces[1][2]

    def test_brownout_hits_baseline_feasibility_not_just_roborun(self):
        """The static baseline sees the same shrunken budget (and suffers)."""
        from repro.core.baseline import SpatialObliviousRuntime
        runtime = SpatialObliviousRuntime()
        with pytest.raises(ValueError):
            runtime.decide(None, budget_scale=0.0)

    def test_stuck_mover_freezes_ground_truth(self, goldens):
        _, golden_movers = goldens[CROSSER_WORLD]
        result = fly(
            faults=scheduled_set(StuckMover(mover="cart"), activate_at=2),
            world=CROSSER_WORLD,
        )
        frozen = mover_signature(result)
        assert frozen and golden_movers
        assert frozen != golden_movers
        # The frozen cart holds its activation-epoch position: south of the
        # flight line, while the unfrozen golden cart has drifted north.
        assert frozen[0][2] < golden_movers[0][2]

    def test_active_faults_are_stamped_into_trace_records(self):
        """TraceRecorder tags each decision with its active fault windows."""
        spec = ScenarioSpec(
            name="tagged",
            environment=TINY_ENV,
            mission=TINY_CFG,
            faults=scheduled_set(
                CommsLatencySpike(factor=4.0), activate_at=2, clear_at=4
            ),
        )
        recorder = TraceRecorder()
        spec.run(recorder=recorder)
        by_index = {record.index: record for record in recorder.records}
        assert by_index[0].faults == ()
        assert by_index[2].faults == ("comms_latency_spike",)
        assert by_index[3].faults == ("comms_latency_spike",)
        assert by_index[4].faults == ()
        # No-fault records serialise without a "faults" key at all (the
        # pre-orchestrator byte layout); active ones carry the tag list.
        assert "faults" not in by_index[0].to_dict()
        assert by_index[2].to_dict()["faults"] == ["comms_latency_spike"]


class TestGridFaultAxis:
    def test_single_config_applies_everywhere_without_tags(self):
        specs = scenario_grid(
            "g", designs=("roborun",), densities=(0.3, 0.5),
            base_environment=TINY_ENV, mission=TINY_CFG,
            faults={"sensor_dropout": {"every_n": 3}},
        )
        assert len(specs) == 2
        assert all(s.faults.sensor_dropout.every_n == 3 for s in specs)
        assert all("sensor_dropout" not in s.name for s in specs)

    def test_named_mapping_becomes_a_swept_axis(self):
        specs = scenario_grid(
            "g", designs=("roborun",), densities=(0.3,),
            base_environment=TINY_ENV, mission=TINY_CFG,
            faults={
                "nofault": None,
                "brownout": {"schedule": [
                    {"fault": "power_brownout", "params": {"scale": 0.4},
                     "activate_at": 2}
                ]},
            },
        )
        assert len(specs) == 2
        names = [s.name for s in specs]
        assert any("_nofault_" in n for n in names)
        assert any("_brownout_" in n for n in names)
        assert len({s.seed for s in specs}) == len(specs)
        labels = {s.faults.label() for s in specs}
        assert labels == {"none", "power_brownout"}

    def test_typoed_fault_name_fails_loudly(self):
        with pytest.raises(ValueError, match="registered"):
            scenario_grid(
                "g", designs=("roborun",), base_environment=TINY_ENV,
                mission=TINY_CFG,
                faults={"broken": {"power_brownout": {"scale": 0.4}}},
            )

    def test_empty_config_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            scenario_grid(
                "g", designs=("roborun",), base_environment=TINY_ENV,
                mission=TINY_CFG, faults={"": None},
            )


@pytest.mark.slow
class TestCampaignDeterminismUnderFaults:
    """Serial and multiprocessing sweeps write byte-identical traces."""

    def build_specs(self):
        return scenario_grid(
            "matrix",
            densities=(0.3,),
            base_environment=TINY_ENV,
            mission=dataclasses.replace(TINY_CFG, max_decisions=10),
            base_seed=30,
            faults={
                "nofault": None,
                "spike": {"schedule": [
                    {"fault": "comms_latency_spike",
                     "params": {"factor": 4.0}, "activate_at": 2,
                     "clear_at": 7, "jitter": 2}
                ]},
                "brownout": {"schedule": [
                    {"fault": "power_brownout", "params": {"scale": 0.5},
                     "activate_at": 1}
                ]},
            },
        )

    def test_serial_and_parallel_traces_byte_identical(self, tmp_path):
        specs = self.build_specs()
        assert len(specs) == 6  # 2 designs x 3 fault configs
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        CampaignRunner(max_workers=1).run(specs, trace_dir=serial_dir)
        CampaignRunner(max_workers=2).run(specs, trace_dir=parallel_dir)
        serial_files = sorted(p.name for p in serial_dir.glob("*.jsonl"))
        parallel_files = sorted(p.name for p in parallel_dir.glob("*.jsonl"))
        assert serial_files == parallel_files and len(serial_files) == 6
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes(), f"trace {name} differs between serial and pool runs"
