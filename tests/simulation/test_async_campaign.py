"""The async campaign engine: work stealing, chaos, timeouts, resume.

The acceptance bar is the sync path's own guarantee carried over: serial,
sync-pool and async runs of the same grid produce byte-identical per-spec
JSONL traces and identical aggregates — plus the robustness the sync pool
cannot offer: a SIGKILLed worker neither hangs nor aborts the campaign, a
poisoned spec is excluded as an error outcome after bounded retries, and
``resume=True`` skips specs whose traces already completed.

The chaos tests monkeypatch ``ScenarioSpec.run`` in the parent and rely on
``fork`` propagating the patch into the workers, so they are skipped on
platforms whose default start method is ``spawn``.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import (
    CAMPAIGN_MODES,
    CampaignReport,
    CampaignRunner,
    EnvironmentConfig,
    MissionConfig,
    ScenarioSpec,
)
from repro.analysis.io import is_complete_trace, trace_path
from repro.simulation.campaign import CAMPAIGN_MODE_ENV, CampaignResult, ScenarioOutcome

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.2, obstacle_spread=25.0, goal_distance=40.0, seed=7
)
TINY_CFG = MissionConfig(max_decisions=5, max_mission_time_s=60.0)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="chaos tests inject faults via fork-inherited monkeypatches",
)


def _specs(count=3, max_decisions=5):
    cfg = dataclasses.replace(TINY_CFG, max_decisions=max_decisions)
    return [
        ScenarioSpec(name=f"async-{i}", environment=TINY_ENV, mission=cfg).seeded(
            20 + i
        )
        for i in range(count)
    ]


class TestModeSelection:
    def test_default_mode_is_sync(self, monkeypatch):
        monkeypatch.delenv(CAMPAIGN_MODE_ENV, raising=False)
        assert CampaignRunner().mode == "sync"

    def test_env_var_selects_async(self, monkeypatch):
        monkeypatch.setenv(CAMPAIGN_MODE_ENV, "async")
        assert CampaignRunner().mode == "async"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv(CAMPAIGN_MODE_ENV, "async")
        assert CampaignRunner(mode="serial").mode == "serial"

    def test_modes_are_the_public_tuple(self):
        assert CAMPAIGN_MODES == ("serial", "sync", "async")

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            CampaignRunner(mode="warp")
        with pytest.raises(ValueError, match="spec_timeout_s"):
            CampaignRunner(spec_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            CampaignRunner(max_attempts=0)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            CampaignRunner(retry_backoff_s=-1.0)

    def test_serial_mode_forces_inline_even_with_workers(self):
        campaign = CampaignRunner(max_workers=4, mode="serial").run(_specs(2))
        assert all(o.ok for o in campaign.outcomes)


class TestModeEquivalence:
    """Serial, sync-pool and async agree byte-for-byte and row-for-row."""

    def test_traces_and_summary_identical_across_modes(self, tmp_path):
        specs = _specs(3)
        results = {}
        for mode, workers in (("serial", 1), ("sync", 2), ("async", 2)):
            results[mode] = CampaignRunner(max_workers=workers, mode=mode).run(
                specs, trace_dir=tmp_path / mode
            )
        names = sorted(p.name for p in (tmp_path / "serial").glob("*.jsonl"))
        assert len(names) == len(specs)
        for mode in ("sync", "async"):
            assert (
                sorted(p.name for p in (tmp_path / mode).glob("*.jsonl")) == names
            )
            for name in names:
                assert (tmp_path / mode / name).read_bytes() == (
                    tmp_path / "serial" / name
                ).read_bytes(), f"{mode} trace diverged: {name}"
            assert results[mode].summary() == results["serial"].summary()
            assert [o.metrics for o in results[mode].outcomes] == [
                o.metrics for o in results["serial"].outcomes
            ]

    def test_async_preserves_spec_order(self):
        specs = _specs(4)
        campaign = CampaignRunner(max_workers=2, mode="async").run(specs)
        assert [o.spec.name for o in campaign.outcomes] == [s.name for s in specs]

    def test_async_streams_heartbeats(self, tmp_path):
        from repro.obs.heartbeat import HEARTBEAT_FILE, read_heartbeats

        specs = _specs(2)
        CampaignRunner(max_workers=2, mode="async").run(
            specs, telemetry_dir=tmp_path / "telemetry"
        )
        records = read_heartbeats(tmp_path / "telemetry" / HEARTBEAT_FILE)
        statuses = {(r.spec, r.status) for r in records}
        for spec in specs:
            assert (spec.name, "start") in statuses
            assert (spec.name, "done") in statuses


@fork_only
class TestChaos:
    """SIGKILLed workers: retry-then-success and bounded exclusion."""

    def test_killed_worker_is_retried_to_success(self, tmp_path, monkeypatch):
        real_run = ScenarioSpec.run
        flag = tmp_path / "killed-once.flag"

        def chaotic_run(self, recorder=None, taps=()):
            if self.name == "victim" and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_run(self, recorder=recorder, taps=taps)

        monkeypatch.setattr(ScenarioSpec, "run", chaotic_run)
        specs = [
            ScenarioSpec(name="victim", environment=TINY_ENV, mission=TINY_CFG).seeded(1),
            ScenarioSpec(name="calm", environment=TINY_ENV, mission=TINY_CFG).seeded(2),
        ]
        seen = []
        campaign = CampaignRunner(
            max_workers=2, mode="async", max_attempts=3, retry_backoff_s=0.05
        ).run(specs, trace_dir=tmp_path / "traces", progress=seen.append)
        assert all(o.ok for o in campaign.outcomes)
        assert "retry" in {r["status"] for r in seen}

        # The retried attempt rewrote the victim's trace byte-identically
        # to an undisturbed run of the same specs.
        flag.touch()  # already exists; keeps the patched run benign
        CampaignRunner(max_workers=1).run(specs, trace_dir=tmp_path / "clean")
        for path in sorted((tmp_path / "clean").glob("*.jsonl")):
            assert (tmp_path / "traces" / path.name).read_bytes() == (
                path.read_bytes()
            ), f"post-retry trace diverged: {path.name}"

    def test_poisoned_spec_is_excluded_not_hung(self, tmp_path, monkeypatch):
        real_run = ScenarioSpec.run

        def poisoned_run(self, recorder=None, taps=()):
            if self.name == "poison":
                os.kill(os.getpid(), signal.SIGKILL)
            return real_run(self, recorder=recorder, taps=taps)

        monkeypatch.setattr(ScenarioSpec, "run", poisoned_run)
        specs = [
            ScenarioSpec(name="poison", environment=TINY_ENV, mission=TINY_CFG).seeded(1),
            ScenarioSpec(name="calm", environment=TINY_ENV, mission=TINY_CFG).seeded(2),
        ]
        seen = []
        campaign = CampaignRunner(
            max_workers=2, mode="async", max_attempts=2, retry_backoff_s=0.05
        ).run(specs, trace_dir=tmp_path / "traces", progress=seen.append)
        outcome = {o.spec.name: o for o in campaign.outcomes}
        assert outcome["calm"].ok
        assert not outcome["poison"].ok
        assert outcome["poison"].error["type"] == "WorkerCrashError"
        assert "2/2" in outcome["poison"].error["message"]
        assert {r["status"] for r in seen} >= {"retry", "error"}
        # The excluded spec still leaves an error record on disk so the
        # report's partial-failures section covers it.
        poison_trace = trace_path(tmp_path / "traces", "poison")
        assert poison_trace.exists()
        assert not is_complete_trace(poison_trace)
        report = CampaignReport.from_trace_dir(tmp_path / "traces")
        assert len(report.failures()) == 1

    def test_spec_timeout_kills_and_excludes(self, monkeypatch):
        real_run = ScenarioSpec.run

        def sleepy_run(self, recorder=None, taps=()):
            if self.name == "sleeper":
                time.sleep(60)
            return real_run(self, recorder=recorder, taps=taps)

        monkeypatch.setattr(ScenarioSpec, "run", sleepy_run)
        specs = [
            ScenarioSpec(name="sleeper", environment=TINY_ENV, mission=TINY_CFG).seeded(1),
            ScenarioSpec(name="calm", environment=TINY_ENV, mission=TINY_CFG).seeded(2),
        ]
        seen = []
        started = time.perf_counter()
        campaign = CampaignRunner(
            max_workers=2, mode="async", spec_timeout_s=0.5, max_attempts=1
        ).run(specs, progress=seen.append)
        assert time.perf_counter() - started < 30.0
        outcome = {o.spec.name: o for o in campaign.outcomes}
        assert outcome["calm"].ok
        assert not outcome["sleeper"].ok
        assert outcome["sleeper"].error["type"] == "SpecTimeoutError"
        assert "timeout" in {r["status"] for r in seen}


class TestResume:
    def test_resume_requires_trace_dir(self):
        with pytest.raises(ValueError, match="trace_dir"):
            CampaignRunner(max_workers=1).run(_specs(1), resume=True)

    def test_resume_skips_completed_and_matches_uninterrupted_run(
        self, tmp_path, monkeypatch
    ):
        specs = _specs(3)
        full_dir = tmp_path / "full"
        resumed_dir = tmp_path / "resumed"
        CampaignRunner(max_workers=1).run(specs, trace_dir=full_dir)
        CampaignRunner(max_workers=1).run(specs, trace_dir=resumed_dir)

        # Interrupt after the fact: one trace vanishes, one is torn mid-line,
        # and a file from some other campaign is lying around.
        gone = trace_path(resumed_dir, specs[1].name)
        torn = trace_path(resumed_dir, specs[2].name)
        gone.unlink()
        torn.write_text(torn.read_text(encoding="utf-8")[:100], encoding="utf-8")
        (resumed_dir / "stale_other.jsonl").write_text("{}\n", encoding="utf-8")

        flown = []
        real_run = ScenarioSpec.run

        def counting_run(self, recorder=None, taps=()):
            flown.append(self.name)
            return real_run(self, recorder=recorder, taps=taps)

        monkeypatch.setattr(ScenarioSpec, "run", counting_run)
        campaign = CampaignRunner(max_workers=1).run(
            specs, trace_dir=resumed_dir, resume=True
        )

        # Only the missing and torn specs were re-flown; the stale file from
        # another campaign was swept.
        assert sorted(flown) == sorted([specs[1].name, specs[2].name])
        assert not (resumed_dir / "stale_other.jsonl").exists()
        assert len(campaign) == len(specs)
        assert all(o.ok for o in campaign.outcomes)
        assert campaign.outcomes[0].metrics is not None

        # Byte-for-byte, the resumed directory equals the uninterrupted run,
        # so the final report does too.
        names = sorted(p.name for p in full_dir.glob("*.jsonl"))
        assert sorted(p.name for p in resumed_dir.glob("*.jsonl")) == names
        for name in names:
            assert (resumed_dir / name).read_bytes() == (
                full_dir / name
            ).read_bytes(), f"resumed trace diverged: {name}"
        full_md = CampaignReport.from_trace_dir(full_dir).to_markdown(title="t")
        resumed_md = CampaignReport.from_trace_dir(resumed_dir).to_markdown(title="t")
        assert resumed_md == full_md

    def test_resume_with_nothing_to_skip_flies_everything(self, tmp_path):
        specs = _specs(2)
        campaign = CampaignRunner(max_workers=1).run(
            specs, trace_dir=tmp_path / "fresh", resume=True
        )
        assert all(o.ok for o in campaign.outcomes)
        for spec in specs:
            assert is_complete_trace(trace_path(tmp_path / "fresh", spec.name))

    def test_error_trace_is_not_resumable(self, tmp_path, monkeypatch):
        def exploding_run(self, recorder=None, taps=()):
            raise RuntimeError("boom")

        monkeypatch.setattr(ScenarioSpec, "run", exploding_run)
        spec = _specs(1)[0]
        CampaignRunner(max_workers=1).run([spec], trace_dir=tmp_path)
        path = trace_path(tmp_path, spec.name)
        assert path.exists()
        assert not is_complete_trace(path)


class TestReportCLI:
    def _grid_file(self, tmp_path):
        grid = {"specs": [spec.to_dict() for spec in _specs(2)]}
        path = tmp_path / "mini_grid.json"
        path.write_text(json.dumps(grid), encoding="utf-8")
        return path

    def test_async_run_then_resume(self, tmp_path):
        from repro.report import main

        grid = self._grid_file(tmp_path)
        out = tmp_path / "report.md"
        traces = tmp_path / "traces"
        rc = main(
            [
                "--grid", str(grid), "--mode", "async", "--workers", "2",
                "--out", str(out), "--trace-dir", str(traces), "--no-telemetry",
            ]
        )
        assert rc == 0
        assert out.is_file()
        baseline = {p.name: p.read_bytes() for p in traces.glob("*.jsonl")}
        assert baseline

        # Lose one trace; --resume re-flies only that spec and restores the
        # directory (and therefore the report) byte-for-byte.
        report_bytes = out.read_bytes()
        sorted(traces.glob("*.jsonl"))[0].unlink()
        rc = main(
            [
                "--grid", str(grid), "--resume", "--workers", "1",
                "--out", str(out), "--trace-dir", str(traces), "--no-telemetry",
            ]
        )
        assert rc == 0
        assert {p.name: p.read_bytes() for p in traces.glob("*.jsonl")} == baseline
        assert out.read_bytes() == report_bytes

    def test_resume_rejected_without_grid(self, tmp_path):
        from repro.report import main

        with pytest.raises(SystemExit):
            main(["--traces", str(tmp_path), "--resume"])


class TestMeanMetricHeterogeneous:
    """mean_metric over campaigns whose outcomes carry different metric keys."""

    def _outcome(self, name, metrics):
        spec = ScenarioSpec(name=name, environment=TINY_ENV, mission=TINY_CFG)
        return ScenarioOutcome(spec=spec, metrics=metrics)

    def test_mean_skips_outcomes_without_the_key(self):
        result = CampaignResult(
            outcomes=[
                self._outcome("a", {"mission_time_s": 10.0, "fleet_energy_kj": 3.0}),
                self._outcome("b", {"mission_time_s": 20.0}),
            ]
        )
        # No KeyError, and the denominator is the carrying outcomes only.
        assert result.mean_metric("fleet_energy_kj") == pytest.approx(3.0)
        assert result.metric_count("fleet_energy_kj") == 1
        assert result.mean_metric("mission_time_s") == pytest.approx(15.0)
        assert result.metric_count("mission_time_s") == 2

    def test_summary_survives_heterogeneous_metrics(self):
        result = CampaignResult(
            outcomes=[
                self._outcome("a", {"mission_time_s": 10.0}),
                self._outcome("b", {"success": 1.0}),
            ]
        )
        summary = result.summary()  # must not raise
        assert summary["roborun"]["missions"] == 2.0

    def test_absent_key_is_zero(self):
        result = CampaignResult(outcomes=[self._outcome("a", {"x": 1.0})])
        assert result.mean_metric("no_such_metric") == 0.0
        assert result.metric_count("no_such_metric") == 0
