"""Fleet layer: topic namespaces, shared-bus determinism and fleet missions.

The fleet refactor's contract has three legs, and each gets its tests here:

* **Namespacing** — :class:`TopicNamespace` produces per-drone topic and
  node names, and the root namespace produces the exact legacy names.
* **Determinism** — two pipelines interleaved on one bus dispatch in the
  same order on every run, and a two-drone campaign writes byte-identical
  traces serially and across a process pool.
* **Back-compat** — a single-drone fleet is bit-identical to the plain
  :class:`MissionSimulator`, pre-fleet spec dictionaries and trace lines
  still parse, and the default grid's spec names are unchanged.
"""

import json

import pytest

from repro import (
    CampaignRunner,
    DecisionRecord,
    EnvironmentConfig,
    FleetSimulator,
    MissionConfig,
    MissionRecord,
    MissionSimulator,
    ScenarioSpec,
    TopicNamespace,
    TraceRecorder,
    scenario_grid,
)
from repro.analysis.figures import fleet_scaling
from repro.core.runtime import RoboRunRuntime
from repro.simulation.campaign import _run_payload
from repro.worlds import WorldSpec, build_environment

# Small and mild: single missions finish in a couple of seconds while still
# flying every stage of the cascade.
TINY_ENV = EnvironmentConfig(
    obstacle_density=0.15, obstacle_spread=25.0, goal_distance=30.0, seed=3
)
TINY_CFG = MissionConfig(max_decisions=25, max_mission_time_s=90.0)


def tiny_fleet(n_drones: int) -> FleetSimulator:
    environment = build_environment(TINY_ENV, WorldSpec())
    return FleetSimulator(environment, RoboRunRuntime, TINY_CFG, n_drones=n_drones)


# ----------------------------------------------------------------------
# TopicNamespace
# ----------------------------------------------------------------------
class TestTopicNamespace:
    def test_root_namespace_keeps_legacy_names(self):
        root = TopicNamespace()
        assert root.is_root
        assert root.topic("/sense/scan") == "/sense/scan"
        assert root.node("sense") == "sense"

    def test_drone_namespace_prefixes_topics_and_nodes(self):
        ns = TopicNamespace.for_drone(3)
        assert not ns.is_root
        assert ns.prefix == "/drone/3"
        assert ns.topic("/sense/scan") == "/drone/3/sense/scan"
        assert ns.node("sense") == "drone/3/sense"

    def test_invalid_prefixes_rejected(self):
        with pytest.raises(ValueError):
            TopicNamespace(prefix="drone/0")
        with pytest.raises(ValueError):
            TopicNamespace(prefix="/drone/0/")
        with pytest.raises(ValueError):
            TopicNamespace.for_drone(-1)

    def test_topic_base_must_be_rooted(self):
        with pytest.raises(ValueError):
            TopicNamespace.for_drone(0).topic("sense/scan")


# ----------------------------------------------------------------------
# Shared-bus determinism
# ----------------------------------------------------------------------
class TestSharedBusDeterminism:
    @pytest.fixture(scope="class")
    def fleet_runs(self):
        """The same two-drone mission flown twice from scratch."""
        return [tiny_fleet(2).run() for _ in range(2)]

    def test_both_drones_dispatch_on_one_bus(self, fleet_runs):
        log = fleet_runs[0].pipeline.executor.dispatch_log
        topics = {topic for topic, _ in log}
        assert any(t.startswith("/drone/0/") for t in topics)
        assert any(t.startswith("/drone/1/") for t in topics)

    def test_dispatch_order_identical_across_runs(self, fleet_runs):
        first, second = fleet_runs
        assert (
            first.pipeline.executor.dispatch_log
            == second.pipeline.executor.dispatch_log
        )

    def test_round_robin_drains_each_drone_before_the_next(self, fleet_runs):
        log = fleet_runs[0].pipeline.executor.dispatch_log
        first_peer = next(
            i for i, (topic, _) in enumerate(log) if topic.startswith("/drone/1/")
        )
        # Drone 0's full first cascade — through its flight topic — dispatched
        # before drone 1's first message.
        head = [topic for topic, _ in log[:first_peer]]
        assert all(topic.startswith("/drone/0/") for topic in head)
        assert any(topic.endswith("/flight/result") for topic in head)


# ----------------------------------------------------------------------
# Single-drone identity
# ----------------------------------------------------------------------
class TestSingleDroneIdentity:
    def test_n1_fleet_bit_identical_to_mission_simulator(self):
        solo = MissionSimulator(
            build_environment(TINY_ENV, WorldSpec()), RoboRunRuntime(), TINY_CFG
        ).run()
        fleet = tiny_fleet(1).run()
        assert fleet.metrics.as_dict() == solo.metrics.as_dict()
        assert len(fleet.ledger) == len(solo.ledger)
        assert (
            fleet.pipeline.executor.dispatch_log
            == solo.pipeline.executor.dispatch_log
        )
        assert fleet.fleet.n_drones == 1
        assert fleet.fleet.min_separation_m is None

    @pytest.mark.slow
    def test_n1_fleet_matches_benchmark_seed_golden(self):
        # The same environment/mission pair TestGoldenMetrics pins in
        # test_mission.py: equality here chains the fleet path to the
        # golden numbers without duplicating them.
        env_config = EnvironmentConfig(
            obstacle_density=0.3, obstacle_spread=40.0, goal_distance=100.0, seed=11
        )
        cfg = MissionConfig(max_decisions=400, max_mission_time_s=1200.0)
        solo = MissionSimulator(
            build_environment(env_config, WorldSpec()), RoboRunRuntime(), cfg
        ).run()
        fleet = FleetSimulator(
            build_environment(env_config, WorldSpec()),
            RoboRunRuntime,
            cfg,
            n_drones=1,
        ).run()
        assert fleet.metrics.as_dict() == solo.metrics.as_dict()


# ----------------------------------------------------------------------
# Two-drone missions
# ----------------------------------------------------------------------
class TestFleetMission:
    @pytest.fixture(scope="class")
    def recorded(self):
        spec = ScenarioSpec(
            name="fleet_two", environment=TINY_ENV, mission=TINY_CFG, n_drones=2
        )
        recorder = TraceRecorder(spec=spec)
        result = spec.run(recorder=recorder)
        return result, recorder

    def test_fleet_metrics_shape(self, recorded):
        result, _ = recorded
        fleet = result.fleet
        assert fleet.n_drones == 2
        assert 0.0 <= fleet.completion_rate <= 1.0
        assert fleet.makespan_s > 0
        assert fleet.min_separation_m is not None and fleet.min_separation_m > 0
        assert fleet.airspace_conflicts >= 0
        assert len(result.drones) == 2

    def test_aggregate_folds_per_drone_metrics(self, recorded):
        result, _ = recorded
        per_drone = [r.metrics for r in result.drones]
        assert result.metrics.decision_count == sum(
            m.decision_count for m in per_drone
        )
        assert result.metrics.distance_travelled_m == pytest.approx(
            sum(m.distance_travelled_m for m in per_drone)
        )
        assert result.metrics.energy_j == pytest.approx(
            sum(m.energy_j for m in per_drone)
        )

    def test_decision_records_stamp_drone_ids(self, recorded):
        _, recorder = recorded
        decisions = [r for r in recorder.records if isinstance(r, DecisionRecord)]
        assert {r.drone_id for r in decisions} == {0, 1}

    def test_mission_record_carries_fleet_and_drones(self, recorded):
        _, recorder = recorded
        record = recorder.mission_record
        assert record.fleet is not None and record.fleet["n_drones"] == 2
        assert record.drones is not None and len(record.drones) == 2
        assert record.n_drones == 2
        assert record.completion_rate == record.fleet["completion_rate"]
        round_tripped = MissionRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert round_tripped.fleet == record.fleet
        assert round_tripped.drones == record.drones


# ----------------------------------------------------------------------
# Back-compat: specs, trace lines, grid names
# ----------------------------------------------------------------------
class TestBackCompat:
    def test_pre_fleet_spec_dict_parses_as_single_drone(self):
        spec = ScenarioSpec(name="legacy")
        data = spec.to_dict()
        del data["n_drones"]
        assert ScenarioSpec.from_dict(data).n_drones == 1

    def test_spec_round_trips_fleet_size(self):
        spec = ScenarioSpec(name="pair", n_drones=2)
        assert ScenarioSpec.from_json(spec.to_json()).n_drones == 2

    def test_invalid_fleet_size_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", n_drones=0)

    def test_pre_fleet_trace_line_parses(self):
        modern = DecisionRecord(
            spec_name="s",
            design="roborun",
            index=0,
            timestamp=0.1,
            position=(0.0, 0.0, 5.0),
            zone="A",
            speed=1.0,
            velocity_cap=2.0,
            time_budget=0.5,
            predicted_latency=0.2,
            solver_feasible=True,
            policy={},
            stage_latencies={},
            end_to_end_latency=0.2,
            visibility=10.0,
            closest_obstacle=5.0,
            gap_min=1.0,
            gap_avg=2.0,
            sensor_volume=100.0,
            map_volume=50.0,
            map_voxels=10,
            flown=0.5,
            interval=0.5,
            energy=1.0,
            replanned=False,
            dropped=False,
            hit=False,
            drone_id=1,
        )
        data = modern.to_dict()
        del data["drone_id"]
        assert DecisionRecord.from_dict(data).drone_id == 0

    def test_pre_fleet_mission_record_parses(self):
        data = MissionRecord(
            spec_name="s", design="roborun", seed=0, environment={}, metrics={}
        ).to_dict()
        del data["fleet"]
        del data["drones"]
        record = MissionRecord.from_dict(data)
        assert record.fleet is None
        assert record.n_drones == 1


class TestGridNaming:
    def test_default_grid_names_unchanged(self):
        specs = scenario_grid("g", densities=(0.2,))
        assert [s.name for s in specs] == [
            "g_roborun_den0.2_spr80_goal900",
            "g_spatial_oblivious_den0.2_spr80_goal900",
        ]
        assert all(s.n_drones == 1 for s in specs)

    def test_fleet_axis_tags_names_and_sets_sizes(self):
        specs = scenario_grid(
            "g", designs=("roborun",), densities=(0.2,), n_drones=(1, 2)
        )
        assert [s.name for s in specs] == [
            "g_roborun_fleet1_den0.2_spr80_goal900",
            "g_roborun_fleet2_den0.2_spr80_goal900",
        ]
        assert [s.n_drones for s in specs] == [1, 2]

    def test_worlds_and_fleets_swept_together_stay_unique(self):
        specs = scenario_grid(
            "g",
            designs=("roborun",),
            densities=(0.2,),
            worlds=("paper_corridor", "paper_corridor"),
            n_drones=(2, 2),
        )
        names = [s.name for s in specs]
        assert len(set(names)) == len(names) == 4
        assert "g_roborun_paper_corridor0_fleet20_den0.2_spr80_goal900" in names
        assert "g_roborun_paper_corridor1_fleet21_den0.2_spr80_goal900" in names


# ----------------------------------------------------------------------
# Fleet-scaling table
# ----------------------------------------------------------------------
def _mission_record(design, size, time_s, energy_kj, completion):
    fleet = None
    if size > 1:
        fleet = {
            "n_drones": size,
            "completion_rate": completion,
            "collisions": 0,
            "makespan_s": time_s,
            "fleet_energy_kj": energy_kj,
            "min_separation_m": 5.0,
            "airspace_conflicts": 0,
        }
    return MissionRecord(
        spec_name=f"{design}_{size}",
        design=design,
        seed=0,
        environment={},
        metrics={
            "success": completion >= 1.0,
            "mission_time_s": time_s,
            "energy_kj": energy_kj,
        },
        fleet=fleet,
    )


class TestFleetScalingTable:
    def test_rows_group_by_size_with_speedup(self):
        missions = [
            _mission_record("roborun", 1, 100.0, 10.0, 1.0),
            _mission_record("spatial_oblivious", 1, 200.0, 20.0, 1.0),
            _mission_record("roborun", 2, 150.0, 22.0, 1.0),
            _mission_record("spatial_oblivious", 2, 300.0, 45.0, 0.5),
        ]
        table = fleet_scaling(missions)
        assert table.key == "fleet"
        assert table.title.startswith("Fleet scaling")
        assert [row[0] for row in table.rows] == [1, 2]
        assert table.meta["sizes"] == [1, 2]
        assert table.meta["speedups"] == {1: 2.0, 2: 2.0}
        speedup_column = table.columns.index("time_speedup")
        assert [row[speedup_column] for row in table.rows] == [2.0, 2.0]

    def test_incomplete_pair_reports_na(self):
        table = fleet_scaling([_mission_record("roborun", 2, 100.0, 10.0, 1.0)])
        assert table.meta["speedups"] == {2: None}
        assert table.rows[0][-1] == "n/a"


# ----------------------------------------------------------------------
# Campaign determinism and the report CLI
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFleetCampaignTraces:
    def test_serial_and_parallel_traces_byte_identical(self, tmp_path):
        specs = scenario_grid(
            "pair",
            densities=(TINY_ENV.obstacle_density,),
            spreads=(TINY_ENV.obstacle_spread,),
            goal_distances=(TINY_ENV.goal_distance,),
            base_environment=TINY_ENV,
            mission=TINY_CFG,
            n_drones=(2,),
            base_seed=TINY_ENV.seed,
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        CampaignRunner(max_workers=1).run(specs, trace_dir=serial_dir)
        CampaignRunner(max_workers=2).run(specs, trace_dir=parallel_dir)
        serial_files = sorted(p.name for p in serial_dir.glob("*.jsonl"))
        assert serial_files == sorted(p.name for p in parallel_dir.glob("*.jsonl"))
        assert serial_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()


class TestReportCli:
    def _trace_dir(self, tmp_path, spec_dicts):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for spec_dict in spec_dicts:
            _run_payload({"spec": spec_dict, "trace_dir": str(trace_dir)})
        return trace_dir

    def test_exit_one_when_every_spec_errored(self, tmp_path, capsys):
        from repro.report import main

        bad = ScenarioSpec(name="bad", environment=TINY_ENV).to_dict()
        bad["environment"]["obstacle_density"] = -1.0
        trace_dir = self._trace_dir(tmp_path, [bad])
        code = main(
            ["--traces", str(trace_dir), "--out", str(tmp_path / "report.md")]
        )
        assert code == 1
        assert "ERROR: all 1 spec(s) failed to run" in capsys.readouterr().out

    def test_exit_zero_with_partial_failures(self, tmp_path, capsys):
        from repro.report import main

        good = ScenarioSpec(
            name="good", environment=TINY_ENV, mission=TINY_CFG
        ).to_dict()
        bad = ScenarioSpec(name="bad", environment=TINY_ENV).to_dict()
        bad["environment"]["obstacle_density"] = -1.0
        trace_dir = self._trace_dir(tmp_path, [good, bad])
        out = tmp_path / "report.md"
        code = main(["--traces", str(trace_dir), "--out", str(out)])
        assert code == 0
        assert "WARNING" in capsys.readouterr().out
        # The report always renders the fleet-scaling section.
        assert "Fleet scaling" in out.read_text(encoding="utf-8")
