"""Hardware-in-the-loop smoke tests, gated behind ``RUN_HIL=1``.

The paper's evaluation runs against a real HIL rig (Unreal/AirSim on one
machine, the navigation workload on another).  This repo substitutes a
deterministic simulated-clock pipeline, so by default there is nothing to
smoke-test against hardware — the module is skipped.  On a bench that *does*
have the time (or a real rig wired behind the same scenario layer), set
``RUN_HIL=1`` to fly the full example grid end to end through the report
CLI, exactly as the paper's longest evaluation loop would:

    RUN_HIL=1 python -m pytest tests/simulation/test_hil_smoke.py -q

The assertions only check that the loop closes — every spec flies, traces
land on disk, and the report (including the fault-robustness section the
grid's fault axis feeds) renders — not any particular metric value.
"""

import json
import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("RUN_HIL") != "1",
    reason="HIL smoke loop is opt-in; set RUN_HIL=1 to run it",
)

REPO_ROOT = Path(__file__).resolve().parents[2]
GRID_FILE = REPO_ROOT / "examples" / "grid_small.json"


def test_example_grid_flies_end_to_end(tmp_path):
    from repro.report import main

    out = tmp_path / "report.md"
    trace_dir = tmp_path / "traces"
    exit_code = main(
        [
            "--grid", str(GRID_FILE),
            "--out", str(out),
            "--trace-dir", str(trace_dir),
            "--workers", "2",
        ]
    )
    assert exit_code == 0
    assert out.is_file() and out.stat().st_size > 0

    report = out.read_text(encoding="utf-8")
    assert "Fault robustness" in report
    assert "power_brownout" in report

    traces = sorted(trace_dir.glob("*.jsonl"))
    grid = json.loads(GRID_FILE.read_text(encoding="utf-8"))["grid"]
    expected = (
        2  # designs
        * len(grid["worlds"])
        * len(grid["n_drones"])
        * len(grid["faults"])
        * len(grid["densities"])
    )
    assert len(traces) == expected
    # Every trace holds at least one decision line plus the mission line.
    for path in traces:
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) >= 2
