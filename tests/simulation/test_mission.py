"""Integration tests: the full decision loop on small environments."""

import pytest

from repro import (
    EnvironmentConfig,
    EnvironmentGenerator,
    MissionConfig,
    MissionSimulator,
    RoboRunRuntime,
    SpatialObliviousRuntime,
)
from repro.geometry.vec3 import Vec3
from repro.planning.trajectory import Trajectory, TrajectoryPoint
from repro.simulation.metrics import (
    summarise_zone_latency_variation,
    summarise_zone_velocity,
)

# A small, mild environment keeps the integration tests fast while still
# exercising every pipeline stage (congested A/C clusters plus an open B zone).
SMALL_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=40.0, goal_distance=100.0, seed=11
)
FAST_CFG = MissionConfig(max_decisions=400, max_mission_time_s=1200.0)


@pytest.fixture(scope="module")
def roborun_result():
    env = EnvironmentGenerator().generate(SMALL_ENV)
    return MissionSimulator(env, RoboRunRuntime(), FAST_CFG).run()


@pytest.fixture(scope="module")
def baseline_result():
    env = EnvironmentGenerator().generate(SMALL_ENV)
    return MissionSimulator(env, SpatialObliviousRuntime(), FAST_CFG).run()


class TestMissionLoop:
    def test_roborun_completes_without_collision(self, roborun_result):
        assert not roborun_result.metrics.collided
        assert roborun_result.metrics.decision_count > 0
        assert roborun_result.metrics.distance_travelled_m > 10.0

    def test_baseline_makes_progress(self, baseline_result):
        # The baseline's fixed velocity is calibrated for an 80% collision-free
        # target (as in the paper), so individual seeds may terminate early;
        # the integration test only requires that the loop runs and progresses.
        assert baseline_result.metrics.decision_count > 0
        assert baseline_result.metrics.distance_travelled_m > 5.0

    def test_traces_are_complete(self, roborun_result):
        traces = roborun_result.traces
        assert len(traces) == roborun_result.metrics.decision_count
        for trace in traces[:20]:
            assert trace.end_to_end_latency > 0
            assert trace.time_budget >= 0
            assert trace.zone in {"A", "B", "C"}
            assert set(trace.policy) == {
                "point_cloud_precision",
                "map_to_planner_precision",
                "octomap_volume",
                "map_to_planner_volume",
                "planner_volume",
            }

    def test_timestamps_monotone(self, roborun_result):
        stamps = [t.timestamp for t in roborun_result.traces]
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))

    def test_ledger_matches_traces(self, roborun_result):
        assert len(roborun_result.ledger.end_to_end_latencies()) == len(roborun_result.traces)
        for trace, total in zip(
            roborun_result.traces, roborun_result.ledger.end_to_end_latencies()
        ):
            assert trace.end_to_end_latency == pytest.approx(total)

    def test_metrics_consistency(self, roborun_result):
        m = roborun_result.metrics
        assert m.mission_time_s > 0
        assert m.energy_j > 0
        assert 0.0 <= m.mean_cpu_utilization <= 1.0
        assert m.mean_velocity_mps == pytest.approx(
            m.distance_travelled_m / m.mission_time_s, rel=1e-6
        )
        assert 0.0 <= m.deadline_miss_rate <= 1.0
        assert m.median_latency_s <= m.max_latency_s

    def test_roborun_varies_its_policy(self, roborun_result):
        precisions = {t.policy["point_cloud_precision"] for t in roborun_result.traces}
        assert len(precisions) > 1, "RoboRun should adapt precision across the mission"

    def test_baseline_never_varies_its_policy(self, baseline_result):
        precisions = {t.policy["point_cloud_precision"] for t in baseline_result.traces}
        volumes = {t.policy["octomap_volume"] for t in baseline_result.traces}
        assert precisions == {0.3}
        assert volumes == {46_000.0}

    def test_baseline_velocity_cap_constant(self, baseline_result):
        caps = {round(t.velocity_cap, 6) for t in baseline_result.traces}
        assert len(caps) == 1

    def test_roborun_faster_than_baseline_in_open_zone(self, roborun_result, baseline_result):
        roborun_zones = summarise_zone_velocity(roborun_result.traces)
        baseline_zones = summarise_zone_velocity(baseline_result.traces)
        if "B" in roborun_zones and "B" in baseline_zones:
            assert roborun_zones["B"] > baseline_zones["B"]

    def test_zone_summaries_cover_visited_zones(self, roborun_result):
        variation = summarise_zone_latency_variation(roborun_result.traces)
        assert set(variation) <= {"A", "B", "C"}
        assert all(v >= 0 for v in variation.values())

    def test_as_dict_round_trip(self, roborun_result):
        d = roborun_result.metrics.as_dict()
        assert d["mission_time_s"] == pytest.approx(roborun_result.metrics.mission_time_s)
        assert d["energy_kj"] == pytest.approx(roborun_result.metrics.energy_j / 1000.0)


class TestGoldenMetrics:
    """The node-graph refactor must not move a single bit of the metrics.

    The expected values were captured from the pre-refactor monolithic
    decision loop on this exact environment/config pair; the node-based
    pipeline must reproduce them exactly (not approximately).
    """

    GOLDEN = {
        "roborun": {
            "success": 0.0,
            "collided": 0.0,
            "mission_time_s": 120.73771800000009,
            "distance_travelled_m": 80.8318339949936,
            "mean_velocity_mps": 0.669482870257607,
            "energy_kj": 57.71541177989992,
            "mean_cpu_utilization": 1.0,
            "decision_count": 122.0,
            "median_latency_s": 0.8780390000000002,
            "max_latency_s": 2.6474080000000004,
            "deadline_miss_rate": 0.7786885245901639,
            "replan_count": 13.0,
        },
        "spatial_oblivious": {
            "success": 1.0,
            "collided": 0.0,
            "mission_time_s": 301.069418,
            "distance_travelled_m": 180.43152367207372,
            "mean_velocity_mps": 0.599302064190637,
            "energy_kj": 143.52508642344148,
            "mean_cpu_utilization": 1.0,
            "decision_count": 133.0,
            "median_latency_s": 2.2219660000000006,
            "max_latency_s": 3.455577999999999,
            "deadline_miss_rate": 0.0,
            "replan_count": 21.0,
        },
    }
    LEDGER_RECORDS = {"roborun": 1220, "spatial_oblivious": 1330}

    def test_roborun_metrics_bit_identical(self, roborun_result):
        assert roborun_result.metrics.as_dict() == self.GOLDEN["roborun"]
        assert len(roborun_result.ledger) == self.LEDGER_RECORDS["roborun"]

    def test_baseline_metrics_bit_identical(self, baseline_result):
        assert baseline_result.metrics.as_dict() == self.GOLDEN["spatial_oblivious"]
        assert len(baseline_result.ledger) == self.LEDGER_RECORDS["spatial_oblivious"]


class TestTrajectoryBlockedAnchoring:
    """Regression tests for the blocked-path check's start-index lookup."""

    def make_planning_node(self):
        env = EnvironmentGenerator().generate(
            EnvironmentConfig(
                obstacle_density=0.05, obstacle_spread=30.0, goal_distance=60.0, seed=3
            )
        )
        sim = MissionSimulator(env, RoboRunRuntime(), FAST_CFG)
        return sim.build_pipeline().planning

    def loop_trajectory(self):
        """A path that revisits its start: A → B → A → C."""
        a = Vec3(0.0, 0.0, 5.0)
        b = Vec3(20.0, 0.0, 5.0)
        c = Vec3(0.0, 40.0, 5.0)
        v = Vec3(2.0, 0.0, 0.0)
        return (
            Trajectory(
                [
                    TrajectoryPoint(0.0, a, v),
                    TrajectoryPoint(10.0, b, v),
                    TrajectoryPoint(20.0, a, v),
                    TrajectoryPoint(30.0, c, v),
                ]
            ),
            a,
            b,
        )

    def test_duplicate_waypoint_anchors_ahead_of_drone(self):
        # The drone has flown A → B → A; the only mapped obstacle sits on the
        # already-consumed A → B leg.  Re-finding the anchor by position
        # equality lands on the *first* A and reports the path behind the
        # drone as blocked; anchoring by sample index must look ahead (A → C,
        # which is clear) and report the trajectory as flyable.
        planning = self.make_planning_node()
        trajectory, a, _ = self.loop_trajectory()
        octree = planning.operators.octree
        for dy in (-0.3, 0.0, 0.3):
            octree.mark_occupied(Vec3(10.0, dy, 5.0))
        assert not planning.trajectory_blocked(trajectory, a)

    def test_obstacle_ahead_is_still_caught(self):
        # From B the path ahead (B → A) does cross the mapped obstacle.
        planning = self.make_planning_node()
        trajectory, _, b = self.loop_trajectory()
        octree = planning.operators.octree
        for dy in (-0.3, 0.0, 0.3):
            octree.mark_occupied(Vec3(10.0, dy, 5.0))
        assert planning.trajectory_blocked(trajectory, b)


class TestMissionConfigValidation:
    def test_invalid_periods_rejected(self):
        with pytest.raises(ValueError):
            MissionConfig(sensor_period_s=0.0)
        with pytest.raises(ValueError):
            MissionConfig(max_decisions=0)
        with pytest.raises(ValueError):
            MissionConfig(planning_horizon_m=-1.0)

    def test_flight_band_must_be_ordered_pair(self):
        with pytest.raises(ValueError):
            MissionConfig(flight_band_m=(12.0, 2.0))
        with pytest.raises(ValueError):
            MissionConfig(flight_band_m=(5.0, 5.0))
        with pytest.raises(ValueError):
            MissionConfig(flight_band_m=(1.0, 2.0, 3.0))

    def test_flight_band_normalised_to_float_tuple(self):
        cfg = MissionConfig(flight_band_m=[1, 9])
        assert cfg.flight_band_m == (1.0, 9.0)
        assert isinstance(cfg.flight_band_m, tuple)
        assert all(isinstance(v, float) for v in cfg.flight_band_m)
