"""Backward compatibility: the fault registry must not move existing bytes.

Two layers of guarantee:

* **Format** — fault-set JSON written before the registry/orchestrator
  existed still parses, and the no-fault default still serialises to the
  pre-schedule byte layout (no ``"schedule"`` key).
* **Behaviour** — a no-fault campaign on the benchmark seed reproduces the
  exact trace files, dispatch log and metrics of the pre-registry code,
  pinned here as SHA-256 digests.  A fault-free mission must take the same
  code path — bit for bit — whether or not the orchestrator exists.
"""

import dataclasses
import hashlib
import json

import pytest

from repro import (
    CampaignRunner,
    EnvironmentConfig,
    FaultSet,
    MissionConfig,
    MissionSimulator,
    RoboRunRuntime,
    ScenarioSpec,
    build_environment,
    scenario_grid,
)

GOLDEN_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=7
)
GOLDEN_CFG = MissionConfig(max_decisions=25, max_mission_time_s=150.0)

#: SHA-256 digests of the benchmark-seed artefacts, captured before the
#: fault registry landed.  If one of these moves, a "no-fault" mission is
#: no longer on the pre-registry code path.
GOLDEN_TRACE_SHA = {
    "golden_roborun_den0.3_spr30_goal60.jsonl":
        "ee80c58b8ae8aa99e8c9f9cb38827d8967475d2126572897337023f27382d104",
    "golden_spatial_oblivious_den0.3_spr30_goal60.jsonl":
        "76c22d20ba92642d4bf0a967c7f791190d3e612da7067178c38bd88e649bb71c",
}
GOLDEN_DISPATCH_SHA = (
    "59e96c81ad1ebc1a20cd197aab433e9ccf5104c610624a469023b2b9a9450b35"
)
GOLDEN_METRICS_SHA = (
    "61ced841b68361a61262d1db9682f00c3c5a86633b3388355b2af6942f5e9ab5"
)


class TestFormatCompatibility:
    def test_pre_registry_fault_set_json_parses(self):
        """The exact JSON shape older specs wrote still round-trips."""
        legacy = {
            "sensor_dropout": {"every_n": 4, "start_decision": 2},
            "camera_degradation": None,
        }
        faults = FaultSet.from_dict(json.loads(json.dumps(legacy)))
        assert faults.sensor_dropout.every_n == 4
        assert faults.camera_degradation is None
        assert faults.schedule == ()
        assert faults.to_dict() == legacy

    def test_no_fault_default_serialises_to_pre_schedule_bytes(self):
        payload = json.dumps(FaultSet().to_dict(), sort_keys=True)
        assert payload == (
            '{"camera_degradation": null, "sensor_dropout": null}'
        )

    def test_pre_registry_scenario_spec_parses(self):
        """A spec dictionary without schedule/world/n_drones keys loads."""
        spec_dict = {
            "name": "legacy",
            "design": "roborun",
            "environment": dataclasses.asdict(GOLDEN_ENV),
            "mission": dataclasses.asdict(GOLDEN_CFG),
            "faults": {
                "sensor_dropout": {"every_n": 3, "start_decision": 0},
                "camera_degradation": None,
            },
        }
        spec = ScenarioSpec.from_dict(json.loads(json.dumps(spec_dict)))
        assert spec.faults.sensor_dropout.every_n == 3
        assert spec.faults.label() == "sensor_dropout"

    def test_legacy_trace_record_without_faults_key_loads(self):
        from repro.analysis.trace import DecisionRecord
        record = DecisionRecord(
            spec_name="legacy", design="roborun", index=0, timestamp=0.0,
            position=(0.0, 0.0, 5.0), zone="A", speed=0.0, velocity_cap=1.0,
            time_budget=1.0, predicted_latency=0.5, solver_feasible=True,
            policy={}, stage_latencies={}, end_to_end_latency=0.5,
            visibility=40.0, closest_obstacle=10.0, gap_min=1.0, gap_avg=2.0,
            sensor_volume=100.0, map_volume=50.0, map_voxels=10, flown=1.0,
            interval=1.0, energy=5.0, replanned=False, dropped=False,
            hit=False,
        )
        line = json.loads(json.dumps(record.to_dict()))
        # A fault-free record serialises without the "faults" key — the
        # exact byte layout pre-orchestrator traces have on disk.
        assert "faults" not in line
        assert DecisionRecord.from_dict(line).faults == ()


@pytest.mark.slow
class TestBehaviouralCompatibility:
    """No-fault runs on the benchmark seed reproduce the pinned digests."""

    def test_no_fault_campaign_traces_bit_identical(self, tmp_path):
        specs = scenario_grid(
            "golden",
            densities=(0.3,),
            base_environment=GOLDEN_ENV,
            mission=GOLDEN_CFG,
            base_seed=7,
        )
        CampaignRunner(max_workers=1).run(specs, trace_dir=tmp_path)
        produced = {p.name for p in tmp_path.glob("*.jsonl")}
        assert produced == set(GOLDEN_TRACE_SHA)
        for name, expected in GOLDEN_TRACE_SHA.items():
            digest = hashlib.sha256((tmp_path / name).read_bytes()).hexdigest()
            assert digest == expected, (
                f"no-fault trace {name} drifted from the pre-registry bytes"
            )

    def test_no_fault_dispatch_log_and_metrics_bit_identical(self):
        environment = build_environment(GOLDEN_ENV)
        result = MissionSimulator(
            environment, RoboRunRuntime(), GOLDEN_CFG
        ).run()
        dispatch = json.dumps(result.pipeline.dispatch_log())
        metrics = json.dumps(result.metrics.as_dict(), sort_keys=True)
        assert hashlib.sha256(dispatch.encode()).hexdigest() == (
            GOLDEN_DISPATCH_SHA
        ), "the no-fault message cascade changed shape or order"
        assert hashlib.sha256(metrics.encode()).hexdigest() == (
            GOLDEN_METRICS_SHA
        ), "no-fault mission metrics drifted"
