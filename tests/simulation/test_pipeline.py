"""Tests for the node-based decision pipeline.

Covers the graph's structure (topics, cascade completeness), the comm hops
(ledger entries anchored to real bus messages), dispatch-order determinism
(same seed → identical executor log) and the fault injections applied at the
sense boundary.
"""

import pytest

from repro import (
    CameraDegradation,
    EnvironmentConfig,
    EnvironmentGenerator,
    FaultSet,
    MissionConfig,
    MissionSimulator,
    RoboRunRuntime,
    SensorDropout,
)
from repro.middleware.latency import COMM_STAGES
from repro.simulation.pipeline import (
    COMM_HOP_TOPICS,
    TOPIC_DECISION,
    TOPIC_FLIGHT,
    TOPIC_PERCEPTION,
    TOPIC_PLANNING,
    TOPIC_PROFILE,
    TOPIC_SCAN,
    TOPIC_TRAJECTORY,
)

TINY_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=30.0, goal_distance=60.0, seed=3
)
TINY_CFG = MissionConfig(max_decisions=25, max_mission_time_s=200.0)


def fly_tiny(faults=None):
    env = EnvironmentGenerator().generate(TINY_ENV)
    sim = MissionSimulator(env, RoboRunRuntime(), TINY_CFG, faults=faults)
    return sim.run()


@pytest.fixture(scope="module")
def tiny_result():
    return fly_tiny()


class TestGraphStructure:
    def test_every_topic_carries_traffic(self, tiny_result):
        bus = tiny_result.pipeline.bus
        expected = {
            TOPIC_SCAN,
            TOPIC_PROFILE,
            TOPIC_DECISION,
            TOPIC_PERCEPTION,
            TOPIC_PLANNING,
            TOPIC_TRAJECTORY,
            TOPIC_FLIGHT,
        }
        assert expected <= set(bus.names())
        decisions = tiny_result.metrics.decision_count
        for topic in expected - {TOPIC_TRAJECTORY}:
            # One message per decision on every edge (trajectory republishes
            # on stall drops, so it can exceed the decision count).
            assert bus.topic(topic).publish_count == decisions
        assert bus.topic(TOPIC_TRAJECTORY).publish_count >= decisions

    def test_cascade_completes_every_decision(self, tiny_result):
        pipeline = tiny_result.pipeline
        assert pipeline.executor.pending == 0
        indices = [trace.index for trace in tiny_result.traces]
        assert indices == list(range(len(indices)))

    def test_nodes_charge_compute(self, tiny_result):
        compute = tiny_result.pipeline.node_compute_seconds()
        assert set(compute) == {
            "sense", "profile", "governor", "perception", "planning", "flight",
        }
        # The kernels-hosting nodes and the governor all did charged work.
        assert compute["perception"] > 0
        assert compute["planning"] > 0
        assert compute["governor"] > 0

    def test_node_compute_matches_ledger_total(self, tiny_result):
        compute = tiny_result.pipeline.node_compute_seconds()
        ledger_compute = tiny_result.ledger.total_compute_seconds()
        assert sum(compute.values()) == pytest.approx(ledger_compute)


class TestCommHops:
    def test_four_hops_per_decision(self, tiny_result):
        hops = tiny_result.pipeline.hops
        decisions = tiny_result.metrics.decision_count
        assert len(hops) == 4 * decisions
        for index in range(decisions):
            stages = [h.stage for h in hops if h.decision_index == index]
            assert stages == list(COMM_STAGES)

    def test_hops_anchor_to_real_bus_messages(self, tiny_result):
        pipeline = tiny_result.pipeline
        histories = {
            topic: {m.header.seq: m for m in pipeline.bus.topic(topic).history()}
            for topic in COMM_HOP_TOPICS.values()
        }
        # Histories are bounded, so only the tail of the mission is checkable.
        checked = 0
        for hop in pipeline.hops:
            message = histories[hop.topic].get(hop.message_seq)
            if message is None:
                continue
            assert hop.published_stamp == message.stamp
            checked += 1
        assert checked >= 4  # at least the final decision's hops

    def test_ledger_comm_entries_are_hop_deltas(self, tiny_result):
        hops = tiny_result.pipeline.hops
        by_decision = {}
        for hop in hops:
            by_decision.setdefault(hop.decision_index, {})[hop.stage] = hop
        for decision in tiny_result.ledger.decisions():
            hop_map = by_decision[decision.decision_index]
            for stage in COMM_STAGES:
                hop = hop_map[stage]
                assert decision.stages[stage] == hop.comm_seconds
                assert hop.stamp_delta == pytest.approx(hop.comm_seconds, abs=1e-12)
                assert hop.delivered_stamp >= hop.published_stamp

    def test_comm_scales_with_payload(self, tiny_result):
        # The hop cost is sized by the payloads that crossed the bus: at
        # least the per-message floor, and varying across the mission.
        costs = {h.comm_seconds for h in tiny_result.pipeline.hops}
        assert len(costs) > 1
        assert all(c > 0 for c in costs)


class TestDispatchDeterminism:
    def test_same_seed_same_dispatch_order(self):
        first = fly_tiny()
        second = fly_tiny()
        log_a = first.pipeline.dispatch_log()
        log_b = second.pipeline.dispatch_log()
        assert log_a == log_b
        assert len(log_a) > 0
        assert first.metrics.as_dict() == second.metrics.as_dict()

    def test_cascade_dispatch_shape(self, tiny_result):
        # Every decision's cascade starts with the scan fan-out and ends with
        # the flight result fan-out, in FIFO order.
        log = tiny_result.pipeline.dispatch_log()
        assert log[0] == (TOPIC_SCAN, "sense")
        scan_deliveries = [entry for entry in log if entry[0] == TOPIC_SCAN]
        # Two subscribers (profile, perception) per decision.
        assert len(scan_deliveries) == 2 * tiny_result.metrics.decision_count


@pytest.mark.slow
class TestBenchmarkSeedGolden:
    """Acceptance: bit-identical metrics on the fixed benchmark seed.

    The expected values were captured from the pre-refactor monolithic loop
    on the benchmark environment (``benchmarks/conftest.BENCH_ENV``); the
    node graph must reproduce every metric exactly.
    """

    BENCH_ENV = EnvironmentConfig(
        obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
    )
    BENCH_CFG = MissionConfig(max_decisions=500, max_mission_time_s=1500.0)
    GOLDEN_ROBORUN = {
        "success": 1.0,
        "collided": 0.0,
        "mission_time_s": 214.69268399999996,
        "distance_travelled_m": 136.85867226413055,
        "mean_velocity_mps": 0.6374631390053821,
        "energy_kj": 102.49095704528258,
        "mean_cpu_utilization": 1.0,
        "decision_count": 204.0,
        "median_latency_s": 0.97176,
        "max_latency_s": 2.1518280000000005,
        "deadline_miss_rate": 0.9117647058823529,
        "replan_count": 20.0,
    }

    def test_roborun_bench_seed_bit_identical(self):
        env = EnvironmentGenerator().generate(self.BENCH_ENV)
        result = MissionSimulator(env, RoboRunRuntime(), self.BENCH_CFG).run()
        assert result.metrics.as_dict() == self.GOLDEN_ROBORUN
        assert len(result.ledger) == 2040


class TestFaultInjection:
    def test_sensor_dropout_blanks_scheduled_decisions(self):
        faults = FaultSet(sensor_dropout=SensorDropout(every_n=3))
        result = fly_tiny(faults=faults)
        dropped = result.pipeline.sense.dropped_decisions
        assert dropped, "dropout schedule never fired"
        assert all(index % 3 == 2 for index in dropped)
        fixed_cost = result.pipeline.flight.cost_model.point_cloud_fixed_s
        per_decision = {
            d.decision_index: d.stages["point_cloud"]
            for d in result.ledger.decisions()
        }
        for index, cost in per_decision.items():
            if index in dropped:
                # A lost frame converts zero pixels: only the fixed cost.
                assert cost == pytest.approx(fixed_cost)
            else:
                assert cost > fixed_cost

    def test_camera_degradation_reduces_point_cloud_work(self):
        faults = FaultSet(
            camera_degradation=CameraDegradation(width=4, height=3, after_decision=5)
        )
        result = fly_tiny(faults=faults)
        per_decision = {
            d.decision_index: d.stages["point_cloud"]
            for d in result.ledger.decisions()
        }
        healthy = per_decision[0]
        degraded = per_decision[6]
        assert degraded < healthy
        # Degradation is permanent once it strikes.
        assert all(
            per_decision[i] == pytest.approx(degraded)
            for i in range(5, len(per_decision))
        )

    def test_faultless_mission_unaffected_by_fault_plumbing(self, tiny_result):
        explicit = fly_tiny(faults=FaultSet())
        assert explicit.metrics.as_dict() == tiny_result.metrics.as_dict()

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            SensorDropout(every_n=1)
        with pytest.raises(ValueError):
            CameraDegradation(width=0, height=3)
