"""Governor playground: inspect the time budget and knob solver directly.

No mission simulation here — this example drives the RoboRun governor with
hand-written spatial profiles (a congestion gradient from tight warehouse
aisles to open sky) and prints, for every step, the Table I features it was
given and the policy it chose: the per-stage precision and volume knobs, the
decision deadline and the safe velocity.  This is the quickest way to see
Equation 1, Algorithm 1 and Equation 3 at work.

Run with::

    python examples/governor_playground.py
"""

from repro import Governor, SpaceProfile
from repro.geometry.vec3 import Vec3


def profile_for(step: int, steps: int) -> SpaceProfile:
    """A congestion gradient: step 0 is a tight aisle, the last step open sky."""
    t = step / (steps - 1)
    gap_avg = 0.8 + t * 24.0
    visibility = 4.0 + t * 36.0
    return SpaceProfile(
        timestamp=float(step),
        gap_min=min(0.6, gap_avg),
        gap_avg=gap_avg,
        closest_obstacle=2.0 + t * 38.0,
        closest_unknown=visibility,
        visibility=visibility,
        sensor_volume=100_000.0 + t * 200_000.0,
        map_volume=60_000.0,
        velocity=0.5 + t * 2.0,
        position=Vec3(step * 10.0, 0.0, 5.0),
        trajectory=None,
    )


def main() -> None:
    governor = Governor(max_velocity=2.5)
    steps = 8
    print(f"{'step':<6}{'gap_avg':>9}{'visib.':>8}{'budget':>9}{'p0':>6}{'p1':>6}"
          f"{'v0':>10}{'v2':>10}{'pred.lat':>10}{'vel.cap':>9}")
    for step in range(steps):
        profile = profile_for(step, steps)
        decision = governor.decide(profile)
        policy = decision.policy
        print(
            f"{step:<6}{profile.gap_avg:>9.1f}{profile.visibility:>8.1f}"
            f"{decision.time_budget:>9.2f}{policy.point_cloud_precision:>6.1f}"
            f"{policy.map_to_planner_precision:>6.1f}{policy.octomap_volume:>10.0f}"
            f"{policy.planner_volume:>10.0f}{decision.predicted_latency:>10.3f}"
            f"{decision.velocity_cap:>9.2f}"
        )
    print("\nExpected shape: as the space opens up (left to right), precision"
          " coarsens, predicted latency collapses and the velocity cap rises to"
          " the mission maximum.")


if __name__ == "__main__":
    main()
