"""Quickstart: fly one RoboRun mission and one static-baseline mission.

Generates a small congestion-cluster environment, flies it with both the
spatial-aware RoboRun runtime and the static spatial-oblivious baseline, and
prints the Figure-7-style mission metrics side by side.

Run with::

    python examples/quickstart.py
"""

from repro import (
    EnvironmentConfig,
    EnvironmentGenerator,
    MissionConfig,
    MissionSimulator,
    RoboRunRuntime,
    SpatialObliviousRuntime,
)


def main() -> None:
    env_config = EnvironmentConfig(
        obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
    )
    mission_config = MissionConfig(max_decisions=500, max_mission_time_s=1500.0)

    print(f"Environment: {env_config.label()}")
    results = {}
    for name, runtime in (
        ("roborun", RoboRunRuntime()),
        ("spatial_oblivious", SpatialObliviousRuntime()),
    ):
        environment = EnvironmentGenerator().generate(env_config)
        simulator = MissionSimulator(environment, runtime, mission_config)
        print(f"Flying {name} ...")
        results[name] = simulator.run()

    print(f"\n{'metric':<28}{'spatial_oblivious':>20}{'roborun':>14}")
    roborun = results["roborun"].metrics
    baseline = results["spatial_oblivious"].metrics
    rows = [
        ("success", baseline.success, roborun.success),
        ("mission time (s)", round(baseline.mission_time_s, 1), round(roborun.mission_time_s, 1)),
        ("mean velocity (m/s)", round(baseline.mean_velocity_mps, 2), round(roborun.mean_velocity_mps, 2)),
        ("energy (kJ)", round(baseline.energy_j / 1e3, 1), round(roborun.energy_j / 1e3, 1)),
        ("CPU utilization", round(baseline.mean_cpu_utilization, 3), round(roborun.mean_cpu_utilization, 3)),
        ("median latency (s)", round(baseline.median_latency_s, 3), round(roborun.median_latency_s, 3)),
    ]
    for label, b, r in rows:
        print(f"{label:<28}{b!s:>20}{r!s:>14}")


if __name__ == "__main__":
    main()
