"""Quickstart: fly one RoboRun mission and one static-baseline mission.

Declares the two missions as :class:`ScenarioSpec`s, flies them as a
two-scenario campaign (in parallel when the machine has the cores) and
prints the Figure-7-style mission metrics side by side.

Run with::

    python examples/quickstart.py
"""

from repro import CampaignRunner, EnvironmentConfig, MissionConfig, ScenarioSpec


def main() -> None:
    env_config = EnvironmentConfig(
        obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
    )
    mission_config = MissionConfig(max_decisions=500, max_mission_time_s=1500.0)
    specs = [
        ScenarioSpec(
            name=design,
            design=design,
            environment=env_config,
            mission=mission_config,
        )
        for design in ("roborun", "spatial_oblivious")
    ]

    print(f"Environment: {env_config.label()}")
    print(f"Flying {len(specs)} scenarios ...")
    campaign = CampaignRunner().run(specs)
    for failure in campaign.failures():
        error = failure.error or {}
        raise SystemExit(
            f"scenario {failure.spec.name!r} failed to run: "
            f"{error.get('type', '?')}: {error.get('message', '')}"
        )
    metrics = {o.spec.design: o.metrics for o in campaign.outcomes}

    print(f"\n{'metric':<28}{'spatial_oblivious':>20}{'roborun':>14}")
    roborun = metrics["roborun"]
    baseline = metrics["spatial_oblivious"]
    rows = [
        ("success", bool(baseline["success"]), bool(roborun["success"])),
        ("mission time (s)", round(baseline["mission_time_s"], 1), round(roborun["mission_time_s"], 1)),
        ("mean velocity (m/s)", round(baseline["mean_velocity_mps"], 2), round(roborun["mean_velocity_mps"], 2)),
        ("energy (kJ)", round(baseline["energy_kj"], 1), round(roborun["energy_kj"], 1)),
        ("CPU utilization", round(baseline["mean_cpu_utilization"], 3), round(roborun["mean_cpu_utilization"], 3)),
        ("median latency (s)", round(baseline["median_latency_s"], 3), round(roborun["median_latency_s"], 3)),
    ]
    for label, b, r in rows:
        print(f"{label:<28}{b!s:>20}{r!s:>14}")


if __name__ == "__main__":
    main()
