"""Search-and-rescue scenario: long-distance, time-critical flight.

The second mission class the paper motivates: medical equipment must reach
patients quickly, so mission time matters most and the goal is far away.
This example compares RoboRun against the static baseline at two goal
distances — all four missions declared as scenario specs and flown as one
campaign — and reports how much each design's mission time grows: the
goal-distance sensitivity of Figure 8d (the baseline, pinned to its
conservative fixed velocity, suffers more from longer missions).

Run with::

    python examples/search_and_rescue.py
"""

from repro import CampaignRunner, EnvironmentConfig, MissionConfig, ScenarioSpec

GOAL_DISTANCES = (100.0, 180.0)
DESIGNS = ("spatial_oblivious", "roborun")


def main() -> None:
    specs = [
        ScenarioSpec(
            name=f"sar_{design}_{int(distance)}m",
            design=design,
            environment=EnvironmentConfig(
                obstacle_density=0.3,
                obstacle_spread=40.0,
                goal_distance=distance,
                seed=11,
            ),
            mission=MissionConfig(max_decisions=700, max_mission_time_s=2500.0),
        )
        for design in DESIGNS
        for distance in GOAL_DISTANCES
    ]

    print("Search and rescue: mission time vs goal distance")
    print(f"Flying {len(specs)} scenarios ...\n")
    campaign = CampaignRunner().run(specs)
    by_design = campaign.by_design()

    print(
        f"{'design':<20}"
        + "".join(f"{int(d)} m".rjust(12) for d in GOAL_DISTANCES)
        + "ratio".rjust(10)
    )
    for design in DESIGNS:
        outcomes = by_design[design]
        failed = [o for o in outcomes if not o.ok]
        if failed:
            errors = ", ".join((o.error or {}).get("type", "?") for o in failed)
            print(f"{design:<20}  {len(failed)} scenario(s) failed to run: {errors}")
            continue
        times = [o.metrics["mission_time_s"] for o in outcomes]
        ratio = times[-1] / times[0] if times[0] > 0 else float("inf")
        print(f"{design:<20}" + "".join(f"{t:12.1f}" for t in times) + f"{ratio:10.2f}")
    print("\nExpected shape: the baseline's mission time grows faster with goal"
          " distance than RoboRun's, because RoboRun crosses the open middle of"
          " the mission at high velocity.")


if __name__ == "__main__":
    main()
