"""Campaign sweep: a grid of scenarios plus fault injections, run in parallel.

The closest thing to the paper's 27-environment evaluation at example scale:
a density x goal-distance grid for both designs (eight scenarios), plus two
fault-injection scenarios — periodic sensor dropout and a mid-mission camera
degradation — fanned across a process pool by the :class:`CampaignRunner`.
Every mission streams a JSONL trace, and the summary tables are folded from
those traces by the shared :class:`repro.analysis.CampaignReport`
aggregation (the same backend as ``python -m repro.report``); the full
markdown report lands under ``reports/``.

Run with::

    python examples/campaign_sweep.py
"""

from pathlib import Path

from repro import (
    CameraDegradation,
    CampaignRunner,
    EnvironmentConfig,
    FaultSet,
    MissionConfig,
    ScenarioSpec,
    SensorDropout,
    scenario_grid,
)
from repro.analysis import CampaignReport

BASE_ENV = EnvironmentConfig(obstacle_density=0.3, obstacle_spread=40.0, goal_distance=80.0)
MISSION = MissionConfig(max_decisions=250, max_mission_time_s=600.0)


def build_specs() -> list[ScenarioSpec]:
    specs = scenario_grid(
        "sweep",
        densities=(0.3, 0.5),
        goal_distances=(60.0, 90.0),
        base_environment=BASE_ENV,
        mission=MISSION,
        base_seed=21,
    )
    faulty_env = BASE_ENV
    specs.append(
        ScenarioSpec(
            name="sweep_roborun_dropout",
            design="roborun",
            environment=faulty_env,
            mission=MISSION,
            faults=FaultSet(sensor_dropout=SensorDropout(every_n=4)),
        ).seeded(41)
    )
    specs.append(
        ScenarioSpec(
            name="sweep_roborun_degraded_camera",
            design="roborun",
            environment=faulty_env,
            mission=MISSION,
            faults=FaultSet(
                camera_degradation=CameraDegradation(width=6, height=4, after_decision=20)
            ),
        ).seeded(42)
    )
    return specs


def main() -> None:
    specs = build_specs()
    trace_dir = Path("reports") / "traces" / "campaign_sweep"
    print(f"Flying a {len(specs)}-scenario campaign "
          f"({sum(1 for s in specs if s.faults.active())} with injected faults) ...")
    campaign = CampaignRunner().run(specs, trace_dir=trace_dir)

    print(f"\n{'scenario':<42}{'success':>8}{'time (s)':>10}{'vel (m/s)':>11}")
    for outcome in campaign.outcomes:
        if not outcome.ok:
            error = outcome.error or {}
            print(f"{outcome.spec.name:<42}   ERROR  {error.get('type', '?')}")
            continue
        m = outcome.metrics
        print(
            f"{outcome.spec.name:<42}"
            f"{str(bool(m['success'])):>8}"
            f"{m['mission_time_s']:>10.1f}"
            f"{m['mean_velocity_mps']:>11.2f}"
        )

    # Everything below is derived from the trace files alone.
    report = CampaignReport.from_trace_dir(trace_dir)
    fig7 = report.fig7()
    print("\n" + fig7.title)
    print(fig7.to_markdown())
    destination = report.write_markdown(
        Path("reports") / "campaign_sweep.md", title="Campaign sweep report"
    )
    print(f"\nFull report (fig2/fig5/fig7/fig8 tables): {destination}")


if __name__ == "__main__":
    main()
