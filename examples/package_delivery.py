"""Package-delivery scenario: warehouse → open sky → warehouse.

The paper's motivating mission: a drone leaves a congested warehouse (zone A),
crosses open space between buildings (zone B) and enters a second congested
warehouse (zone C).  This example flies the mission with RoboRun and prints
how the runtime's knobs, deadline and velocity adapt per zone — the behaviour
behind Figures 3 and 10.

Run with::

    python examples/package_delivery.py
"""

from collections import defaultdict

from repro import EnvironmentConfig, MissionConfig, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec(
        name="package_delivery",
        design="roborun",
        environment=EnvironmentConfig(
            obstacle_density=0.45, obstacle_spread=40.0, goal_distance=150.0, seed=5
        ),
        mission=MissionConfig(max_decisions=700),
    )
    print("Flying the package-delivery mission with RoboRun ...")
    result = spec.run()

    per_zone = defaultdict(list)
    for trace in result.traces:
        per_zone[trace.zone].append(trace)

    print(f"\nMission time: {result.metrics.mission_time_s:.1f} s  "
          f"(success={result.metrics.success}, collided={result.metrics.collided})")
    print(f"{'zone':<6}{'decisions':>10}{'mean speed':>12}{'mean precision':>16}"
          f"{'mean budget':>13}{'mean latency':>14}")
    for zone in ("A", "B", "C"):
        traces = per_zone.get(zone, [])
        if not traces:
            continue
        mean = lambda values: sum(values) / len(values)
        print(
            f"{zone:<6}{len(traces):>10}"
            f"{mean([t.speed for t in traces]):>12.2f}"
            f"{mean([t.policy['point_cloud_precision'] for t in traces]):>16.2f}"
            f"{mean([t.time_budget for t in traces]):>13.2f}"
            f"{mean([t.end_to_end_latency for t in traces]):>14.3f}"
        )
    print("\nExpected shape: coarse precision, long budgets and high speed in the"
          " open zone B; fine precision and shorter budgets in the congested"
          " zones A and C.")


if __name__ == "__main__":
    main()
