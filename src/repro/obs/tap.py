"""The observability tap: spans + metrics wired into a running pipeline.

:class:`ObsTap` is attached exactly like the analysis layer's
``TraceRecorder`` — ``pipeline.add_tap(tap)`` — but it watches the *runtime*
instead of the simulation: wall-clock spans around every decision and every
node callback, and counters/gauges/histograms over the executor, solver,
planner, octree, comm hops and fault engine.

It is strictly off the data path, by construction rather than by care:

* it subscribes to **no topics** — node activity is observed through the
  executor's dispatch observer hooks and payloads are inspected read-only
  as they pass, so the dispatch log (the determinism witness) is identical
  with the tap attached or absent;
* it publishes nothing and calls nothing on the nodes;
* when no tap is attached, the only residue in the runtime is one
  truthiness check per dispatch and two per decision.

One tap instance can observe a whole fleet: each drone's pipeline shares
the tap's tracer (one swimlane per drone) and metrics registry (one label
set per drone).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Buckets for the governor's decision deadline δ_d, seconds.
TIME_BUDGET_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4,
)


class ObsTap:
    """Passive runtime instrumentation for one mission or fleet run.

    Args:
        tracer: span sink; a fresh :class:`Tracer` by default.
        metrics: metric sink; a fresh :class:`MetricsRegistry` by default.
        process_name: Chrome-trace process name (usually the spec name).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        process_name: str = "repro",
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(process_name)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pipelines: List[Any] = []
        self._executors: List[Any] = []
        # id(node) -> (lane name, short node name); identity keyed because
        # callbacks resolve to bound methods whose __self__ is the node.
        self._node_lanes: Dict[int, Tuple[str, str]] = {}
        # topic name -> (payload kind, lane name) for the payloads sampled.
        self._topic_kinds: Dict[str, Tuple[str, str]] = {}
        # topic name -> last sampled message seq (a topic with N subscribers
        # dispatches the same message N times; sample it once).
        self._seen_seq: Dict[str, int] = {}
        self._open_node_span: Optional[Tuple[int, Span]] = None
        self._mission_spans: Dict[str, Span] = {}
        self._decision_spans: Dict[str, Span] = {}
        # Hot-path instrument cache, one bundle per lane.
        self._lane_counters: Dict[str, Dict[str, Counter]] = {}
        self._budget_histograms: Dict[str, Histogram] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Attachment (the pipeline tap protocol)
    # ------------------------------------------------------------------
    def attach(self, pipeline: Any, energy_model: Any = None) -> None:
        """Hook this tap into ``pipeline`` (idempotent per pipeline)."""
        del energy_model  # the tap measures the runtime, not the physics
        if any(p is pipeline for p in self._pipelines):
            return
        self._pipelines.append(pipeline)
        lane = self.lane_for(pipeline)
        self.tracer.lane(lane)
        if self not in pipeline.observers:
            pipeline.observers.append(self)
        executor = pipeline.executor
        executor.add_observer(self)
        if not any(e is executor for e in self._executors):
            self._executors.append(executor)
        for node in pipeline.nodes:
            short = node.name.rsplit("/", 1)[-1]
            self._node_lanes[id(node)] = (lane, short)
        topics = pipeline.topics
        self._topic_kinds[topics.decision] = ("decision", lane)
        self._topic_kinds[topics.planning] = ("planning", lane)
        self._lane_counters.setdefault(lane, self._build_lane_counters(lane))
        self._budget_histograms.setdefault(
            lane,
            self.metrics.histogram(
                "governor_time_budget_seconds",
                help="Decision deadline delta_d chosen by the time budgeter",
                unit="s",
                labels={"drone": lane},
                buckets=TIME_BUDGET_BUCKETS,
            ),
        )

    @staticmethod
    def lane_for(pipeline: Any) -> str:
        return f"drone{pipeline.drone_id}"

    def _build_lane_counters(self, lane: str) -> Dict[str, Counter]:
        labels = {"drone": lane}
        m = self.metrics
        return {
            "dispatches": m.counter(
                "executor_dispatches_total",
                help="Subscriber callbacks delivered for this drone's nodes",
                labels=labels,
            ),
            "decisions": m.counter(
                "decisions_total",
                help="Completed decision cascades",
                labels=labels,
            ),
            "replans": m.counter(
                "planner_replans_total",
                help="Decisions whose planning stage replanned",
                labels=labels,
            ),
            "planner_iterations": m.counter(
                "planner_iterations_total",
                help="RRT* sampling iterations executed",
                labels=labels,
            ),
            "planner_nodes": m.counter(
                "planner_nodes_total",
                help="RRT* tree nodes expanded",
                labels=labels,
            ),
            "collision_samples": m.counter(
                "planner_collision_samples_total",
                help="Collision ray-cast samples probed",
                labels=labels,
            ),
            "rewires": m.counter(
                "planner_rewires_total",
                help="RRT* edges re-parented by the rewiring pass",
                labels=labels,
            ),
            "infeasible": m.counter(
                "governor_infeasible_total",
                help="Decisions where the solver fell back to the safe policy",
                labels=labels,
            ),
            "solver_solves": m.counter(
                "solver_solves_total",
                help="Knob solver invocations",
                labels=labels,
            ),
            "solver_candidates": m.counter(
                "solver_candidates_total",
                help="Precision-ladder candidates the solver evaluated",
                labels=labels,
            ),
        }

    # ------------------------------------------------------------------
    # Executor dispatch observer
    # ------------------------------------------------------------------
    def before_dispatch(self, topic_name: str, callback: Any, message: Any) -> None:
        node = getattr(callback, "__self__", None)
        entry = self._node_lanes.get(id(node))
        if entry is not None:
            lane, short = entry
            self._lane_counters[lane]["dispatches"].inc()
            span = self.tracer.begin(
                short, category="node", lane=lane, args={"topic": topic_name}
            )
            self._open_node_span = (id(node), span)
        kind = self._topic_kinds.get(topic_name)
        if kind is not None:
            seq = message.header.seq
            if self._seen_seq.get(topic_name) != seq:
                self._seen_seq[topic_name] = seq
                payload_kind, lane = kind
                if payload_kind == "planning":
                    self._sample_planning(lane, message.payload)
                else:
                    self._sample_decision(lane, message.payload)

    def after_dispatch(self, topic_name: str, callback: Any, message: Any) -> None:
        del topic_name, message
        open_span = self._open_node_span
        if open_span is None:
            return
        node = getattr(callback, "__self__", None)
        if open_span[0] == id(node):
            self.tracer.end(open_span[1])
            self._open_node_span = None

    # ------------------------------------------------------------------
    # Payload sampling (read-only peeks at passing messages)
    # ------------------------------------------------------------------
    def _sample_planning(self, lane: str, payload: Any) -> None:
        counters = self._lane_counters[lane]
        work = payload.output.work
        counters["planner_iterations"].inc(work.planner_iterations)
        counters["planner_nodes"].inc(work.planner_nodes)
        counters["collision_samples"].inc(work.planner_collision_samples)
        plan = payload.output.plan
        if plan is not None:
            counters["rewires"].inc(plan.rewires)
        if payload.replanned:
            counters["replans"].inc()

    def _sample_decision(self, lane: str, payload: Any) -> None:
        decision = payload.decision
        self._budget_histograms[lane].observe(decision.time_budget)
        if not decision.solver_feasible:
            self._lane_counters[lane]["infeasible"].inc()

    # ------------------------------------------------------------------
    # Pipeline step observer
    # ------------------------------------------------------------------
    def on_decision_start(self, pipeline: Any, index: int) -> None:
        lane = self.lane_for(pipeline)
        if lane not in self._mission_spans:
            self._mission_spans[lane] = self.tracer.begin(
                "mission",
                category="mission",
                lane=lane,
                args={"drone_id": pipeline.drone_id},
            )
        self._decision_spans[lane] = self.tracer.begin(
            "decision",
            category="decision",
            lane=lane,
            args={"index": index, "sim_time_s": pipeline.clock.now},
        )

    def on_decision_end(self, pipeline: Any, index: int, result: Any) -> None:
        lane = self.lane_for(pipeline)
        span = self._decision_spans.pop(lane, None)
        if span is not None:
            self.tracer.end(
                span,
                args={
                    "sim_time_s": pipeline.clock.now,
                    "flown_m": result.flown,
                    "hit": result.hit,
                },
            )
        counters = self._lane_counters[lane]
        counters["decisions"].inc()
        labels = {"drone": lane}

        # Per-stage latency histograms (compute stages and comm_* hops).
        for stage, seconds in pipeline.ledger.stages_for(index).items():
            self.metrics.histogram(
                "pipeline_stage_seconds",
                help="Simulated per-stage latency of the decision cascade",
                unit="s",
                labels={"drone": lane, "stage": stage},
            ).observe(seconds)

        # Map growth and executor pressure.
        octree = pipeline.perception.operators.octree
        self.metrics.gauge(
            "octree_occupied_voxels",
            help="Occupied minimum-resolution voxels in the shared octree",
            labels=labels,
        ).set(octree.occupied_voxel_count())
        executor = pipeline.executor
        self.metrics.gauge(
            "executor_queue_high_water",
            help="Largest executor queue depth reached so far",
            labels={},
        ).set(executor.queue_high_water)
        self.metrics.gauge(
            "executor_queue_depth",
            help="Pending callbacks at the decision boundary",
            labels={},
        ).set(executor.pending)

        # Fault engine activity.
        for fault_name in pipeline.orchestrator.active_fault_names(index):
            self.metrics.counter(
                "fault_active_decisions_total",
                help="Decisions during which each fault was active",
                labels={"drone": lane, "fault": fault_name},
            ).inc()

        # Solver counters (RoboRun runtimes only; the baseline has no solver).
        runtime = getattr(pipeline.governor, "runtime", None)
        governor = getattr(runtime, "governor", None)
        solver = getattr(governor, "solver", None)
        if solver is not None:
            solves = counters["solver_solves"]
            candidates = counters["solver_candidates"]
            solves.inc(max(0, solver.solve_count - solves.value))
            candidates.inc(max(0, solver.candidates_evaluated - candidates.value))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close every open span and take the final gauge samples."""
        if self._finished:
            return
        self._finished = True
        for lane, span in list(self._decision_spans.items()):
            self.tracer.end(span)
        self._decision_spans.clear()
        for lane, span in list(self._mission_spans.items()):
            self.tracer.end(span)
        self._mission_spans.clear()
        for executor in self._executors:
            self.metrics.gauge(
                "executor_queue_high_water",
                help="Largest executor queue depth reached so far",
                labels={},
            ).set(executor.queue_high_water)
            self.metrics.gauge(
                "executor_dispatched",
                help="Total callbacks the executor delivered",
                labels={},
            ).set(executor.dispatched)
        self.tracer.finish()

    def export(self, out_dir: Any, stem: str = "obs") -> Dict[str, Any]:
        """Write the trace + metric artefacts under ``out_dir``.

        Returns the paths written: ``trace`` (Chrome trace JSON),
        ``metrics`` (JSON snapshot) and ``prometheus`` (text exposition).
        """
        from pathlib import Path

        self.finish()
        out = Path(out_dir)
        return {
            "trace": self.tracer.write_chrome_trace(out / f"{stem}_trace.json"),
            "metrics": self.metrics.write_snapshot(out / f"{stem}_metrics.json"),
            "prometheus": self.metrics.write_prometheus(out / f"{stem}_metrics.prom"),
        }
