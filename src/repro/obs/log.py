"""Structured logging for the repro package: one root logger, zero prints.

Library code never calls ``print``.  Every module that wants to talk gets a
namespaced child of the single ``repro`` root logger via :func:`get_logger`
and emits ordinary :mod:`logging` records; by default those records go
nowhere (a :class:`logging.NullHandler` sits on the root), so importing the
library stays silent no matter what the host application configured.

Command-line entry points (``python -m repro.report``, ``python -m
repro.profile``) opt into output by calling :func:`configure_logging`, which
installs exactly one stream handler on the root logger.  The handler looks
its stream up dynamically (``sys.stdout`` by default), so output lands
wherever stdout currently points — including pytest's capture — rather than
wherever it pointed at configuration time.

The verbosity knob is the ``REPRO_LOG_LEVEL`` environment variable
(``DEBUG``/``INFO``/``WARNING``/``ERROR``/``CRITICAL`` or a numeric level);
an explicit ``level=`` argument wins over the environment.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Callable, Optional, TextIO

#: The single root logger of the package; every library logger is a child.
ROOT_LOGGER_NAME = "repro"

#: Environment variable that sets the default verbosity of CLI runs.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Marker attribute stamped on handlers installed by :func:`configure_logging`
#: so reconfiguration replaces them instead of stacking duplicates.
_HANDLER_MARK = "_repro_obs_handler"

# Importing the module guarantees the library default: records are swallowed
# unless a handler is configured, and logging's last-resort stderr printer
# never fires for repro records.
_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A namespaced child of the ``repro`` root logger.

    ``get_logger("report")`` → ``repro.report``; dotted names (including a
    module's ``__name__``, with or without the ``repro.`` prefix) nest
    naturally.  An empty name returns the root logger itself.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def level_from_env(default: int = logging.INFO) -> int:
    """Resolve ``REPRO_LOG_LEVEL`` into a numeric logging level."""
    raw = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw.upper())
    return resolved if isinstance(resolved, int) else default


class _DynamicStreamHandler(logging.StreamHandler):
    """A stream handler that resolves its stream at emit time.

    CLI output must follow ``sys.stdout`` even when the surrounding harness
    (pytest's capsys, a wrapping service) swaps the stream after logging was
    configured, so the handler never caches the file object.
    """

    def __init__(self, stream_getter: Callable[[], TextIO]) -> None:
        self._stream_getter = stream_getter
        super().__init__()

    @property
    def stream(self) -> TextIO:  # type: ignore[override]
        return self._stream_getter()

    @stream.setter
    def stream(self, value: object) -> None:  # pragma: no cover - setter no-op
        # StreamHandler.__init__ assigns a default stream; the dynamic lookup
        # deliberately ignores it.
        del value


def configure_logging(
    level: Optional[int] = None,
    fmt: str = "%(message)s",
    stream_getter: Optional[Callable[[], TextIO]] = None,
) -> logging.Logger:
    """Install the CLI output handler on the ``repro`` root logger.

    Args:
        level: numeric logging level; ``None`` reads ``REPRO_LOG_LEVEL``
            (default ``INFO``).
        fmt: handler format; the default renders bare messages, which keeps
            CLI output identical to what the old ``print`` calls produced.
        stream_getter: zero-argument callable returning the output stream
            (default: current ``sys.stdout``).

    Calling again reconfigures (replaces the previously installed handler)
    instead of stacking handlers, so repeated CLI invocations in one process
    never duplicate lines.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = level_from_env() if level is None else level
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = _DynamicStreamHandler(stream_getter or (lambda: sys.stdout))
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(resolved)
    return root
