"""Observability: spans, metrics and heartbeats for the runtime itself.

The rest of the repository observes the *simulation* (the ``TraceRecorder``
JSONL of the analysis layer); this package observes the *runtime* — where
wall-clock time goes inside the decision loop, how hard the executor,
solver, planner and octree are working, and whether campaign workers are
alive.  Three pillars:

* :mod:`repro.obs.tracer` — nested mission → decision → node spans with
  Chrome trace-event export (Perfetto-loadable);
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a JSON
  snapshot and Prometheus text exposition;
* :mod:`repro.obs.heartbeat` — per-spec progress records from campaign
  workers over a multiprocessing queue.

Everything is opt-in and strictly off the data path: with no tap attached
the runtime pays a few truthiness checks, and with a tap attached the
dispatch log, traces and metrics stay byte-identical (the tap subscribes to
nothing and publishes nothing).  :mod:`repro.obs.log` is the package's
logging discipline — library code never prints.
"""

from repro.obs.heartbeat import (
    HEARTBEAT_FILE,
    HeartbeatEmitter,
    HeartbeatRecord,
    ListSink,
    peak_rss_mb,
    read_heartbeats,
    runtime_summary,
    write_heartbeats,
)
from repro.obs.log import (
    LOG_LEVEL_ENV,
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    level_from_env,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_PREFIX,
)
from repro.obs.tap import ObsTap
from repro.obs.tracer import Span, Tracer, validate_chrome_trace

__all__ = [
    "HEARTBEAT_FILE",
    "HeartbeatEmitter",
    "HeartbeatRecord",
    "ListSink",
    "peak_rss_mb",
    "read_heartbeats",
    "runtime_summary",
    "write_heartbeats",
    "LOG_LEVEL_ENV",
    "ROOT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "level_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_PREFIX",
    "ObsTap",
    "Span",
    "Tracer",
    "validate_chrome_trace",
]
