"""Campaign heartbeats: per-spec progress records from worker processes.

A :class:`CampaignRunner` worker knows things the parent pool cannot see —
which decision epoch the mission is on, how much wall clock it has burned,
how big its process has grown.  The heartbeat path ships that knowledge out:
each worker emits :class:`HeartbeatRecord` rows (start → running… → done or
error) over a ``multiprocessing`` queue; the parent drains the queue into
``<telemetry_dir>/heartbeats.jsonl`` and a live progress line.  The async
campaign engine adds two parent-synthesised statuses — ``timeout`` when it
kills an over-budget worker and ``retry`` when it requeues a spec whose
worker died — see :data:`HEARTBEAT_STATUSES`.

The emitter doubles as a pipeline tap (``on_decision_end`` throttled to one
record per ``min_interval_s`` of wall clock), so per-epoch progress costs a
clock comparison per decision and a queue put every few hundred
milliseconds — and, like everything in :mod:`repro.obs`, it is opt-in:
campaigns run without a telemetry queue emit nothing and touch none of
this code.

RSS comes from :mod:`resource` (stdlib) rather than psutil, so the repo
stays dependency-free; ``ru_maxrss`` is the *peak*, which is exactly the
quantity the runtime table wants.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

PathLike = Union[str, Path]

#: File name of the heartbeat JSONL inside a telemetry directory.
HEARTBEAT_FILE = "heartbeats.jsonl"

#: Every status a heartbeat record can carry.  ``start`` / ``running`` /
#: ``done`` / ``error`` come from the worker itself; ``timeout`` and
#: ``retry`` are synthesised by the async campaign parent when it kills an
#: over-budget worker or requeues a spec whose worker died.
HEARTBEAT_STATUSES = ("start", "running", "done", "error", "timeout", "retry")

try:  # pragma: no cover - resource is stdlib on POSIX, absent on Windows
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def peak_rss_mb() -> float:
    """Peak resident set size of this process, MiB (0.0 when unavailable).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise both.
    """
    if resource is None:
        return 0.0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if raw > 1 << 30:  # clearly bytes (a >1 TiB KiB reading is implausible)
        return raw / (1 << 20)
    return raw / 1024.0


@dataclass(frozen=True, slots=True)
class HeartbeatRecord:
    """One progress record from a campaign worker.

    Attributes:
        spec: the scenario spec name the worker is running.
        status: one of :data:`HEARTBEAT_STATUSES` — ``start`` | ``running``
            | ``done`` | ``error`` from workers, ``timeout`` | ``retry``
            from the async campaign parent.
        seq: per-spec record sequence number (0 for ``start``).
        epoch: last completed decision epoch (-1 before the first).
        decisions: decision cascades completed so far (fleet missions count
            every drone's cascades).
        wall_elapsed_s: wall-clock seconds since the spec started.
        rss_mb: the worker's peak RSS at emission time, MiB.
        pid: the worker process id.
        error: the error string for ``status="error"`` records, else "".
    """

    spec: str
    status: str
    seq: int
    epoch: int
    decisions: int
    wall_elapsed_s: float
    rss_mb: float
    pid: int
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        if not self.error:
            del data["error"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HeartbeatRecord":
        return cls(
            spec=data["spec"],
            status=data["status"],
            seq=int(data["seq"]),
            epoch=int(data["epoch"]),
            decisions=int(data["decisions"]),
            wall_elapsed_s=float(data["wall_elapsed_s"]),
            rss_mb=float(data["rss_mb"]),
            pid=int(data["pid"]),
            error=str(data.get("error", "")),
        )


class HeartbeatEmitter:
    """Worker-side heartbeat source; also a pipeline tap.

    Args:
        spec_name: name of the spec being run.
        sink: anything with a ``put(record_dict)`` method — a
            ``multiprocessing.Queue`` in pooled runs, a plain list adapter in
            serial runs and tests.
        min_interval_s: wall-clock throttle between ``running`` records.
    """

    def __init__(
        self,
        spec_name: str,
        sink: Any,
        min_interval_s: float = 0.25,
    ) -> None:
        self.spec_name = spec_name
        self.sink = sink
        self.min_interval_s = min_interval_s
        self._started = time.perf_counter()
        self._last_emit = float("-inf")
        self._seq = 0
        self._decisions = 0
        self._last_epoch = -1

    # -- tap protocol --------------------------------------------------
    def attach(self, pipeline: Any, energy_model: Any = None) -> None:
        del energy_model
        if self not in pipeline.observers:
            pipeline.observers.append(self)

    def on_decision_start(self, pipeline: Any, index: int) -> None:
        del pipeline, index

    def on_decision_end(self, pipeline: Any, index: int, result: Any) -> None:
        del pipeline, result
        self._decisions += 1
        self._last_epoch = max(self._last_epoch, index)
        now = time.perf_counter()
        if now - self._last_emit >= self.min_interval_s:
            self.emit("running")

    # -- record emission -----------------------------------------------
    def emit(self, status: str, error: str = "") -> HeartbeatRecord:
        record = HeartbeatRecord(
            spec=self.spec_name,
            status=status,
            seq=self._seq,
            epoch=self._last_epoch,
            decisions=self._decisions,
            wall_elapsed_s=time.perf_counter() - self._started,
            rss_mb=peak_rss_mb(),
            pid=os.getpid(),
            error=error,
        )
        self._seq += 1
        self._last_emit = time.perf_counter()
        try:
            self.sink.put(record.to_dict())
        except (ValueError, OSError):  # pragma: no cover - queue torn down
            pass
        return record


class ListSink:
    """An in-process heartbeat sink (serial campaigns, tests)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def put(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


def write_heartbeats(records: Iterable[Dict[str, Any]], path: PathLike) -> Path:
    """Append heartbeat dicts to a JSONL file (created with parents)."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("a", encoding="utf-8") as stream:
        for record in records:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
    return destination


def clear_heartbeats(path: PathLike) -> bool:
    """Delete a heartbeat JSONL file if it exists; True when one was removed.

    :meth:`~repro.simulation.campaign.CampaignRunner.run` sweeps the
    heartbeat file through this before flying: :func:`write_heartbeats`
    appends, so without the sweep a campaign re-run into the same
    ``telemetry_dir`` would accumulate the previous run's records and
    :func:`runtime_summary` would report stale totals.
    """
    target = Path(path)
    if target.is_file():
        target.unlink()
        return True
    return False


def read_heartbeats(path: PathLike) -> List[HeartbeatRecord]:
    """Parse a heartbeat JSONL file; missing file → empty list."""
    source = Path(path)
    if not source.exists():
        return []
    records: List[HeartbeatRecord] = []
    for line in source.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(HeartbeatRecord.from_dict(json.loads(line)))
    return records


def runtime_summary(
    records: Iterable[HeartbeatRecord],
) -> Dict[str, Dict[str, Any]]:
    """Fold heartbeats into one runtime row per spec.

    Returns ``spec -> {status, wall_time_s, decisions, decisions_per_sec,
    peak_rss_mb}`` using each spec's last record *in iteration order*
    (heartbeat files are written in arrival order and records are
    cumulative, so the last one carries the totals).  Arrival order — not
    ``seq`` — is the tiebreak because a spec retried by the async engine
    starts a fresh emitter whose sequence numbers restart at 0: the retry
    attempt's ``done`` must win over the dead attempt's higher-``seq``
    ``running`` record.
    """
    last: Dict[str, HeartbeatRecord] = {}
    for record in records:
        last[record.spec] = record
    summary: Dict[str, Dict[str, Any]] = {}
    for spec, record in last.items():
        wall = record.wall_elapsed_s
        summary[spec] = {
            "status": record.status,
            "wall_time_s": wall,
            "decisions": record.decisions,
            "decisions_per_sec": record.decisions / wall if wall > 0 else 0.0,
            "peak_rss_mb": record.rss_mb,
            "error": record.error,
        }
    return summary
