"""Wall-clock spans with Chrome trace-event export.

The :class:`Tracer` is the time half of the observability layer: nested
mission → decision → node spans, each recording the wall-clock duration of
real Python work *and* the sim-clock interval it covered.  Spans are
appended to a flat list as begin/end ("B"/"E") event pairs in the Chrome
trace-event format, so a mission's trace loads directly into Perfetto or
``chrome://tracing`` with no conversion step.

Layout conventions:

* one *process* per traced run (``pid`` 1) named after the mission/spec;
* one *thread* per drone (``tid`` = drone index + 1, named after the
  ``drone_id``) — the runtime is single-threaded, but mapping drones onto
  trace threads is what makes fleet missions readable as parallel lanes;
* timestamps are microseconds from the tracer's start, taken from
  :func:`time.perf_counter`;
* the sim-clock time of each span lands in the event ``args`` so both
  clocks stay visible side by side.

Everything here is passive bookkeeping: a span is two ``perf_counter``
calls and two dict appends, and nothing in the simulation ever reads the
tracer back.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

#: The single trace process id; the runtime is one OS process.
TRACE_PID = 1


@dataclass
class Span:
    """One open span on a tracer lane; closed via :meth:`Tracer.end`."""

    name: str
    category: str
    tid: int
    start_us: float
    args: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects nested spans and renders them as Chrome trace events.

    Spans nest per *lane* (trace thread): ``begin`` pushes onto the lane's
    stack, ``end`` pops and emits the matched "B"/"E" pair.  Lanes are
    created on first use via :meth:`lane` and map one-to-one onto drone
    ids, so fleet missions render as parallel swimlanes.
    """

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self._origin = time.perf_counter()
        self._events: List[Dict[str, Any]] = []
        self._lanes: Dict[str, int] = {}
        self._stacks: Dict[int, List[Span]] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def lane(self, name: str) -> int:
        """The trace-thread id for ``name``, creating the lane on first use."""
        tid = self._lanes.get(name)
        if tid is None:
            tid = len(self._lanes) + 1
            self._lanes[name] = tid
            self._stacks[tid] = []
        return tid

    @property
    def lanes(self) -> Dict[str, int]:
        return dict(self._lanes)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    def begin(
        self,
        name: str,
        category: str = "repro",
        lane: str = "main",
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        tid = self.lane(lane)
        span = Span(
            name=name,
            category=category,
            tid=tid,
            start_us=self.now_us(),
            args=dict(args or {}),
        )
        self._stacks[tid].append(span)
        self._events.append(
            {
                "name": name,
                "cat": category,
                "ph": "B",
                "ts": span.start_us,
                "pid": TRACE_PID,
                "tid": tid,
                "args": span.args,
            }
        )
        return span

    def end(self, span: Span, args: Optional[Dict[str, Any]] = None) -> float:
        """Close ``span`` (and anything opened after it on the same lane).

        Returns the span's wall-clock duration in microseconds.
        """
        stack = self._stacks[span.tid]
        if span not in stack:
            raise ValueError(f"span {span.name!r} is not open")
        # Close any dangling children first so B/E events stay balanced and
        # properly nested even if a caller forgot an inner end().
        while stack and stack[-1] is not span:
            self._emit_end(stack.pop(), None)
        stack.pop()
        return self._emit_end(span, args)

    def _emit_end(
        self, span: Span, args: Optional[Dict[str, Any]]
    ) -> float:
        end_us = self.now_us()
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "E",
            "ts": end_us,
            "pid": TRACE_PID,
            "tid": span.tid,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)
        return end_us - span.start_us

    def instant(
        self,
        name: str,
        category: str = "repro",
        lane: str = "main",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A zero-duration marker event (fault activations, drops)."""
        self._events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": self.now_us(),
                "pid": TRACE_PID,
                "tid": self.lane(lane),
                "args": dict(args or {}),
            }
        )

    def counter(
        self,
        name: str,
        values: Dict[str, float],
        lane: str = "main",
    ) -> None:
        """A counter-track sample (queue depth over time, say)."""
        self._events.append(
            {
                "name": name,
                "ph": "C",
                "ts": self.now_us(),
                "pid": TRACE_PID,
                "tid": self.lane(lane),
                "args": dict(values),
            }
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close every still-open span (idempotent)."""
        if self._finished:
            return
        for stack in self._stacks.values():
            while stack:
                self._emit_end(stack.pop(), None)
        self._finished = True

    def _metadata_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        for lane_name, tid in self._lanes.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": lane_name},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return events

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The full trace document; closes open spans first."""
        self.finish()
        return {
            "traceEvents": self._metadata_events() + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

    def write_chrome_trace(self, path: PathLike) -> Path:
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(
            json.dumps(self.to_chrome_trace()) + "\n", encoding="utf-8"
        )
        return destination

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def span_durations(self) -> Dict[str, Dict[str, float]]:
        """Wall-clock totals per span name: count / total_us / max_us.

        Matches "B" and "E" events per (tid, name) as a stack, which is
        exactly how trace viewers pair them; used by the profile CLI's
        hotspot table.
        """
        open_spans: Dict[tuple, List[float]] = {}
        totals: Dict[str, Dict[str, float]] = {}
        for event in self._events:
            phase = event.get("ph")
            key = (event["tid"], event["name"])
            if phase == "B":
                open_spans.setdefault(key, []).append(event["ts"])
            elif phase == "E":
                starts = open_spans.get(key)
                if not starts:
                    continue
                duration = event["ts"] - starts.pop()
                entry = totals.setdefault(
                    event["name"],
                    {"count": 0.0, "total_us": 0.0, "max_us": 0.0},
                )
                entry["count"] += 1
                entry["total_us"] += duration
                if duration > entry["max_us"]:
                    entry["max_us"] = duration
        return totals


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural checks on a trace document; returns a list of problems.

    Used by the test suite (and available to callers) to confirm a trace is
    Perfetto-loadable: the envelope is present, every lane's "B"/"E" events
    balance, and timestamps never run backwards.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    depth: Dict[int, int] = {}
    last_ts: Dict[int, float] = {}
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase not in {"B", "E", "i", "C", "M", "X"}:
            problems.append(f"event {i}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        tid = event.get("tid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ts < last_ts.get(tid, float("-inf")):
            problems.append(f"event {i}: ts runs backwards on tid {tid}")
        last_ts[tid] = ts
        if phase == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif phase == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                problems.append(f"event {i}: E without matching B on tid {tid}")
    for tid, d in depth.items():
        if d > 0:
            problems.append(f"tid {tid}: {d} unclosed B event(s)")
    return problems
