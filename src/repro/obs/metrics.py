"""Counters, gauges and histograms for the runtime's hot paths.

The :class:`MetricsRegistry` is the numbers half of the observability layer
(:mod:`repro.obs`): small, dependency-free metric instruments sampled at
node boundaries by the pipeline tap, snapshotted to JSON for the analysis
layer and rendered in the Prometheus text exposition format for the future
campaign service (ROADMAP item 4).

Design rules, matching the DAQ-style monitoring path the subsystem copies:

* instruments are plain Python objects — an increment is one float add, so
  sampling is cheap enough to sit inside the dispatch observer;
* the registry is passive: nothing in the simulation reads a metric back,
  so recording can never change simulated behaviour;
* a metric family is identified by ``(name, sorted labels)``; the same
  family name may exist with different label sets (one per drone, say), and
  the Prometheus renderer groups them under one ``# TYPE`` header.

Units are carried in the ``unit`` field and documented per metric in
``docs/observability.md``; seconds for latencies, counts for everything
else.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Every metric family rendered for Prometheus is prefixed with this.
PROMETHEUS_PREFIX = "repro_"

#: Default histogram buckets, seconds — spans the sub-millisecond comm hops
#: through multi-second planning stalls.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelValue = Union[str, int, float]
Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, LabelValue]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _prometheus_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned.startswith(PROMETHEUS_PREFIX):
        return cleaned
    return PROMETHEUS_PREFIX + cleaned


def _render_labels(labels: Labels, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class Counter:
    """A monotonically increasing count (dispatches, rewires, activations)."""

    name: str
    help: str = ""
    unit: str = ""
    labels: Labels = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def load(self, data: Mapping[str, Any]) -> None:
        self.value = float(data["value"])

    def render(self, lines: List[str]) -> None:
        lines.append(
            f"{_prometheus_name(self.name)}{_render_labels(self.labels)} "
            f"{_format_value(self.value)}"
        )


@dataclass
class Gauge:
    """A point-in-time value (queue depth, octree cells) with a tracked peak."""

    name: str
    help: str = ""
    unit: str = ""
    labels: Labels = ()
    value: float = 0.0
    peak: float = 0.0
    samples: int = 0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)
        self.samples += 1
        if self.value > self.peak:
            self.peak = self.value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "peak": self.peak, "samples": self.samples}

    def load(self, data: Mapping[str, Any]) -> None:
        self.value = float(data["value"])
        self.peak = float(data.get("peak", self.value))
        self.samples = int(data.get("samples", 0))

    def render(self, lines: List[str]) -> None:
        name = _prometheus_name(self.name)
        lines.append(
            f"{name}{_render_labels(self.labels)} {_format_value(self.value)}"
        )


@dataclass
class Histogram:
    """A cumulative-bucket distribution (stage and comm-hop latencies)."""

    name: str
    help: str = ""
    unit: str = ""
    labels: Labels = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        bounds = tuple(sorted(float(b) for b in self.buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        if not self.counts:
            # One count per finite bucket plus the +Inf overflow bucket.
            self.counts = [0] * (len(bounds) + 1)
        elif len(self.counts) != len(bounds) + 1:
            raise ValueError("bucket counts do not match bucket bounds")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts, ending with the total count."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def load(self, data: Mapping[str, Any]) -> None:
        self.buckets = tuple(float(b) for b in data["buckets"])
        self.counts = [int(c) for c in data["counts"]]
        self.total = float(data["sum"])
        self.count = int(data["count"])
        self.__post_init__()

    def render(self, lines: List[str]) -> None:
        name = _prometheus_name(self.name)
        cumulative = self.cumulative_counts()
        for bound, running in zip(self.buckets, cumulative):
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(self.labels, (('le', _format_value(bound)),))} "
                f"{running}"
            )
        lines.append(
            f"{name}_bucket{_render_labels(self.labels, (('le', '+Inf'),))} "
            f"{cumulative[-1]}"
        )
        lines.append(
            f"{name}_sum{_render_labels(self.labels)} {_format_value(self.total)}"
        )
        lines.append(f"{name}_count{_render_labels(self.labels)} {self.count}")


Instrument = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of metric instruments, keyed by name + labels.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    the same (name, labels) pair is requested again, so call sites never
    cache instruments unless they sit on a hot path and want to skip the
    dictionary lookup.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, LabelValue]] = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help, unit, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, LabelValue]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, unit, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, LabelValue]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _freeze_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(
            name=name, help=help, unit=unit, labels=key[1], buckets=buckets
        )
        self._metrics[key] = metric
        return metric

    def _get_or_create(self, cls, name, help, unit, labels) -> Any:
        key = (name, _freeze_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name=name, help=help, unit=unit, labels=key[1])
        self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(
        self, name: str, labels: Optional[Mapping[str, LabelValue]] = None
    ) -> Optional[Instrument]:
        """The instrument at (name, labels), or ``None`` if never created."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def families(self) -> Dict[str, List[Instrument]]:
        """Instruments grouped by family name, in registration order."""
        grouped: Dict[str, List[Instrument]] = {}
        for metric in self._metrics.values():
            grouped.setdefault(metric.name, []).append(metric)
        return grouped

    # ------------------------------------------------------------------
    # Snapshot (JSON)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-shaped snapshot of every instrument, sorted for stable bytes."""
        metrics: List[Dict[str, Any]] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            entry: Dict[str, Any] = {
                "name": name,
                "kind": metric.kind,
                "help": metric.help,
                "unit": metric.unit,
                "labels": {k: v for k, v in labels},
            }
            entry.update(metric.as_dict())
            metrics.append(entry)
        return {"schema_version": 1, "metrics": metrics}

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (round-trip safe)."""
        registry = cls()
        for entry in data.get("metrics", []):
            kind = _KINDS.get(entry.get("kind", ""))
            if kind is None:
                raise ValueError(f"unknown metric kind {entry.get('kind')!r}")
            labels = dict(entry.get("labels", {}))
            if kind is Histogram:
                metric: Instrument = registry.histogram(
                    entry["name"],
                    help=entry.get("help", ""),
                    unit=entry.get("unit", ""),
                    labels=labels,
                    buckets=tuple(entry["buckets"]),
                )
            elif kind is Gauge:
                metric = registry.gauge(
                    entry["name"],
                    help=entry.get("help", ""),
                    unit=entry.get("unit", ""),
                    labels=labels,
                )
            else:
                metric = registry.counter(
                    entry["name"],
                    help=entry.get("help", ""),
                    unit=entry.get("unit", ""),
                    labels=labels,
                )
            metric.load(entry)
        return registry

    def write_snapshot(self, path: PathLike) -> Path:
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(
            json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return destination

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        for name, metrics in sorted(self.families().items()):
            first = metrics[0]
            prom = _prometheus_name(name)
            help_text = first.help or name.replace("_", " ")
            if first.unit:
                help_text = f"{help_text} ({first.unit})"
            lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} {first.kind}")
            for metric in sorted(metrics, key=lambda m: m.labels):
                metric.render(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: PathLike) -> Path:
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(self.to_prometheus(), encoding="utf-8")
        return destination
