"""An immutable 3-D vector type.

``Vec3`` is the fundamental coordinate type used throughout the reproduction:
drone positions, velocities, point-cloud points, voxel centres and waypoints
are all ``Vec3`` instances.  It is deliberately a plain, hashable, frozen
dataclass rather than a numpy array so that it can be used as a dictionary key
(voxel keys, visited sets) and compared for equality in tests without
tolerance headaches.  Bulk numeric work (point clouds, grids) uses numpy
arrays directly and converts at the boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class Vec3:
    """A 3-D vector with float components.

    The class supports the arithmetic needed by the kinematics, planners and
    profilers: addition, subtraction, scalar multiplication/division, dot and
    cross products, norms and normalisation, element-wise min/max and linear
    interpolation.
    """

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Vec3":
        """Return the zero vector."""
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def ones() -> "Vec3":
        """Return the all-ones vector."""
        return Vec3(1.0, 1.0, 1.0)

    @staticmethod
    def unit_x() -> "Vec3":
        """Return the +x unit vector."""
        return Vec3(1.0, 0.0, 0.0)

    @staticmethod
    def unit_y() -> "Vec3":
        """Return the +y unit vector."""
        return Vec3(0.0, 1.0, 0.0)

    @staticmethod
    def unit_z() -> "Vec3":
        """Return the +z unit vector."""
        return Vec3(0.0, 0.0, 1.0)

    @staticmethod
    def from_iter(values: Iterable[float]) -> "Vec3":
        """Build a vector from any length-3 iterable."""
        vals = list(values)
        if len(vals) != 3:
            raise ValueError(f"expected 3 components, got {len(vals)}")
        return Vec3(float(vals[0]), float(vals[1]), float(vals[2]))

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y, self.z)[index]

    def __len__(self) -> int:
        return 3

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return the components as a plain tuple."""
        return (self.x, self.y, self.z)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def scale(self, other: "Vec3") -> "Vec3":
        """Element-wise (Hadamard) product."""
        return Vec3(self.x * other.x, self.y * other.y, self.z * other.z)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def dot(self, other: "Vec3") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Cross product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt when comparing)."""
        return self.dot(self)

    def normalized(self) -> "Vec3":
        """Return a unit-length copy.

        Raises:
            ZeroDivisionError: if the vector has zero length.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalise the zero vector")
        return self / n

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance between two points."""
        return (self - other).norm()

    def horizontal_distance_to(self, other: "Vec3") -> float:
        """Distance projected onto the x-y plane (useful for ground range)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return math.hypot(dx, dy)

    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: returns ``self`` at t=0 and ``other`` at t=1."""
        return self + (other - self) * t

    def elementwise_min(self, other: "Vec3") -> "Vec3":
        """Element-wise minimum."""
        return Vec3(min(self.x, other.x), min(self.y, other.y), min(self.z, other.z))

    def elementwise_max(self, other: "Vec3") -> "Vec3":
        """Element-wise maximum."""
        return Vec3(max(self.x, other.x), max(self.y, other.y), max(self.z, other.z))

    def clamp(self, lo: "Vec3", hi: "Vec3") -> "Vec3":
        """Clamp every component into ``[lo, hi]``."""
        return self.elementwise_max(lo).elementwise_min(hi)

    def is_close(self, other: "Vec3", tol: float = 1e-9) -> bool:
        """Component-wise approximate equality."""
        return (
            abs(self.x - other.x) <= tol
            and abs(self.y - other.y) <= tol
            and abs(self.z - other.z) <= tol
        )

    def is_finite(self) -> bool:
        """True when every component is finite."""
        return all(math.isfinite(c) for c in self)


def centroid(points: Sequence[Vec3]) -> Vec3:
    """Return the arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid of an empty point sequence is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    sz = sum(p.z for p in points)
    n = len(points)
    return Vec3(sx / n, sy / n, sz / n)
