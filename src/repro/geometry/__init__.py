"""Geometric primitives shared by every substrate in the RoboRun reproduction.

The paper's pipeline operates on 3-D space: point clouds from depth cameras,
voxelised occupancy maps (OctoMap), ray casting for map insertion and
collision checking, and field-of-view frustums that bound the volume of space
a sensor can observe.  This package provides those primitives:

* :class:`~repro.geometry.vec3.Vec3` — an immutable 3-D vector.
* :class:`~repro.geometry.aabb.AABB` — axis-aligned bounding boxes.
* :class:`~repro.geometry.ray.Ray` and
  :func:`~repro.geometry.ray.traverse_voxels` — Amanatides–Woo voxel
  traversal used by the OctoMap ray-caster and the planner's collision
  checker.
* :class:`~repro.geometry.grid.VoxelGrid` — a uniform grid index used by the
  point-cloud precision operator.
* :class:`~repro.geometry.frustum.Frustum` — a camera viewing frustum used by
  the sensor models and the space-volume profilers.
"""

from repro.geometry.aabb import AABB
from repro.geometry.frustum import Frustum
from repro.geometry.grid import VoxelGrid, voxel_key
from repro.geometry.ray import Ray, ray_aabb_intersect, traverse_voxels
from repro.geometry.vec3 import Vec3

__all__ = [
    "AABB",
    "Frustum",
    "Ray",
    "Vec3",
    "VoxelGrid",
    "ray_aabb_intersect",
    "traverse_voxels",
    "voxel_key",
]
