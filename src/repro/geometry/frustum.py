"""Camera viewing frustums.

The space-volume feature in the paper is defined by what the drone's field of
view (FOV) covers: "Larger volumes require processing more voxels" (Fig. 1a/1b)
and occlusion near obstacles shrinks the effectively observable volume.  The
``Frustum`` class models a single depth camera's FOV as a pyramid with a
maximum sensing range, supports containment tests for point culling and
reports its volume so the profilers can compute the sensor volume of Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class Frustum:
    """A rectangular pyramid representing a depth camera's field of view.

    Attributes:
        apex: camera optical centre in world coordinates.
        forward: unit vector along the camera's optical axis.
        up: unit vector defining the camera's vertical direction.
        horizontal_fov_deg: total horizontal field of view, degrees.
        vertical_fov_deg: total vertical field of view, degrees.
        max_range: far-plane distance (maximum sensing range), metres.
    """

    apex: Vec3
    forward: Vec3
    up: Vec3
    horizontal_fov_deg: float
    vertical_fov_deg: float
    max_range: float

    def __post_init__(self) -> None:
        if not 0 < self.horizontal_fov_deg < 180:
            raise ValueError("horizontal FOV must be in (0, 180) degrees")
        if not 0 < self.vertical_fov_deg < 180:
            raise ValueError("vertical FOV must be in (0, 180) degrees")
        if self.max_range <= 0:
            raise ValueError("max range must be positive")

    # ------------------------------------------------------------------
    # Derived frame
    # ------------------------------------------------------------------
    def right(self) -> Vec3:
        """Unit vector to the camera's right."""
        return self.forward.cross(self.up).normalized()

    def basis(self) -> tuple[Vec3, Vec3, Vec3]:
        """Orthonormal (forward, right, up) camera basis."""
        f = self.forward.normalized()
        r = self.right()
        u = r.cross(f).normalized()
        return f, r, u

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, point: Vec3) -> bool:
        """True when the point lies inside the frustum (within max range)."""
        f, r, u = self.basis()
        rel = point - self.apex
        depth = rel.dot(f)
        if depth < 0 or depth > self.max_range:
            return False
        half_w = depth * math.tan(math.radians(self.horizontal_fov_deg) / 2.0)
        half_h = depth * math.tan(math.radians(self.vertical_fov_deg) / 2.0)
        return abs(rel.dot(r)) <= half_w and abs(rel.dot(u)) <= half_h

    def volume(self) -> float:
        """Frustum volume in cubic metres (rectangular pyramid formula)."""
        half_w = self.max_range * math.tan(math.radians(self.horizontal_fov_deg) / 2.0)
        half_h = self.max_range * math.tan(math.radians(self.vertical_fov_deg) / 2.0)
        base_area = (2.0 * half_w) * (2.0 * half_h)
        return base_area * self.max_range / 3.0

    def clipped_volume(self, visibility: float) -> float:
        """Volume of the frustum truncated at the given visibility distance.

        When obstacles or weather occlude the view, only the portion of the
        pyramid up to ``visibility`` metres contributes observable volume.
        """
        depth = max(0.0, min(visibility, self.max_range))
        if depth == 0.0:
            return 0.0
        scale = depth / self.max_range
        return self.volume() * scale**3

    def bounding_box(self) -> AABB:
        """The AABB of the frustum's corner points (apex plus far plane)."""
        return AABB.from_points([self.apex, *self.far_plane_corners()])

    def far_plane_corners(self) -> List[Vec3]:
        """The four corner points of the far plane."""
        f, r, u = self.basis()
        center = self.apex + f * self.max_range
        half_w = self.max_range * math.tan(math.radians(self.horizontal_fov_deg) / 2.0)
        half_h = self.max_range * math.tan(math.radians(self.vertical_fov_deg) / 2.0)
        return [
            center + r * sx * half_w + u * sy * half_h
            for sx in (-1.0, 1.0)
            for sy in (-1.0, 1.0)
        ]

    def sample_directions(self, n_horizontal: int, n_vertical: int) -> List[Vec3]:
        """Unit direction vectors on a regular angular grid across the FOV.

        These are the per-pixel ray directions used by the simulated depth
        camera: an ``n_horizontal x n_vertical`` image resolution produces one
        ray per pixel.
        """
        if n_horizontal < 1 or n_vertical < 1:
            raise ValueError("sample counts must be at least 1")
        f, r, u = self.basis()
        h_half = math.radians(self.horizontal_fov_deg) / 2.0
        v_half = math.radians(self.vertical_fov_deg) / 2.0
        directions: List[Vec3] = []
        for i in range(n_horizontal):
            if n_horizontal == 1:
                az = 0.0
            else:
                az = -h_half + (2.0 * h_half) * i / (n_horizontal - 1)
            for j in range(n_vertical):
                if n_vertical == 1:
                    el = 0.0
                else:
                    el = -v_half + (2.0 * v_half) * j / (n_vertical - 1)
                direction = (
                    f * (math.cos(el) * math.cos(az))
                    + r * (math.cos(el) * math.sin(az))
                    + u * math.sin(el)
                )
                directions.append(direction.normalized())
        return directions
