"""Uniform voxel grids and voxel indexing.

The paper's point-cloud precision operator works by "gridding the space into
cells, mapping the points onto the cells using their coordinates, and then
reducing each cell to a single average point" (§III-B).  ``VoxelGrid``
implements exactly that bucketing, and ``voxel_key`` is the shared
world-coordinate → integer-cell mapping used by the grid, the octree ray
caster and the collision checker so that all of them agree on voxel
boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3

VoxelKey = Tuple[int, int, int]


def voxel_key(point: Vec3, resolution: float) -> VoxelKey:
    """Map a world-space point to the integer index of its containing voxel.

    Voxel ``(i, j, k)`` spans ``[i*res, (i+1)*res)`` along each axis, so the
    voxel centre is at ``(i + 0.5) * res``.

    Args:
        point: world-space coordinates in metres.
        resolution: voxel edge length in metres; must be positive.
    """
    if resolution <= 0:
        raise ValueError("voxel resolution must be positive")
    return (
        int(math.floor(point.x / resolution)),
        int(math.floor(point.y / resolution)),
        int(math.floor(point.z / resolution)),
    )


def voxel_center(key: VoxelKey, resolution: float) -> Vec3:
    """Return the world-space centre of the voxel with the given index."""
    return Vec3(
        (key[0] + 0.5) * resolution,
        (key[1] + 0.5) * resolution,
        (key[2] + 0.5) * resolution,
    )


def voxel_bounds(key: VoxelKey, resolution: float) -> AABB:
    """Return the AABB spanned by the voxel with the given index."""
    lo = Vec3(key[0] * resolution, key[1] * resolution, key[2] * resolution)
    hi = lo + Vec3(resolution, resolution, resolution)
    return AABB(lo, hi)


@dataclass
class _CellAccumulator:
    """Running sum used to average the points that fall in one grid cell."""

    count: int = 0
    sum_x: float = 0.0
    sum_y: float = 0.0
    sum_z: float = 0.0

    def add(self, point: Vec3) -> None:
        self.count += 1
        self.sum_x += point.x
        self.sum_y += point.y
        self.sum_z += point.z

    def mean(self) -> Vec3:
        return Vec3(self.sum_x / self.count, self.sum_y / self.count, self.sum_z / self.count)


@dataclass
class VoxelGrid:
    """A sparse uniform grid that buckets points by voxel.

    This is the data structure behind the point-cloud precision operator:
    points inserted into the grid are grouped by cell and each occupied cell
    can be reduced to its average point.  The grid is sparse (a dictionary
    keyed by voxel index), so memory scales with the number of occupied cells
    rather than the bounding volume.
    """

    resolution: float
    _cells: Dict[VoxelKey, _CellAccumulator] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("voxel resolution must be positive")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, point: Vec3) -> VoxelKey:
        """Insert a point, returning the key of the cell it landed in."""
        key = voxel_key(point, self.resolution)
        cell = self._cells.get(key)
        if cell is None:
            cell = _CellAccumulator()
            self._cells[key] = cell
        cell.add(point)
        return key

    def insert_many(self, points: Iterable[Vec3]) -> None:
        """Insert every point in the iterable."""
        for p in points:
            self.insert(p)

    def clear(self) -> None:
        """Remove every cell."""
        self._cells.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: VoxelKey) -> bool:
        return key in self._cells

    def occupied_keys(self) -> Iterator[VoxelKey]:
        """Iterate over the indices of occupied cells."""
        return iter(self._cells.keys())

    def count_in_cell(self, key: VoxelKey) -> int:
        """Number of points inserted into the given cell (0 if empty)."""
        cell = self._cells.get(key)
        return cell.count if cell else 0

    def total_points(self) -> int:
        """Total number of points inserted across all cells."""
        return sum(cell.count for cell in self._cells.values())

    def averaged_points(self) -> List[Vec3]:
        """Reduce every occupied cell to its average point.

        This is the core of the point-cloud precision operator: the output
        has at most one point per ``resolution``-sized cell, so the downstream
        OctoMap insertion cost scales with the requested precision rather than
        the raw sensor density.
        """
        return [cell.mean() for cell in self._cells.values()]

    def occupied_volume(self) -> float:
        """Total volume (m^3) of occupied cells."""
        return len(self._cells) * self.resolution**3

    def bounds(self) -> AABB:
        """The tight AABB of occupied voxels.

        Raises:
            ValueError: when the grid is empty.
        """
        if not self._cells:
            raise ValueError("bounds of an empty grid are undefined")
        keys = list(self._cells.keys())
        lo_key = (
            min(k[0] for k in keys),
            min(k[1] for k in keys),
            min(k[2] for k in keys),
        )
        hi_key = (
            max(k[0] for k in keys),
            max(k[1] for k in keys),
            max(k[2] for k in keys),
        )
        lo = Vec3(
            lo_key[0] * self.resolution,
            lo_key[1] * self.resolution,
            lo_key[2] * self.resolution,
        )
        hi = Vec3(
            (hi_key[0] + 1) * self.resolution,
            (hi_key[1] + 1) * self.resolution,
            (hi_key[2] + 1) * self.resolution,
        )
        return AABB(lo, hi)


def downsample_points(points: Iterable[Vec3], resolution: float) -> List[Vec3]:
    """Grid-average downsampling of a point cloud at the given precision.

    Convenience wrapper used by the point-cloud precision operator: builds a
    temporary :class:`VoxelGrid`, inserts every point and returns the cell
    averages.
    """
    grid = VoxelGrid(resolution)
    grid.insert_many(points)
    return grid.averaged_points()
