"""Axis-aligned bounding boxes.

AABBs describe obstacles in the synthetic environment, the bounds of the
occupancy map, camera frustum bounds and the volume windows enforced by the
volume operators.  Volumes throughout the reproduction are reported in cubic
metres to match the paper's knob tables (Table II uses m^3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class AABB:
    """An axis-aligned box defined by its minimum and maximum corners.

    The box is considered to contain points with ``min <= p <= max``
    (closed on both ends), which matches how the occupancy grid treats voxel
    boundaries.
    """

    min_corner: Vec3
    max_corner: Vec3

    def __post_init__(self) -> None:
        if (
            self.min_corner.x > self.max_corner.x
            or self.min_corner.y > self.max_corner.y
            or self.min_corner.z > self.max_corner.z
        ):
            raise ValueError(
                f"AABB min corner {self.min_corner} exceeds max corner {self.max_corner}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_center(center: Vec3, size: Vec3) -> "AABB":
        """Build a box from its centre and full edge lengths."""
        half = size * 0.5
        return AABB(center - half, center + half)

    @staticmethod
    def from_points(points: Iterable[Vec3]) -> "AABB":
        """Return the tightest box containing every point."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build an AABB from zero points")
        lo = pts[0]
        hi = pts[0]
        for p in pts[1:]:
            lo = lo.elementwise_min(p)
            hi = hi.elementwise_max(p)
        return AABB(lo, hi)

    @staticmethod
    def cube(center: Vec3, edge: float) -> "AABB":
        """Build an axis-aligned cube of the given edge length."""
        return AABB.from_center(center, Vec3(edge, edge, edge))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def center(self) -> Vec3:
        """The centre point of the box."""
        return (self.min_corner + self.max_corner) * 0.5

    @property
    def size(self) -> Vec3:
        """Edge lengths along each axis."""
        return self.max_corner - self.min_corner

    @property
    def volume(self) -> float:
        """Volume in cubic metres."""
        s = self.size
        return s.x * s.y * s.z

    @property
    def surface_area(self) -> float:
        """Total surface area."""
        s = self.size
        return 2.0 * (s.x * s.y + s.y * s.z + s.z * s.x)

    def corners(self) -> List[Vec3]:
        """The eight corner points."""
        lo, hi = self.min_corner, self.max_corner
        return [
            Vec3(x, y, z)
            for x in (lo.x, hi.x)
            for y in (lo.y, hi.y)
            for z in (lo.z, hi.z)
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, point: Vec3) -> bool:
        """True when the point lies inside or on the boundary of the box."""
        lo, hi = self.min_corner, self.max_corner
        return (
            lo.x <= point.x <= hi.x
            and lo.y <= point.y <= hi.y
            and lo.z <= point.z <= hi.z
        )

    def contains_box(self, other: "AABB") -> bool:
        """True when ``other`` lies entirely within this box."""
        return self.contains(other.min_corner) and self.contains(other.max_corner)

    def intersects(self, other: "AABB") -> bool:
        """True when the two boxes overlap (sharing a face counts)."""
        return (
            self.min_corner.x <= other.max_corner.x
            and self.max_corner.x >= other.min_corner.x
            and self.min_corner.y <= other.max_corner.y
            and self.max_corner.y >= other.min_corner.y
            and self.min_corner.z <= other.max_corner.z
            and self.max_corner.z >= other.min_corner.z
        )

    def intersection(self, other: "AABB") -> Optional["AABB"]:
        """The overlapping box, or ``None`` when the boxes are disjoint."""
        lo = self.min_corner.elementwise_max(other.min_corner)
        hi = self.max_corner.elementwise_min(other.max_corner)
        if lo.x > hi.x or lo.y > hi.y or lo.z > hi.z:
            return None
        return AABB(lo, hi)

    def union(self, other: "AABB") -> "AABB":
        """The smallest box containing both boxes."""
        return AABB(
            self.min_corner.elementwise_min(other.min_corner),
            self.max_corner.elementwise_max(other.max_corner),
        )

    def expanded(self, margin: float) -> "AABB":
        """Return a copy grown by ``margin`` metres on every side."""
        m = Vec3(margin, margin, margin)
        return AABB(self.min_corner - m, self.max_corner + m)

    def closest_point(self, point: Vec3) -> Vec3:
        """The point inside the box closest to ``point``."""
        return point.clamp(self.min_corner, self.max_corner)

    def distance_to_point(self, point: Vec3) -> float:
        """Euclidean distance from the box surface to the point (0 if inside)."""
        return self.closest_point(point).distance_to(point)

    def clamp_point(self, point: Vec3) -> Vec3:
        """Alias of :meth:`closest_point`, kept for call-site readability."""
        return self.closest_point(point)

    def sample_grid(self, step: float) -> Iterator[Vec3]:
        """Yield points on a regular grid with the given spacing.

        Used by tests and the environment analyser to rasterise obstacle
        occupancy at a configurable precision.
        """
        if step <= 0:
            raise ValueError("grid step must be positive")
        x = self.min_corner.x
        while x <= self.max_corner.x + 1e-12:
            y = self.min_corner.y
            while y <= self.max_corner.y + 1e-12:
                z = self.min_corner.z
                while z <= self.max_corner.z + 1e-12:
                    yield Vec3(x, y, z)
                    z += step
                y += step
            x += step

    def split_octants(self) -> Tuple["AABB", ...]:
        """Split the box into its eight octants (used by the octree)."""
        c = self.center
        lo, hi = self.min_corner, self.max_corner
        octants = []
        for xs in ((lo.x, c.x), (c.x, hi.x)):
            for ys in ((lo.y, c.y), (c.y, hi.y)):
                for zs in ((lo.z, c.z), (c.z, hi.z)):
                    octants.append(
                        AABB(Vec3(xs[0], ys[0], zs[0]), Vec3(xs[1], ys[1], zs[1]))
                    )
        return tuple(octants)
