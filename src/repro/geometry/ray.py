"""Rays, ray/box intersection and voxel traversal.

Two of RoboRun's precision operators are ray-caster step-size controls: the
OctoMap insertion ray caster and the planner's collision ray caster both have
their step size scaled with the requested precision (§III-B, "Precision
Operators").  This module provides the underlying machinery:

* :func:`ray_aabb_intersect` — slab-test intersection used for obstacle and
  frustum clipping.
* :func:`traverse_voxels` — exact Amanatides–Woo voxel walking, the
  "infinitely fine" reference traversal.
* :func:`sample_ray` — fixed-step sampling along a ray, whose step size is the
  knob the precision operators turn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.grid import VoxelKey, voxel_key
from repro.geometry.vec3 import Vec3

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class Ray:
    """A half-line defined by an origin and a (not necessarily unit) direction."""

    origin: Vec3
    direction: Vec3

    def __post_init__(self) -> None:
        if self.direction.norm_sq() <= _EPS:
            raise ValueError("ray direction must be non-zero")

    def point_at(self, t: float) -> Vec3:
        """The point ``origin + t * direction``."""
        return self.origin + self.direction * t

    def unit(self) -> "Ray":
        """Return a copy with a unit-length direction."""
        return Ray(self.origin, self.direction.normalized())

    @staticmethod
    def between(start: Vec3, end: Vec3) -> "Ray":
        """Ray from ``start`` towards ``end`` (t=1 lands exactly on ``end``)."""
        return Ray(start, end - start)


def ray_aabb_intersect(ray: Ray, box: AABB) -> Optional[Tuple[float, float]]:
    """Slab-test ray/box intersection.

    Returns:
        ``(t_enter, t_exit)`` such that ``ray.point_at(t)`` lies inside the
        box for ``t_enter <= t <= t_exit`` and ``t_exit >= 0``, or ``None``
        when the ray misses the box entirely or the box lies behind the
        origin.
    """
    t_min = -math.inf
    t_max = math.inf
    for axis in range(3):
        o = ray.origin[axis]
        d = ray.direction[axis]
        lo = box.min_corner[axis]
        hi = box.max_corner[axis]
        if abs(d) < _EPS:
            if o < lo or o > hi:
                return None
            continue
        t1 = (lo - o) / d
        t2 = (hi - o) / d
        if t1 > t2:
            t1, t2 = t2, t1
        t_min = max(t_min, t1)
        t_max = min(t_max, t2)
        if t_min > t_max:
            return None
    if t_max < 0:
        return None
    return (t_min, t_max)


def raycast_aabbs_batch(
    origin: Vec3,
    directions: np.ndarray,
    box_lo: np.ndarray,
    box_hi: np.ndarray,
    max_range: float,
) -> np.ndarray:
    """Nearest entry distance per ray against a stack of boxes, batched.

    The vectorised twin of looping :func:`ray_aabb_intersect` over obstacles
    per ray (the depth camera's inner loop): one slab test over the whole
    ``(R rays, O boxes, 3 axes)`` block.  Elementwise arithmetic reproduces
    the scalar routine operation for operation, so the returned depths are
    bit-identical to the scalar loop's.

    Args:
        origin: shared ray origin (one sensor pose).
        directions: ``(R, 3)`` float64 ray directions (need not be unit).
        box_lo: ``(O, 3)`` float64 minimum corners.
        box_hi: ``(O, 3)`` float64 maximum corners.
        max_range: depths beyond this report ``inf`` (nothing sensed).

    Returns:
        ``(R,)`` float64 array: ``max(t_enter, 0)`` of the closest box hit
        with ``t_exit >= 0``, or ``inf`` when no box is hit within range.
    """
    rays = np.asarray(directions, dtype=np.float64)
    lo = np.asarray(box_lo, dtype=np.float64)
    hi = np.asarray(box_hi, dtype=np.float64)
    if lo.shape[0] == 0:
        return np.full(rays.shape[0], math.inf)
    o = np.array((origin.x, origin.y, origin.z), dtype=np.float64)

    d = rays[:, None, :]  # (R, 1, 3)
    lo_rel = lo[None, :, :] - o  # (1, O, 3)
    hi_rel = hi[None, :, :] - o
    with np.errstate(divide="ignore", invalid="ignore"):
        t1 = lo_rel / d  # (R, O, 3)
        t2 = hi_rel / d
    near = np.minimum(t1, t2)
    far = np.maximum(t1, t2)

    # Axes the ray runs parallel to contribute no constraint when the origin
    # lies inside the slab and an immediate miss otherwise — the same two
    # branches the scalar slab test takes for abs(d) < eps.
    parallel = np.abs(d) < _EPS  # (R, 1, 3) broadcast over boxes
    inside = (lo_rel <= 0.0) & (hi_rel >= 0.0)  # origin within the slab
    near = np.where(parallel, np.where(inside, -np.inf, np.inf), near)
    far = np.where(parallel, np.where(inside, np.inf, -np.inf), far)

    t_enter = near.max(axis=2)  # (R, O)
    t_exit = far.min(axis=2)
    hit = (t_enter <= t_exit) & (t_exit >= 0.0)
    entry = np.where(hit, np.maximum(t_enter, 0.0), np.inf)
    nearest = entry.min(axis=1)  # (R,)
    return np.where(nearest > max_range, np.inf, nearest)


def segment_intersects_aabb(start: Vec3, end: Vec3, box: AABB) -> bool:
    """True when the straight segment from ``start`` to ``end`` enters the box."""
    if box.contains(start) or box.contains(end):
        return True
    direction = end - start
    if direction.norm_sq() <= _EPS:
        return box.contains(start)
    hit = ray_aabb_intersect(Ray(start, direction), box)
    if hit is None:
        return False
    t_enter, t_exit = hit
    return t_enter <= 1.0 and t_exit >= 0.0


def traverse_voxels(
    start: Vec3,
    end: Vec3,
    resolution: float,
    max_voxels: Optional[int] = None,
) -> Iterator[VoxelKey]:
    """Amanatides–Woo traversal of the voxels between two points.

    Yields every voxel the segment passes through, beginning with the voxel
    containing ``start`` and ending with the voxel containing ``end``.  This
    is the exact traversal used as the reference (highest precision) ray cast
    by the OctoMap insertion and the collision checker.

    Args:
        start: segment start point.
        end: segment end point.
        resolution: voxel edge length in metres.
        max_voxels: optional safety cap on the number of voxels yielded.
    """
    if resolution <= 0:
        raise ValueError("voxel resolution must be positive")

    current = list(voxel_key(start, resolution))
    last = voxel_key(end, resolution)
    direction = end - start
    length = direction.norm()

    yield tuple(current)  # type: ignore[misc]
    if tuple(current) == last or length <= _EPS:
        return

    step = [0, 0, 0]
    t_max = [math.inf, math.inf, math.inf]
    t_delta = [math.inf, math.inf, math.inf]
    for axis in range(3):
        d = direction[axis]
        if d > _EPS:
            step[axis] = 1
            boundary = (current[axis] + 1) * resolution
            t_max[axis] = (boundary - start[axis]) / d
            t_delta[axis] = resolution / d
        elif d < -_EPS:
            step[axis] = -1
            boundary = current[axis] * resolution
            t_max[axis] = (boundary - start[axis]) / d
            t_delta[axis] = -resolution / d

    count = 1
    # Traverse until we reach the end voxel or pass t = 1 (the end point).
    while True:
        axis = t_max.index(min(t_max))
        if t_max[axis] > 1.0 + _EPS:
            return
        current[axis] += step[axis]
        t_max[axis] += t_delta[axis]
        key = (current[0], current[1], current[2])
        yield key
        count += 1
        if key == last:
            return
        if max_voxels is not None and count >= max_voxels:
            return


def sample_ray(start: Vec3, end: Vec3, step: float) -> List[Vec3]:
    """Sample points along a segment at a fixed step, always including the end.

    This is the approximate ray cast whose ``step`` is controlled by the
    OctoMap and planning precision operators: a larger step visits fewer
    sample points (cheaper, coarser) while a smaller step approaches the
    exact traversal.
    """
    if step <= 0:
        raise ValueError("sampling step must be positive")
    direction = end - start
    length = direction.norm()
    if length <= _EPS:
        return [start]
    unit = direction / length
    points: List[Vec3] = []
    t = 0.0
    while t < length:
        points.append(start + unit * t)
        t += step
    points.append(end)
    return points
