"""Pure-pursuit trajectory following.

The mission simulator advances flight in small control steps between
decisions.  Tracking the smoother's trajectory purely by timestamp is brittle
when the runtime's velocity cap differs from the speed the trajectory was
timed at (the reference runs away or lags), so the simulator uses a
pure-pursuit follower instead: aim at a look-ahead point along the path and
fly towards it at the currently allowed velocity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.vec3 import Vec3
from repro.planning.trajectory import Trajectory


@dataclass
class PurePursuitFollower:
    """Follows a trajectory's geometric path at a commanded speed.

    Attributes:
        lookahead: distance along the path, in metres, of the pursuit target.
        goal_slowdown_radius: within this distance of the path's end the
            commanded speed tapers linearly so the drone settles on the goal.
    """

    lookahead: float = 3.0
    goal_slowdown_radius: float = 8.0

    def __post_init__(self) -> None:
        if self.lookahead <= 0:
            raise ValueError("lookahead must be positive")
        if self.goal_slowdown_radius <= 0:
            raise ValueError("goal slowdown radius must be positive")

    def velocity_command(
        self, trajectory: Trajectory, position: Vec3, speed: float
    ) -> Vec3:
        """Commanded velocity towards the look-ahead point.

        Args:
            trajectory: the path being followed.
            position: current drone position.
            speed: allowed speed (the runtime's velocity cap), m/s.

        Returns:
            The commanded velocity; zero when already at the path's end.
        """
        if speed < 0:
            raise ValueError("speed cannot be negative")
        target = self._lookahead_point(trajectory, position)
        to_target = target - position
        distance = to_target.norm()
        if distance < 1e-6:
            return Vec3.zero()

        goal_distance = position.distance_to(trajectory.goal)
        commanded_speed = speed
        if goal_distance < self.goal_slowdown_radius:
            commanded_speed = speed * max(goal_distance / self.goal_slowdown_radius, 0.1)
        return to_target * (commanded_speed / distance)

    def _lookahead_point(self, trajectory: Trajectory, position: Vec3) -> Vec3:
        """The point on the path roughly ``lookahead`` metres past the nearest sample."""
        points = trajectory.waypoint_positions()
        if len(points) == 1:
            return points[0]
        # Find the nearest sample, then walk forward along the path.
        nearest_index = min(
            range(len(points)), key=lambda i: points[i].distance_to(position)
        )
        remaining = self.lookahead
        index = nearest_index
        while index < len(points) - 1 and remaining > 0:
            segment = points[index + 1] - points[index]
            length = segment.norm()
            if length >= remaining and length > 0:
                return points[index] + segment * (remaining / length)
            remaining -= length
            index += 1
        return points[-1]
