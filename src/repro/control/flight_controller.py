"""The flight controller.

Tracks a time-parameterised trajectory by combining its feed-forward velocity
with a PID correction on position error, and clamps the command to the
velocity cap currently allowed by the runtime (the governor lowers the cap
when decisions are slow, raising it again when latency shrinks — that is how
compute latency turns into flight velocity in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.control.pid import PIDGains, Vec3PID
from repro.geometry.vec3 import Vec3
from repro.planning.trajectory import Trajectory


@dataclass
class FlightController:
    """Cascaded feed-forward + PID trajectory-tracking controller.

    Attributes:
        position_gains: PID gains on position error (output is a velocity
            correction).
        max_velocity: hard velocity limit applied to the commanded velocity,
            m/s; the runtime updates this every decision.
    """

    position_gains: PIDGains = PIDGains(kp=1.2, ki=0.0, kd=0.1)
    max_velocity: float = 2.5

    def __post_init__(self) -> None:
        if self.max_velocity <= 0:
            raise ValueError("max velocity must be positive")
        self._pid = Vec3PID(self.position_gains, output_limit=self.max_velocity)

    def reset(self) -> None:
        """Clear the PID state (called when a new trajectory is adopted)."""
        self._pid.reset()

    def set_velocity_limit(self, max_velocity: float) -> None:
        """Update the velocity cap (the runtime's safe-velocity decision)."""
        if max_velocity <= 0:
            raise ValueError("max velocity must be positive")
        self.max_velocity = max_velocity

    def velocity_command(
        self,
        trajectory: Trajectory,
        position: Vec3,
        time: float,
        dt: float,
    ) -> Vec3:
        """Compute the commanded velocity for the current control step.

        Args:
            trajectory: the trajectory being tracked.
            position: current drone position.
            time: current simulated time.
            dt: control period in seconds.

        Returns:
            The commanded velocity, clamped to the current velocity limit.
        """
        reference = trajectory.sample(time)
        feed_forward = reference.velocity
        correction = self._pid.update(reference.position - position, dt)
        command = feed_forward + correction
        speed = command.norm()
        if speed > self.max_velocity and speed > 0.0:
            command = command * (self.max_velocity / speed)
        return command

    def hover_command(self) -> Vec3:
        """The command used while waiting for a decision (zero velocity)."""
        return Vec3.zero()
