"""Control: trajectory tracking.

"Control ensures that the MAV closely follows the generated trajectory while
guaranteeing stability.  We use standard PID control" (§III-A).  Control is
not a RoboRun knob — neither precision nor volume operators touch it — so the
reproduction provides a straightforward cascaded PID position/velocity
controller adequate for tracking the smoother's trajectories on the kinematic
drone model.
"""

from repro.control.flight_controller import FlightController
from repro.control.follower import PurePursuitFollower
from repro.control.pid import PIDController, PIDGains, Vec3PID

__all__ = [
    "FlightController",
    "PIDController",
    "PIDGains",
    "PurePursuitFollower",
    "Vec3PID",
]
