"""PID controllers.

A scalar PID with clamped output and anti-windup, plus a three-axis wrapper
used by the flight controller to track position errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class PIDGains:
    """Proportional, integral and derivative gains."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be non-negative")


class PIDController:
    """A scalar PID controller with output clamping and integral anti-windup."""

    def __init__(
        self,
        gains: PIDGains,
        output_limit: Optional[float] = None,
        integral_limit: Optional[float] = None,
    ) -> None:
        if output_limit is not None and output_limit <= 0:
            raise ValueError("output limit must be positive")
        if integral_limit is not None and integral_limit <= 0:
            raise ValueError("integral limit must be positive")
        self.gains = gains
        self.output_limit = output_limit
        self.integral_limit = integral_limit
        self._integral = 0.0
        self._previous_error: Optional[float] = None

    def reset(self) -> None:
        """Clear the accumulated integral and derivative history."""
        self._integral = 0.0
        self._previous_error = None

    def update(self, error: float, dt: float) -> float:
        """Advance the controller by one step.

        Args:
            error: setpoint minus measurement.
            dt: time step in seconds; must be positive.

        Returns:
            The clamped control output.
        """
        if dt <= 0:
            raise ValueError("PID time step must be positive")
        self._integral += error * dt
        if self.integral_limit is not None:
            self._integral = max(-self.integral_limit, min(self.integral_limit, self._integral))
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error

        output = (
            self.gains.kp * error
            + self.gains.ki * self._integral
            + self.gains.kd * derivative
        )
        if self.output_limit is not None:
            output = max(-self.output_limit, min(self.output_limit, output))
        return output

    @property
    def integral(self) -> float:
        """The accumulated (clamped) integral term."""
        return self._integral


class Vec3PID:
    """Three independent scalar PIDs, one per axis."""

    def __init__(
        self,
        gains: PIDGains,
        output_limit: Optional[float] = None,
        integral_limit: Optional[float] = None,
    ) -> None:
        self._axes = [
            PIDController(gains, output_limit, integral_limit) for _ in range(3)
        ]

    def reset(self) -> None:
        """Reset every axis controller."""
        for axis in self._axes:
            axis.reset()

    def update(self, error: Vec3, dt: float) -> Vec3:
        """Advance all three axes and return the control output vector."""
        return Vec3(
            self._axes[0].update(error.x, dt),
            self._axes[1].update(error.y, dt),
            self._axes[2].update(error.z, dt),
        )
