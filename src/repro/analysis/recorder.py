"""The trace recorder: a passive tap on the decision pipeline's topics.

:class:`TraceRecorder` subscribes to the pipeline's bus topics — the scan,
profile, governor decision, planning output and flight result — and folds
each decision's messages into one :class:`~repro.analysis.trace.
DecisionRecord` when the cascade's final message (the flight result) is
delivered.  It is an ordinary subscriber: it adds no nodes, publishes
nothing, and changes no dispatch ordering, so a traced mission is
bit-identical to an untraced one.  When no recorder is attached the
pipeline carries zero tracing overhead — there is nothing to skip, because
the tap simply is not subscribed.

Records can be kept in memory (``keep_records=True``, the default), streamed
to a :class:`~repro.analysis.io.TraceWriter`, or both.  Campaign workers use
the streaming path so multi-thousand-mission campaigns never hold a
campaign's traces in memory at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.trace import DecisionRecord, MissionRecord, jsonify
from repro.middleware.latency import compute_seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.io import TraceWriter
    from repro.dynamics.energy import EnergyModel
    from repro.simulation.metrics import MissionMetrics
    from repro.simulation.pipeline import DecisionPipeline


class TraceRecorder:
    """Assembles one :class:`DecisionRecord` per decision from the bus traffic.

    Attributes:
        writer: optional streaming sink; every record is appended as soon as
            it is complete.
        spec: the owning scenario spec (a ``ScenarioSpec`` or its plain-dict
            form), used to stamp identity and environment knobs into the
            records; ``None`` for ad-hoc missions.
        keep_records: keep completed records in :attr:`records` /
            :attr:`mission_record` (disable for campaign-scale streaming).
        records: completed decision records, in decision order.
        mission_record: the final mission summary, set by
            :meth:`on_mission_end`.
    """

    def __init__(
        self,
        writer: Optional["TraceWriter"] = None,
        spec: Optional[Any] = None,
        keep_records: bool = True,
    ) -> None:
        self.writer = writer
        self.keep_records = keep_records
        self.records: List[DecisionRecord] = []
        self.mission_record: Optional[MissionRecord] = None
        self._spec: Optional[Any] = None
        self._spec_dict: Optional[Dict[str, Any]] = None
        self.spec = spec
        self._pipeline: Optional["DecisionPipeline"] = None
        self._attached: List["DecisionPipeline"] = []
        self._energy_model: Optional["EnergyModel"] = None
        # Per-decision message state, keyed by (drone id, decision index) so
        # one recorder can tap every pipeline of a fleet without crosstalk.
        self._dropped: Dict[tuple, bool] = {}
        self._profiles: Dict[tuple, Any] = {}
        self._decisions: Dict[tuple, Any] = {}
        self._plannings: Dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Spec context
    # ------------------------------------------------------------------
    @property
    def spec(self) -> Optional[Any]:
        """The owning scenario spec, in whatever form it was supplied."""
        return self._spec

    @spec.setter
    def spec(self, value: Optional[Any]) -> None:
        # Normalise once at assignment: spec_name is read on every decision,
        # so the JSON round-trip must not sit on the recording hot path.
        self._spec = value
        if value is None:
            self._spec_dict = None
        elif hasattr(value, "to_dict"):
            self._spec_dict = jsonify(value.to_dict())
        else:
            self._spec_dict = jsonify(dict(value))

    @property
    def spec_dict(self) -> Optional[Dict[str, Any]]:
        """The spec as plain JSON-shaped data (cached at assignment)."""
        return self._spec_dict

    @property
    def spec_name(self) -> str:
        """The owning scenario's name ("" for ad-hoc missions)."""
        return self._spec_dict["name"] if self._spec_dict else ""

    # ------------------------------------------------------------------
    # Pipeline tap
    # ------------------------------------------------------------------
    def attach(
        self,
        pipeline: "DecisionPipeline",
        energy_model: Optional["EnergyModel"] = None,
    ) -> None:
        """Subscribe to the pipeline's topics (the record hook point).

        Called by :meth:`DecisionPipeline.add_tap` /
        :meth:`MissionSimulator.run`.  A fleet mission attaches one recorder
        to every drone's pipeline: the subscriptions resolve through each
        pipeline's own topic bundle, so the per-namespace streams never mix.
        Attaching the *same* pipeline twice would double-record it and is
        rejected.
        """
        if any(existing is pipeline for existing in self._attached):
            raise ValueError("recorder is already attached to this pipeline")
        if self._pipeline is None:
            self._pipeline = pipeline
        self._attached.append(pipeline)
        self._energy_model = energy_model
        topics = pipeline.topics
        executor = pipeline.executor
        drone = pipeline.drone_id
        executor.subscribe(topics.scan, lambda m, d=drone: self._on_scan(d, m))
        executor.subscribe(topics.profile, lambda m, d=drone: self._on_profile(d, m))
        executor.subscribe(
            topics.decision, lambda m, d=drone: self._on_decision(d, m)
        )
        executor.subscribe(
            topics.planning, lambda m, d=drone: self._on_planning(d, m)
        )
        executor.subscribe(
            topics.flight, lambda m, p=pipeline: self._on_flight(p, m)
        )

    # -- per-topic subscribers ------------------------------------------
    def _on_scan(self, drone: int, message: Any) -> None:
        self._dropped[(drone, message.payload.index)] = message.payload.dropped

    def _on_profile(self, drone: int, message: Any) -> None:
        self._profiles[(drone, message.payload.index)] = message.payload.profile

    def _on_decision(self, drone: int, message: Any) -> None:
        self._decisions[(drone, message.payload.index)] = message.payload.decision

    def _on_planning(self, drone: int, message: Any) -> None:
        self._plannings[(drone, message.payload.index)] = message.payload

    def _on_flight(self, pipeline: "DecisionPipeline", message: Any) -> None:
        """Final hop of the cascade: fold the decision's messages into a record."""
        result = message.payload
        index = result.index
        key = (pipeline.drone_id, index)
        profile = self._profiles.pop(key)
        decision = self._decisions.pop(key)
        planning = self._plannings.pop(key)
        dropped = self._dropped.pop(key, False)

        stage_latencies = pipeline.ledger.stages_for(index)
        busy = compute_seconds(stage_latencies)
        interval = result.interval
        mean_speed = result.flown / interval if interval > 0 else 0.0
        energy = 0.0
        if self._energy_model is not None:
            energy = self._energy_model.mission_energy(
                flight_time_s=interval,
                mean_speed=mean_speed,
                compute_busy_s=busy,
            )

        position = profile.position
        environment = pipeline.environment
        zone = environment.zone_map.zone_at(position).name
        octree = pipeline.flight.operators.octree
        # Worlds-layer context: the archetype name and the interpolated local
        # difficulty (one lerp against the precomputed heterogeneity field;
        # 0.0 for environments built without one).
        archetype = getattr(environment, "archetype", "") or ""
        if hasattr(environment, "difficulty_at"):
            difficulty = float(environment.difficulty_at(position))
        else:  # pragma: no cover - stub environments in tests
            difficulty = 0.0
        # Fault tags: which registered faults' windows covered this decision
        # (empty — and omitted from the serialised line — when none did).
        orchestrator = getattr(pipeline, "orchestrator", None)
        active_faults: tuple = ()
        if orchestrator is not None and orchestrator.enabled:
            active_faults = orchestrator.active_fault_names(index)
        record = DecisionRecord(
            spec_name=self.spec_name,
            design=pipeline.governor.runtime.name,
            index=index,
            timestamp=pipeline.clock.now,
            position=(position.x, position.y, position.z),
            zone=zone,
            speed=profile.velocity,
            velocity_cap=decision.velocity_cap,
            time_budget=decision.time_budget,
            predicted_latency=decision.predicted_latency,
            solver_feasible=decision.solver_feasible,
            policy=decision.policy.as_dict(),
            stage_latencies=stage_latencies,
            end_to_end_latency=result.end_to_end,
            visibility=profile.visibility,
            closest_obstacle=profile.closest_obstacle,
            gap_min=profile.gap_min,
            gap_avg=profile.gap_avg,
            sensor_volume=profile.sensor_volume,
            map_volume=profile.map_volume,
            map_voxels=octree.occupied_voxel_count(),
            flown=result.flown,
            interval=interval,
            energy=energy,
            replanned=planning.replanned,
            dropped=dropped,
            hit=result.hit,
            archetype=archetype,
            difficulty=difficulty,
            drone_id=pipeline.drone_id,
            faults=active_faults,
        )
        self._emit(record)

    # ------------------------------------------------------------------
    # Mission end
    # ------------------------------------------------------------------
    def on_mission_end(
        self,
        metrics: "MissionMetrics",
        fleet: Optional[Dict[str, Any]] = None,
        drones: Optional[List[Dict[str, Any]]] = None,
    ) -> MissionRecord:
        """Emit the mission summary record once the mission loop finishes.

        Fleet missions pass the fleet-level aggregate (``fleet``) and the
        per-drone metric dictionaries (``drones``); single-drone missions
        leave both ``None`` and the record serialises exactly as before.
        """
        spec = self.spec_dict
        pipeline = self._pipeline
        design = metrics.design
        seed = 0
        environment: Dict[str, Any] = {}
        if spec is not None:
            environment = dict(spec.get("environment", {}))
            seed = int(environment.get("seed", 0))
        elif pipeline is not None:
            seed = int(pipeline.planning.config.rng_seed)
        record = MissionRecord(
            spec_name=self.spec_name,
            design=design,
            seed=seed,
            environment=environment,
            metrics=metrics.as_dict(),
            error=None,
            spec=spec,
            fleet=dict(fleet) if fleet else None,
            drones=[dict(d) for d in drones] if drones else None,
        )
        self.mission_record = record if self.keep_records else None
        self._emit(record, keep=False)
        return record

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _emit(self, record: Any, keep: bool = True) -> None:
        if keep and self.keep_records:
            self.records.append(record)
        if self.writer is not None:
            self.writer.write(record)

    def close(self) -> None:
        """Close the streaming writer, if any (idempotent)."""
        if self.writer is not None:
            self.writer.close()
