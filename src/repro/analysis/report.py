"""Campaign reports: fold trace records into a self-contained document.

:class:`CampaignReport` is the aggregation endpoint of the analysis
subsystem: it takes the records of one campaign — from memory, from a
:class:`~repro.simulation.campaign.CampaignResult`, or from saved JSONL
trace files — and derives the paper's figure tables (Figures 2, 5, 7 and 8)
plus a per-mission summary and a partial-failure section.  The markdown
emitter produces a report that stands alone: everything in it came from the
trace records, so re-rendering a report never requires re-flying a mission.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.analysis.figures import (
    FIG8_KNOBS,
    FigureTable,
    archetype_comparison,
    fault_robustness,
    fig2_latency_deadline,
    fig5_governor_response,
    fig7_overall,
    fig8_sensitivity,
    fleet_scaling,
    ok_missions,
)
from repro.analysis.io import list_trace_files, read_traces
from repro.analysis.trace import DecisionRecord, MissionRecord, jsonify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.campaign import CampaignResult

PathLike = Union[str, Path]


class CampaignReport:
    """All of one campaign's records, with the paper's figures derived on demand.

    Attributes:
        decisions: every decision record of the campaign, in spec order.
        missions: one mission record per spec (including error records for
            specs that failed).
        heartbeats: optional campaign-telemetry heartbeat records
            (:class:`~repro.obs.heartbeat.HeartbeatRecord`); when present
            the report grows a runtime/instrumentation table.
    """

    def __init__(
        self,
        decisions: Sequence[DecisionRecord] = (),
        missions: Sequence[MissionRecord] = (),
        heartbeats: Sequence[Any] = (),
    ) -> None:
        self.decisions: List[DecisionRecord] = list(decisions)
        self.missions: List[MissionRecord] = list(missions)
        self.heartbeats: List[Any] = list(heartbeats)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls, paths: Sequence[PathLike], heartbeats: Sequence[Any] = ()
    ) -> "CampaignReport":
        """Build a report from saved JSONL trace files, in the given order."""
        decisions, missions = read_traces(paths)
        return cls(decisions, missions, heartbeats=heartbeats)

    @classmethod
    def from_trace_dir(cls, directory: PathLike) -> "CampaignReport":
        """Build a report from every ``*.jsonl`` file under a directory.

        When the campaign was run with telemetry into the conventional
        location (``<trace_dir>/telemetry/heartbeats.jsonl``), the
        heartbeats are picked up automatically and the report includes the
        runtime table.
        """
        paths = list_trace_files(directory)
        if not paths:
            raise FileNotFoundError(f"no trace files (*.jsonl) under {directory}")
        from repro.obs.heartbeat import HEARTBEAT_FILE, read_heartbeats

        heartbeats = read_heartbeats(
            Path(directory) / "telemetry" / HEARTBEAT_FILE
        )
        return cls.from_paths(paths, heartbeats=heartbeats)

    @classmethod
    def from_campaign(cls, campaign: "CampaignResult") -> "CampaignReport":
        """Build a mission-level report straight from a campaign's outcomes.

        Mission records come from each outcome's spec and metrics, which is
        enough for the Figure 7/8 tables and the failure section; no
        decision records are recovered, so :meth:`fig2` and :meth:`fig5`
        come out empty.  Campaigns run with a ``trace_dir`` should prefer
        :meth:`from_trace_dir`, which reads the complete record stream.
        """
        missions: List[MissionRecord] = []
        for outcome in campaign.outcomes:
            spec = outcome.spec
            spec_dict = jsonify(spec.to_dict())
            missions.append(
                MissionRecord(
                    spec_name=spec.name,
                    design=spec.design,
                    seed=spec.seed,
                    environment=dict(spec_dict["environment"]),
                    metrics=dict(outcome.metrics) if outcome.metrics else {},
                    error=dict(outcome.error) if outcome.error else None,
                    spec=spec_dict,
                )
            )
        return cls(decisions=[], missions=missions)

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def _completed_decisions(self) -> List[DecisionRecord]:
        """Decision records excluding those of specs that failed to run.

        A crashed spec may have streamed partial decision records before its
        error record; the figure tables aggregate completed missions only,
        matching what the partial-failures section promises.
        """
        failed = {m.spec_name for m in self.missions if not m.ok}
        if not failed:
            return self.decisions
        return [d for d in self.decisions if d.spec_name not in failed]

    def fig2(self) -> FigureTable:
        """Figure 2 table (latency vs. deadline) from the decision records."""
        return fig2_latency_deadline(self._completed_decisions())

    def fig5(self) -> FigureTable:
        """Figure 5 table (governor response) from the decision records."""
        return fig5_governor_response(self._completed_decisions())

    def fig7(self) -> FigureTable:
        """Figure 7 table (mission-level comparison) from the mission records."""
        return fig7_overall(self.missions)

    def fig8(self, knobs: Sequence[str] = FIG8_KNOBS) -> List[FigureTable]:
        """One Figure 8 table per environment knob (always emitted, even when
        a knob was not swept — the ratio column then reads ``n/a``)."""
        return [fig8_sensitivity(self.missions, knob) for knob in knobs]

    def archetypes(self) -> FigureTable:
        """Per-archetype governor-vs-baseline table from the mission records."""
        return archetype_comparison(self.missions)

    def fleet(self) -> FigureTable:
        """Fleet-scaling table (governor vs. baseline per fleet size)."""
        return fleet_scaling(self.missions)

    def fault_robustness(self) -> FigureTable:
        """Fault-robustness table (governor vs. baseline per injected fault)."""
        return fault_robustness(self.missions)

    def tables(self) -> List[FigureTable]:
        """Every figure table of the report: paper order, then the
        per-archetype comparison, the fleet-scaling table and the
        fault-robustness table."""
        return [self.fig2(), self.fig5(), self.fig7()] + self.fig8() + [
            self.archetypes(),
            self.fleet(),
            self.fault_robustness(),
        ]

    def failures(self) -> List[MissionRecord]:
        """Mission records of specs that errored instead of flying."""
        return [m for m in self.missions if not m.ok]

    def mission_table(self) -> FigureTable:
        """Per-mission summary: one row per spec, errors flagged."""
        rows: List[List[Any]] = []
        for mission in self.missions:
            if mission.ok:
                rows.append(
                    [
                        mission.spec_name,
                        mission.design,
                        mission.seed,
                        "yes" if mission.success else "no",
                        round(mission.metrics.get("mission_time_s", 0.0), 1),
                        round(mission.metrics.get("mean_velocity_mps", 0.0), 2),
                        int(mission.metrics.get("decision_count", 0)),
                        "",
                    ]
                )
            else:
                error = mission.error or {}
                rows.append(
                    [
                        mission.spec_name,
                        mission.design,
                        mission.seed,
                        "ERROR",
                        "-",
                        "-",
                        "-",
                        f"{error.get('type', '?')}: {error.get('message', '')}",
                    ]
                )
        return FigureTable(
            key="missions",
            title="Missions",
            columns=[
                "spec",
                "design",
                "seed",
                "success",
                "time_s",
                "velocity_mps",
                "decisions",
                "error",
            ],
            rows=rows,
        )

    def runtime_table(self) -> FigureTable:
        """Runtime/instrumentation table from the campaign heartbeats.

        One row per spec: final status, wall-clock time, decision cascades
        completed, decisions per wall-clock second and the worker's peak
        RSS — the observability layer's view of the campaign, empty when it
        ran without telemetry.
        """
        from repro.obs.heartbeat import runtime_summary

        summary = runtime_summary(self.heartbeats)
        rows: List[List[Any]] = []
        for spec_name in sorted(summary):
            entry = summary[spec_name]
            rows.append(
                [
                    spec_name,
                    entry["status"],
                    round(entry["wall_time_s"], 3),
                    entry["decisions"],
                    round(entry["decisions_per_sec"], 1),
                    round(entry["peak_rss_mb"], 1),
                ]
            )
        return FigureTable(
            key="runtime",
            title="Runtime (campaign telemetry)",
            columns=[
                "spec",
                "status",
                "wall_time_s",
                "decisions",
                "decisions_per_sec",
                "peak_rss_mb",
            ],
            rows=rows,
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def to_markdown(self, title: str = "Campaign report") -> str:
        """The full self-contained markdown report."""
        flown = ok_missions(self.missions)
        failures = self.failures()
        lines: List[str] = [f"# {title}", ""]
        lines.append(
            f"{len(self.missions)} spec(s): {len(flown)} flew "
            f"({sum(1 for m in flown if m.success)} reached the goal), "
            f"{len(failures)} failed to run. "
            f"{len(self.decisions)} decision record(s) aggregated."
        )
        lines.append("")
        lines.append("## Missions")
        lines.append("")
        lines.append(self.mission_table().to_markdown())
        lines.append("")
        runtime = self.runtime_table()
        if runtime.rows:
            lines.append(f"## {runtime.title}")
            lines.append("")
            lines.append(runtime.to_markdown())
            lines.append("")
        if failures:
            lines.append("## Partial failures")
            lines.append("")
            lines.append(
                "These specs raised instead of flying; the rest of the report "
                "aggregates the missions that completed."
            )
            lines.append("")
            for mission in failures:
                error = mission.error or {}
                lines.append(f"### `{mission.spec_name}`")
                lines.append("")
                lines.append(f"- error: `{error.get('type', '?')}: {error.get('message', '')}`")
                spec_json = error.get("spec_json")
                if spec_json:
                    lines.append("- spec:")
                    lines.append("")
                    lines.append("```json")
                    lines.append(spec_json)
                    lines.append("```")
                lines.append("")
        for table in self.tables():
            lines.append(f"## {table.title}")
            lines.append("")
            if table.rows:
                lines.append(table.to_markdown())
            else:
                lines.append(
                    "_No records to aggregate (decision traces are required "
                    "for Figures 2 and 5)._"
                )
            lines.append("")
        return "\n".join(lines)

    def write_markdown(
        self, path: PathLike, title: str = "Campaign report"
    ) -> Path:
        """Write :meth:`to_markdown` to ``path``, creating parent directories."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(self.to_markdown(title), encoding="utf-8")
        return destination

    def write_csvs(self, directory: PathLike) -> List[Path]:
        """Write one ``<key>.csv`` per figure table; returns the paths."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        tables = [self.mission_table()] + self.tables()
        runtime = self.runtime_table()
        if runtime.rows:
            tables.insert(1, runtime)
        for table in tables:
            path = base / f"{table.key}.csv"
            path.write_text(table.to_csv(), encoding="utf-8")
            written.append(path)
        return written
