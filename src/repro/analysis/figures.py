"""Figure aggregators: fold trace records into the paper's tables.

Each ``fig*`` function reproduces one of the paper's headline figures as a
plain :class:`FigureTable` — no plotting dependency, just columns and rows
with CSV and markdown emitters — so the same aggregation backs the
benchmark suite, the campaign report CLI and any notebook that reads a
trace file.

Two families live here:

* **Trace aggregators** (:func:`fig2_latency_deadline`,
  :func:`fig5_governor_response`, :func:`fig7_overall`,
  :func:`fig8_sensitivity`) fold streams of
  :class:`~repro.analysis.trace.DecisionRecord` /
  :class:`~repro.analysis.trace.MissionRecord` — everything they need is in
  the records, so saved traces reproduce the figures without re-flying
  anything.
* **Model tables** (:func:`fig2a_model_table`, :func:`fig2b_model_table`,
  :func:`fig5_model_table`) are the analytical sweeps of the latency model
  and the time budgeter that Figures 2 and 5 plot directly; the
  ``benchmarks/test_fig*`` harness asserts their shape.
"""

from __future__ import annotations

import csv
import io as _io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.trace import DecisionRecord, MissionRecord

# The two designs of the paper's A/B comparison, in table order.
BASELINE_DESIGN = "spatial_oblivious"
ROBORUN_DESIGN = "roborun"

# Default analytical sweep points (the paper's Figure 2 axes).
FIG2_PRECISIONS_M: Sequence[float] = (0.3, 0.6, 1.2, 2.4, 4.8, 9.6)
FIG2_VOLUMES_M3: Sequence[float] = (10_000.0, 20_000.0, 40_000.0, 60_000.0)
FIG2_SPEEDS_MPS: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
FIG2_VISIBILITIES_M: Sequence[float] = (5.0, 10.0, 20.0, 40.0)


@dataclass
class FigureTable:
    """One figure rendered as a plain table.

    Attributes:
        key: short identifier ("fig2", "fig5", "fig7", "fig8_density", …)
            used for CSV file names and report anchors.
        title: human-readable caption.
        columns: column headers, left to right.
        rows: data rows; cells are strings or numbers.
        meta: aggregator extras (e.g. the fig8 flight-time ratios) that do
            not belong in the rendered table.
    """

    key: str
    title: str
    columns: List[str]
    rows: List[List[Any]]
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_rows(self) -> List[List[Any]]:
        """Header row plus data rows (the benchmark ``print_table`` shape)."""
        return [list(self.columns)] + [list(row) for row in self.rows]

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table (without the title)."""
        lines = [
            "| " + " | ".join(str(c) for c in self.columns) + " |",
            "|" + "|".join(" --- " for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """RFC-4180 CSV text, header first."""
        buffer = _io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def design_order(designs: Sequence[str]) -> List[str]:
    """Stable table order: baseline first, RoboRun second, others sorted."""
    present = list(dict.fromkeys(designs))
    ordered = [d for d in (BASELINE_DESIGN, ROBORUN_DESIGN) if d in present]
    ordered.extend(sorted(d for d in present if d not in ordered))
    return ordered


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _bucket(value: float, width: float) -> int:
    return int(value // width)


def _bucket_label(index: int, width: float) -> str:
    return f"[{index * width:g}, {(index + 1) * width:g})"


def ok_missions(missions: Sequence[MissionRecord]) -> List[MissionRecord]:
    """The missions that actually ran (error records filtered out)."""
    return [m for m in missions if m.ok]


# ----------------------------------------------------------------------
# Figure 2 — latency vs. deadline
# ----------------------------------------------------------------------
def fig2_latency_deadline(
    decisions: Sequence[DecisionRecord], speed_bin_mps: float = 0.5
) -> FigureTable:
    """Figure 2 from traces: decision latency and deadline binned by speed.

    The analytical Figure 2 plots the latency model and the Eq. 1 deadline
    against their inputs; the trace form shows the same two quantities as
    the missions actually experienced them — per design, binned by flight
    speed (the deadline's dominant input), with the fraction of decisions
    that met their deadline.
    """
    groups: Dict[Tuple[str, int], List[DecisionRecord]] = {}
    for record in decisions:
        groups.setdefault((record.design, _bucket(record.speed, speed_bin_mps)), []).append(
            record
        )
    rows: List[List[Any]] = []
    for design in design_order([d for d, _ in groups]):
        buckets = sorted(b for d, b in groups if d == design)
        for bucket in buckets:
            members = groups[(design, bucket)]
            rows.append(
                [
                    design,
                    _bucket_label(bucket, speed_bin_mps),
                    len(members),
                    round(_mean([m.time_budget for m in members]), 3),
                    round(_mean([m.end_to_end_latency for m in members]), 3),
                    round(
                        sum(1 for m in members if m.deadline_met) / len(members), 3
                    ),
                ]
            )
    return FigureTable(
        key="fig2",
        title="Figure 2: decision latency vs. deadline, binned by flight speed",
        columns=[
            "design",
            "speed_bin_mps",
            "decisions",
            "mean_deadline_s",
            "mean_latency_s",
            "deadline_met_rate",
        ],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 5 — governor response to congestion
# ----------------------------------------------------------------------
def fig5_governor_response(
    decisions: Sequence[DecisionRecord], visibility_bin_m: float = 5.0
) -> FigureTable:
    """Figure 5 from traces: latency and deadline per design vs. congestion.

    Visibility is the congestion proxy (tight clutter → short look-ahead):
    the static design's latency and deadline stay flat across the bins while
    the spatial-aware design's track the available space — the paper's
    static-vs-dynamic comparison, recovered entirely from trace records.
    """
    designs = design_order([r.design for r in decisions])
    groups: Dict[Tuple[str, int], List[DecisionRecord]] = {}
    for record in decisions:
        groups.setdefault(
            (record.design, _bucket(record.visibility, visibility_bin_m)), []
        ).append(record)
    buckets = sorted({b for _, b in groups})
    columns = ["visibility_bin_m", "decisions"]
    for design in designs:
        columns.extend([f"{design}_latency_s", f"{design}_deadline_s"])
    rows: List[List[Any]] = []
    for bucket in buckets:
        row: List[Any] = [
            _bucket_label(bucket, visibility_bin_m),
            sum(len(groups.get((d, bucket), [])) for d in designs),
        ]
        for design in designs:
            members = groups.get((design, bucket), [])
            if members:
                row.append(round(_mean([m.end_to_end_latency for m in members]), 3))
                row.append(round(_mean([m.time_budget for m in members]), 3))
            else:
                row.extend(["-", "-"])
        rows.append(row)
    return FigureTable(
        key="fig5",
        title="Figure 5: governor response — latency and deadline vs. visibility",
        columns=columns,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 7 — overall mission-level comparison
# ----------------------------------------------------------------------
#: (row label, metrics key, decimals) for the four Figure 7 quantities.
_FIG7_METRICS: Sequence[Tuple[str, str, int]] = (
    ("flight velocity (m/s)", "mean_velocity_mps", 3),
    ("mission time (s)", "mission_time_s", 1),
    ("mission energy (kJ)", "energy_kj", 1),
    ("CPU utilization", "mean_cpu_utilization", 3),
)


def fig7_overall(missions: Sequence[MissionRecord]) -> FigureTable:
    """Figure 7 from traces: per-design mission metrics with improvements.

    Means are taken over every completed mission of each design; the
    improvement column reproduces the paper's headline ratios (velocity
    ratio, time/energy speedups, relative CPU-utilisation reduction) and is
    present only when both designs of the A/B pair flew.
    """
    usable = ok_missions(missions)
    designs = design_order([m.design for m in usable])
    by_design = {
        design: [m for m in usable if m.design == design] for design in designs
    }
    means: Dict[str, Dict[str, float]] = {
        design: {
            key: _mean([m.metrics[key] for m in group])
            for _, key, _ in _FIG7_METRICS
        }
        for design, group in by_design.items()
    }
    have_pair = BASELINE_DESIGN in means and ROBORUN_DESIGN in means
    columns = ["metric"] + designs + (["improvement"] if have_pair else [])
    rows: List[List[Any]] = []
    rows.append(
        ["missions"]
        + [len(by_design[d]) for d in designs]
        + ([""] if have_pair else [])
    )
    for label, key, decimals in _FIG7_METRICS:
        row: List[Any] = [label]
        for design in designs:
            row.append(round(means[design][key], decimals))
        if have_pair:
            base = means[BASELINE_DESIGN][key]
            robo = means[ROBORUN_DESIGN][key]
            if key == "mean_velocity_mps":
                improvement = round(robo / max(base, 1e-9), 2)
            elif key == "mean_cpu_utilization":
                improvement = round((base - robo) / max(base, 1e-9), 3)
            else:  # time and energy: how many times cheaper RoboRun is
                improvement = round(base / robo, 2) if robo > 0 else float("inf")
            row.append(improvement)
        rows.append(row)
    return FigureTable(
        key="fig7",
        title="Figure 7: mission-level metrics per design",
        columns=columns,
        rows=rows,
        meta={"means": means},
    )


# ----------------------------------------------------------------------
# Figure 8 — sensitivity to the environment knobs
# ----------------------------------------------------------------------
#: The environment difficulty knobs of the Figure 8 sweep.
FIG8_KNOBS: Sequence[str] = (
    "obstacle_density",
    "obstacle_spread",
    "goal_distance",
)


def fig8_sensitivity(
    missions: Sequence[MissionRecord], knob: str
) -> FigureTable:
    """Figure 8 from traces: flight-time sensitivity to one environment knob.

    Groups completed missions by design and knob value (read from each
    record's environment), reports the mean mission time at every value and
    the flight-time ratio between the largest and smallest value — the
    quantity Figures 8b–8d plot.  ``meta["ratios"]`` maps each design to its
    ratio (``None`` when fewer than two knob values flew).
    """
    usable = [m for m in ok_missions(missions) if m.knob(knob) is not None]
    designs = design_order([m.design for m in usable])
    values = sorted({m.knob(knob) for m in usable})
    columns = ["design"] + [f"{knob}={v:g}" for v in values] + ["flight_time_ratio"]
    rows: List[List[Any]] = []
    ratios: Dict[str, Optional[float]] = {}
    for design in designs:
        row: List[Any] = [design]
        times: List[Optional[float]] = []
        for value in values:
            members = [
                m for m in usable if m.design == design and m.knob(knob) == value
            ]
            if members:
                mean_time = _mean([m.metrics["mission_time_s"] for m in members])
                times.append(mean_time)
                row.append(round(mean_time, 1))
            else:
                times.append(None)
                row.append("-")
        flown = [t for t in times if t is not None]
        if len(flown) >= 2 and flown[0] > 0:
            ratio: Optional[float] = flown[-1] / flown[0]
            row.append(round(ratio, 2))
        else:
            ratio = None
            row.append("n/a")
        ratios[design] = ratio
        rows.append(row)
    return FigureTable(
        key=f"fig8_{knob}",
        title=f"Figure 8: flight-time sensitivity to {knob.replace('_', ' ')}",
        columns=columns,
        rows=rows,
        meta={"ratios": ratios, "knob": knob, "values": values},
    )


# ----------------------------------------------------------------------
# Per-archetype comparison — governor vs. baseline across world shapes
# ----------------------------------------------------------------------
def archetype_comparison(missions: Sequence[MissionRecord]) -> FigureTable:
    """Governor vs. baseline, one row per world archetype.

    Groups completed missions by the archetype recorded in their spec
    (pre-worlds records count as ``paper_corridor``) and reports, per
    design, the mission count, success rate, mean mission time and mean
    velocity.  When both designs of the A/B pair flew an archetype the
    ``time_speedup`` column shows how many times faster RoboRun finished
    there — the per-shape version of the paper's headline ratio.
    ``meta["speedups"]`` maps each archetype to its ratio (``None`` when
    the pair is incomplete).
    """
    usable = ok_missions(missions)
    archetypes = sorted({m.archetype for m in usable})
    designs = design_order([m.design for m in usable])
    columns = ["archetype"]
    for design in designs:
        columns.extend(
            [
                f"{design}_missions",
                f"{design}_success_rate",
                f"{design}_time_s",
                f"{design}_velocity_mps",
            ]
        )
    columns.append("time_speedup")
    rows: List[List[Any]] = []
    speedups: Dict[str, Optional[float]] = {}
    for archetype in archetypes:
        row: List[Any] = [archetype]
        times: Dict[str, float] = {}
        for design in designs:
            members = [
                m for m in usable if m.archetype == archetype and m.design == design
            ]
            if members:
                mean_time = _mean([m.metrics["mission_time_s"] for m in members])
                times[design] = mean_time
                row.extend(
                    [
                        len(members),
                        round(sum(1 for m in members if m.success) / len(members), 3),
                        round(mean_time, 1),
                        round(
                            _mean([m.metrics["mean_velocity_mps"] for m in members]), 3
                        ),
                    ]
                )
            else:
                row.extend([0, "-", "-", "-"])
        base = times.get(BASELINE_DESIGN)
        robo = times.get(ROBORUN_DESIGN)
        if base is not None and robo is not None and robo > 0:
            speedup: Optional[float] = base / robo
            row.append(round(speedup, 2))
        else:
            speedup = None
            row.append("n/a")
        speedups[archetype] = speedup
        rows.append(row)
    return FigureTable(
        key="archetypes",
        title="Per-archetype comparison: governor vs. baseline across world archetypes",
        columns=columns,
        rows=rows,
        meta={"speedups": speedups, "archetypes": archetypes},
    )


# ----------------------------------------------------------------------
# Fleet scaling — governor vs. baseline as the fleet grows
# ----------------------------------------------------------------------
def fleet_scaling(missions: Sequence[MissionRecord]) -> FigureTable:
    """Governor vs. baseline as the fleet grows, one row per fleet size.

    Groups completed missions by the fleet size recorded on them (pre-fleet
    records count as single-drone) and reports, per design, the mission
    count, the mean per-drone completion rate, the mean makespan and the
    mean fleet energy.  Mission time for a fleet record is the makespan —
    the moment the *last* drone finished — and energy is the fleet total,
    so the columns stay comparable across sizes.  When both designs of the
    A/B pair flew a size the ``time_speedup`` column shows how many times
    faster the governor's fleet finished; ``meta["speedups"]`` maps each
    size to that ratio (``None`` when the pair is incomplete) and
    ``meta["sizes"]`` lists the sizes in row order.
    """
    usable = ok_missions(missions)
    sizes = sorted({m.n_drones for m in usable})
    designs = design_order([m.design for m in usable])
    columns = ["n_drones"]
    for design in designs:
        columns.extend(
            [
                f"{design}_missions",
                f"{design}_completion_rate",
                f"{design}_time_s",
                f"{design}_energy_kj",
            ]
        )
    columns.append("time_speedup")
    rows: List[List[Any]] = []
    speedups: Dict[int, Optional[float]] = {}
    for size in sizes:
        row: List[Any] = [size]
        times: Dict[str, float] = {}
        for design in designs:
            members = [
                m for m in usable if m.n_drones == size and m.design == design
            ]
            if members:
                mean_time = _mean([m.metrics["mission_time_s"] for m in members])
                times[design] = mean_time
                row.extend(
                    [
                        len(members),
                        round(_mean([m.completion_rate for m in members]), 3),
                        round(mean_time, 1),
                        round(_mean([m.metrics["energy_kj"] for m in members]), 1),
                    ]
                )
            else:
                row.extend([0, "-", "-", "-"])
        base = times.get(BASELINE_DESIGN)
        robo = times.get(ROBORUN_DESIGN)
        if base is not None and robo is not None and robo > 0:
            speedup: Optional[float] = base / robo
            row.append(round(speedup, 2))
        else:
            speedup = None
            row.append("n/a")
        speedups[size] = speedup
        rows.append(row)
    return FigureTable(
        key="fleet",
        title="Fleet scaling: governor vs. baseline as the fleet grows",
        columns=columns,
        rows=rows,
        meta={"speedups": speedups, "sizes": sizes},
    )


# ----------------------------------------------------------------------
# Fault robustness — governor vs. baseline under each injected fault
# ----------------------------------------------------------------------
def fault_robustness(missions: Sequence[MissionRecord]) -> FigureTable:
    """Governor vs. baseline under injected faults, one row per fault config.

    Groups completed missions by their :attr:`~repro.analysis.trace.
    MissionRecord.fault_label` — the sorted ``"+"``-joined registry names of
    the faults their spec injected, with the fault-free group labelled
    ``"none"`` and listed first as the reference row — and reports, per
    design, the mission count, the mean completion rate, the mean mission
    time, the mean energy and the mean deadline-miss rate.  When both
    designs of the A/B pair flew a fault the ``time_speedup`` column shows
    how many times faster the governor finished under it: graceful
    degradation is the governor's speedup *holding up* as the rows leave
    ``"none"``.  ``meta["speedups"]`` maps each label to its ratio
    (``None`` when the pair is incomplete) and ``meta["labels"]`` lists the
    labels in row order.
    """
    usable = ok_missions(missions)
    labels = sorted({m.fault_label for m in usable})
    # The fault-free group is the reference row; pin it to the top.
    if "none" in labels:
        labels.remove("none")
        labels.insert(0, "none")
    designs = design_order([m.design for m in usable])
    columns = ["fault"]
    for design in designs:
        columns.extend(
            [
                f"{design}_missions",
                f"{design}_completion_rate",
                f"{design}_time_s",
                f"{design}_energy_kj",
                f"{design}_deadline_miss_rate",
            ]
        )
    columns.append("time_speedup")
    rows: List[List[Any]] = []
    speedups: Dict[str, Optional[float]] = {}
    for label in labels:
        row: List[Any] = [label]
        times: Dict[str, float] = {}
        for design in designs:
            members = [
                m for m in usable if m.fault_label == label and m.design == design
            ]
            if members:
                mean_time = _mean([m.metrics["mission_time_s"] for m in members])
                times[design] = mean_time
                row.extend(
                    [
                        len(members),
                        round(_mean([m.completion_rate for m in members]), 3),
                        round(mean_time, 1),
                        round(_mean([m.metrics["energy_kj"] for m in members]), 1),
                        round(
                            _mean(
                                [
                                    m.metrics.get("deadline_miss_rate", 0.0)
                                    for m in members
                                ]
                            ),
                            3,
                        ),
                    ]
                )
            else:
                row.extend([0, "-", "-", "-", "-"])
        base = times.get(BASELINE_DESIGN)
        robo = times.get(ROBORUN_DESIGN)
        if base is not None and robo is not None and robo > 0:
            speedup: Optional[float] = base / robo
            row.append(round(speedup, 2))
        else:
            speedup = None
            row.append("n/a")
        speedups[label] = speedup
        rows.append(row)
    return FigureTable(
        key="faults",
        title="Fault robustness: governor vs. baseline under injected faults",
        columns=columns,
        rows=rows,
        meta={"speedups": speedups, "labels": labels},
    )


# ----------------------------------------------------------------------
# Analytical model tables (Figures 2 and 5 as the paper draws them)
# ----------------------------------------------------------------------
def fig2a_model_table(
    precisions: Sequence[float] = FIG2_PRECISIONS_M,
    volumes: Sequence[float] = FIG2_VOLUMES_M3,
) -> FigureTable:
    """Figure 2a: the Eq. 4 perception latency vs. volume, per precision.

    Latency in seconds; volumes in cubic metres; precision (voxel edge) in
    metres.  Latency grows with volume and with precision refinement.
    """
    from repro.compute.latency_model import DEFAULT_STAGE_MODELS, STAGE_PERCEPTION

    model = DEFAULT_STAGE_MODELS[STAGE_PERCEPTION]
    rows = [
        [p] + [round(model.latency(p, v), 4) for v in volumes] for p in precisions
    ]
    return FigureTable(
        key="fig2a_model",
        title="Figure 2a: processing latency (s) vs volume, one curve per precision",
        columns=["precision_m"] + [f"v={int(v)}" for v in volumes],
        rows=rows,
    )


def fig2b_model_table(
    speeds: Sequence[float] = FIG2_SPEEDS_MPS,
    visibilities: Sequence[float] = FIG2_VISIBILITIES_M,
) -> FigureTable:
    """Figure 2b: the Eq. 1 decision deadline vs. speed, per visibility.

    Deadline in seconds; speed in m/s; visibility (usable look-ahead) in
    metres.  The deadline shrinks with speed and grows with visibility.
    """
    from repro.core.budget import TimeBudgeter

    budgeter = TimeBudgeter()
    rows = [
        [v] + [round(budgeter.local_budget(v, d), 2) for d in visibilities]
        for v in speeds
    ]
    return FigureTable(
        key="fig2b_model",
        title="Figure 2b: processing deadline (s) vs speed, one curve per visibility",
        columns=["speed_mps"] + [f"d={int(d)}m" for d in visibilities],
        rows=rows,
    )


def congestion_gradient(steps: int = 8) -> List[Any]:
    """Profiles sweeping from very congested (tight gaps) to open sky.

    A synthetic :class:`~repro.core.profilers.SpaceProfile` sequence used by
    the Figure 5 model sweep; gaps, visibility and clearances are in metres,
    velocities in m/s, volumes in cubic metres.
    """
    from repro.core.profilers import SpaceProfile
    from repro.geometry.vec3 import Vec3

    profiles = []
    for i in range(steps):
        t = i / (steps - 1)
        gap = 0.6 + t * 24.0
        visibility = 4.0 + t * 36.0
        profiles.append(
            SpaceProfile(
                timestamp=float(i),
                gap_min=min(0.6 + t * 10.0, gap),
                gap_avg=gap,
                closest_obstacle=2.0 + t * 38.0,
                closest_unknown=visibility,
                visibility=visibility,
                sensor_volume=100_000.0 + t * 200_000.0,
                map_volume=50_000.0,
                velocity=1.0 + t * 1.5,
                position=Vec3(10.0 * i, 0, 5),
                trajectory=None,
            )
        )
    return profiles


def fig5_model_table(steps: int = 8) -> FigureTable:
    """Figure 5: static vs. dynamic latency/deadline over a congestion sweep.

    Drives the live governor and the static baseline across
    :func:`congestion_gradient` and reports both designs' predicted latency
    (5a) and time budget (5b) in seconds at every step.
    """
    from repro.core.baseline import SpatialObliviousRuntime
    from repro.core.governor import Governor

    governor = Governor()
    baseline = SpatialObliviousRuntime()
    rows: List[List[Any]] = []
    for i, profile in enumerate(congestion_gradient(steps)):
        dynamic = governor.decide(profile)
        static = baseline.decide(profile)
        rows.append(
            [
                i,
                round(static.predicted_latency, 3),
                round(dynamic.predicted_latency, 3),
                round(static.time_budget, 3),
                round(dynamic.time_budget, 3),
            ]
        )
    return FigureTable(
        key="fig5_model",
        title="Figure 5: static (worst-case) vs dynamic latency and deadline",
        columns=[
            "step",
            "static_latency_s",
            "dynamic_latency_s",
            "static_deadline_s",
            "dynamic_deadline_s",
        ],
        rows=rows,
    )
