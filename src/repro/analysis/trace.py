"""Structured mission trace records.

The paper's figures are all derived quantities: latency vs. deadline
(Figure 2), governor response to congestion (Figure 5), mission-level
speedups (Figure 7) and sensitivity to the environment knobs (Figure 8).
Instead of letting every benchmark re-derive them from live objects, a
mission emits a stream of plain records — one :class:`DecisionRecord` per
pipeline decision plus one :class:`MissionRecord` at the end — and the
aggregation layer (:mod:`repro.analysis.figures`) folds streams of records
into the figures.  Records are flat, JSON-serialisable values so they can be
streamed to disk (:mod:`repro.analysis.io`), shipped across campaign worker
processes and replayed long after the mission objects are gone.

Serialisation is canonical: :func:`record_to_line` always produces the same
bytes for the same record (sorted keys, minimal separators), which is what
makes trace files byte-identical between serial and multiprocessing campaign
runs of the same specs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.middleware.latency import comm_seconds, compute_seconds

#: Discriminator values stored in each JSONL line's ``"kind"`` field.
KIND_DECISION = "decision"
KIND_MISSION = "mission"

#: Schema version stamped into every line; bump when a field changes meaning.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """Everything one pipeline decision saw and decided, as plain data.

    One record is emitted per decision cascade (sense → profile → governor →
    perception → planning → flight).  All times are simulated seconds, all
    distances metres, all volumes cubic metres, all energies joules.

    Attributes:
        spec_name: the owning scenario's name ("" for ad-hoc missions).
        design: runtime under test ("roborun" / "spatial_oblivious").
        index: decision index within the mission, starting at 0.
        timestamp: simulated time when the decision completed, seconds.
        position: drone position (x, y, z) at decision time, metres.
        zone: congestion zone name at the drone's position ("A"/"B"/"C").
        speed: drone speed entering the decision, m/s.
        velocity_cap: the governor's safe-velocity cap for the next flight
            segment, m/s.
        time_budget: the decision deadline δ_d allocated by the governor,
            seconds.
        predicted_latency: the solver's end-to-end latency prediction at the
            chosen knobs, seconds.
        solver_feasible: False when the solver fell back to the worst-case
            policy.
        policy: the chosen knob assignment (precisions in metres, volumes in
            cubic metres) — the solver knobs of Table II.
        stage_latencies: seconds charged per pipeline stage; ``comm_*`` keys
            are the per-hop communication latencies (the Figure 11 bars).
        end_to_end_latency: sum of all stage latencies, seconds.
        visibility: usable look-ahead distance, metres.
        closest_obstacle: distance to the nearest observed obstacle, metres.
        gap_min / gap_avg: smallest / average gap between nearby obstacles,
            metres.
        sensor_volume: volume observable by the rig this decision, m³.
        map_volume: volume already present in the occupancy map, m³.
        map_voxels: occupied voxel count of the octree after this decision's
            map update — the map-size axis of the scaling figures.
        flown: distance flown during this decision's flight segment, metres.
        interval: duration of the flight segment, seconds.
        energy: energy spent during the segment (flight + compute), joules.
        replanned: True when the piece-wise planner ran this decision.
        dropped: True when the sensor frame was lost to a fault injection.
        hit: True when the segment ended in a collision.
        archetype: world-archetype name the mission flew through
            ("paper_corridor" unless the scenario named another world; ""
            for pre-worlds traces).
        difficulty: local corridor difficulty in [0, 1] at the decision's
            position, interpolated from the environment's heterogeneity
            field (0.0 when the environment has none — including every
            pre-worlds trace).
        drone_id: which drone of a fleet mission made this decision (0 for
            every single-drone mission, and for every pre-fleet trace).
        faults: registry names of the faults whose windows covered this
            decision, sorted (empty for fault-free decisions and for every
            pre-orchestrator trace).
    """

    spec_name: str
    design: str
    index: int
    timestamp: float
    position: Tuple[float, float, float]
    zone: str
    speed: float
    velocity_cap: float
    time_budget: float
    predicted_latency: float
    solver_feasible: bool
    policy: Dict[str, float]
    stage_latencies: Dict[str, float]
    end_to_end_latency: float
    visibility: float
    closest_obstacle: float
    gap_min: float
    gap_avg: float
    sensor_volume: float
    map_volume: float
    map_voxels: int
    flown: float
    interval: float
    energy: float
    replanned: bool
    dropped: bool
    hit: bool
    # Worlds-layer fields; defaulted so pre-worlds trace lines still parse.
    archetype: str = ""
    difficulty: float = 0.0
    # Fleet-layer field; defaulted so pre-fleet trace lines still parse.
    drone_id: int = 0
    # Fault-orchestrator field; defaulted so pre-orchestrator lines parse.
    faults: Tuple[str, ...] = ()

    @property
    def compute_latency(self) -> float:
        """Computation (non-``comm_*``) share of the decision latency, seconds."""
        return compute_seconds(self.stage_latencies)

    @property
    def comm_latency(self) -> float:
        """Communication (``comm_*`` hop) share of the decision latency, seconds."""
        return comm_seconds(self.stage_latencies)

    @property
    def deadline_met(self) -> bool:
        """True when the decision finished within its time budget."""
        return self.end_to_end_latency <= self.time_budget + 1e-9

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form with the ``kind`` / ``v`` envelope fields.

        The ``faults`` key appears only on decisions a fault actually
        covered, so fault-free traces keep the exact bytes they had before
        the fault orchestrator existed.
        """
        data = {
            "kind": KIND_DECISION,
            "v": TRACE_SCHEMA_VERSION,
            "spec_name": self.spec_name,
            "design": self.design,
            "index": self.index,
            "timestamp": self.timestamp,
            "position": list(self.position),
            "zone": self.zone,
            "speed": self.speed,
            "velocity_cap": self.velocity_cap,
            "time_budget": self.time_budget,
            "predicted_latency": self.predicted_latency,
            "solver_feasible": self.solver_feasible,
            "policy": dict(self.policy),
            "stage_latencies": dict(self.stage_latencies),
            "end_to_end_latency": self.end_to_end_latency,
            "visibility": self.visibility,
            "closest_obstacle": self.closest_obstacle,
            "gap_min": self.gap_min,
            "gap_avg": self.gap_avg,
            "sensor_volume": self.sensor_volume,
            "map_volume": self.map_volume,
            "map_voxels": self.map_voxels,
            "flown": self.flown,
            "interval": self.interval,
            "energy": self.energy,
            "replanned": self.replanned,
            "dropped": self.dropped,
            "hit": self.hit,
            "archetype": self.archetype,
            "difficulty": self.difficulty,
            "drone_id": self.drone_id,
        }
        if self.faults:
            data["faults"] = list(self.faults)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DecisionRecord":
        return cls(
            spec_name=data["spec_name"],
            design=data["design"],
            index=int(data["index"]),
            timestamp=float(data["timestamp"]),
            position=tuple(float(v) for v in data["position"]),
            zone=data["zone"],
            speed=float(data["speed"]),
            velocity_cap=float(data["velocity_cap"]),
            time_budget=float(data["time_budget"]),
            predicted_latency=float(data["predicted_latency"]),
            solver_feasible=bool(data["solver_feasible"]),
            policy={k: float(v) for k, v in data["policy"].items()},
            stage_latencies={
                k: float(v) for k, v in data["stage_latencies"].items()
            },
            end_to_end_latency=float(data["end_to_end_latency"]),
            visibility=float(data["visibility"]),
            closest_obstacle=float(data["closest_obstacle"]),
            gap_min=float(data["gap_min"]),
            gap_avg=float(data["gap_avg"]),
            sensor_volume=float(data["sensor_volume"]),
            map_volume=float(data["map_volume"]),
            map_voxels=int(data["map_voxels"]),
            flown=float(data["flown"]),
            interval=float(data["interval"]),
            energy=float(data["energy"]),
            replanned=bool(data["replanned"]),
            dropped=bool(data["dropped"]),
            hit=bool(data["hit"]),
            # Absent in pre-worlds traces; the defaults keep old files readable.
            archetype=str(data.get("archetype", "")),
            difficulty=float(data.get("difficulty", 0.0)),
            # Absent in pre-fleet traces: a single drone, id 0.
            drone_id=int(data.get("drone_id", 0)),
            # Absent in pre-orchestrator traces (and fault-free decisions).
            faults=tuple(str(name) for name in data.get("faults", ())),
        )


@dataclass(frozen=True, slots=True)
class MissionRecord:
    """One mission's identity, environment knobs and final metrics.

    Emitted once at the end of a mission (or, for a failed campaign spec,
    instead of a mission).  Together with its decision records this is the
    complete provenance of one experiment: what was asked (the spec), what
    knobs the environment had, and what came out (the metrics or the error).

    Attributes:
        spec_name: the scenario's name within its campaign.
        design: runtime under test ("roborun" / "spatial_oblivious").
        seed: the per-mission RNG seed (environment + planner).
        environment: the difficulty knobs the environment was generated from
            (``obstacle_density`` fraction, ``obstacle_spread`` metres,
            ``goal_distance`` metres, …).
        metrics: :meth:`repro.simulation.metrics.MissionMetrics.as_dict`
            (times in seconds, distances in metres, energy in kilojoules);
            empty for a failed spec.
        error: ``None`` on success; otherwise ``{"type", "message",
            "traceback", "spec_json"}`` describing the per-spec failure.
        spec: the full scenario spec as plain data, when known.
        fleet: fleet-level aggregates (``n_drones``, ``completion_rate``,
            ``min_separation_m``, ``airspace_conflicts``, ``fleet_energy_kj``,
            …) for fleet missions; ``None`` for single-drone missions and
            every pre-fleet trace.
        drones: one per-drone metrics dictionary per fleet member, in
            drone-id order; ``None`` for single-drone missions.
    """

    spec_name: str
    design: str
    seed: int
    environment: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[Dict[str, str]] = None
    spec: Optional[Dict[str, Any]] = None
    # Fleet-layer fields; defaulted so pre-fleet trace lines still parse.
    fleet: Optional[Dict[str, Any]] = None
    drones: Optional[List[Dict[str, Any]]] = None

    @classmethod
    def from_result(
        cls,
        result: Any,
        spec: Optional[Any] = None,
        spec_name: str = "",
    ) -> "MissionRecord":
        """Build a record from a live :class:`~repro.simulation.mission.
        MissionResult` (and optionally its scenario spec).

        This is the bridge for callers that flew missions without streaming
        traces — e.g. the benchmark harness — so they can still feed the
        shared figure aggregators.
        """
        spec_dict = None
        environment: Dict[str, Any] = {}
        seed = 0
        if spec is not None:
            spec_dict = jsonify(spec.to_dict()) if hasattr(spec, "to_dict") else jsonify(dict(spec))
            environment = dict(spec_dict.get("environment", {}))
            seed = int(environment.get("seed", 0))
            spec_name = spec_name or spec_dict.get("name", "")
        return cls(
            spec_name=spec_name,
            design=result.design,
            seed=seed,
            environment=environment,
            metrics=result.metrics.as_dict(),
            error=None,
            spec=spec_dict,
        )

    @property
    def ok(self) -> bool:
        """True when the mission ran to completion (possibly unsuccessfully)."""
        return self.error is None

    @property
    def success(self) -> bool:
        """True when the drone reached the goal without colliding."""
        return self.ok and bool(self.metrics.get("success"))

    @property
    def archetype(self) -> str:
        """The world archetype the mission flew through.

        Read from the spec's ``world`` entry; specs recorded before the
        worlds subsystem existed have none and report ``"paper_corridor"``,
        which is exactly the world they flew.
        """
        spec = self.spec or {}
        world = spec.get("world") or {}
        return str(world.get("archetype") or "paper_corridor")

    @property
    def n_drones(self) -> int:
        """The mission's fleet size (1 for every pre-fleet record)."""
        if self.fleet and self.fleet.get("n_drones"):
            return int(self.fleet["n_drones"])
        spec = self.spec or {}
        return int(spec.get("n_drones", 1) or 1)

    @property
    def completion_rate(self) -> float:
        """Fraction of the fleet that completed its mission.

        Single-drone missions report 1.0 / 0.0 from the mission's own
        success flag, so the fleet-scaling table can mix fleet sizes.
        """
        if self.fleet is not None and "completion_rate" in self.fleet:
            return float(self.fleet["completion_rate"])
        return 1.0 if self.success else 0.0

    @property
    def fault_label(self) -> str:
        """The mission's fault configuration as a grouping tag.

        Sorted unique registry names of every configured fault (legacy
        always-on fields plus schedule entries), ``"+"``-joined;
        ``"none"`` for fault-free missions and every pre-orchestrator
        trace — read from the spec's ``faults`` entry, so replayed traces
        group identically to live ones.
        """
        spec = self.spec or {}
        faults = spec.get("faults") or {}
        names = set()
        if faults.get("sensor_dropout"):
            names.add("sensor_dropout")
        if faults.get("camera_degradation"):
            names.add("camera_degradation")
        for entry in faults.get("schedule") or ():
            name = (entry or {}).get("fault")
            if name:
                names.add(str(name))
        return "+".join(sorted(names)) if names else "none"

    def knob(self, name: str) -> Optional[float]:
        """One environment difficulty knob value, or None when unknown."""
        value = self.environment.get(name)
        return float(value) if value is not None else None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form with the ``kind`` / ``v`` envelope fields."""
        return {
            "kind": KIND_MISSION,
            "v": TRACE_SCHEMA_VERSION,
            "spec_name": self.spec_name,
            "design": self.design,
            "seed": self.seed,
            "environment": dict(self.environment),
            "metrics": dict(self.metrics),
            "error": dict(self.error) if self.error else None,
            "spec": dict(self.spec) if self.spec else None,
            "fleet": dict(self.fleet) if self.fleet else None,
            "drones": [dict(d) for d in self.drones] if self.drones else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MissionRecord":
        return cls(
            spec_name=data["spec_name"],
            design=data["design"],
            seed=int(data["seed"]),
            environment=dict(data.get("environment") or {}),
            metrics={k: float(v) for k, v in (data.get("metrics") or {}).items()},
            error=dict(data["error"]) if data.get("error") else None,
            spec=dict(data["spec"]) if data.get("spec") else None,
            fleet=dict(data["fleet"]) if data.get("fleet") else None,
            drones=(
                [dict(d) for d in data["drones"]] if data.get("drones") else None
            ),
        )


TraceRecord = Union[DecisionRecord, MissionRecord]


def jsonify(value: Any) -> Any:
    """Normalise a value to what a JSON round-trip would make of it.

    Records compare equal across write → read cycles only when the values
    they carry are already in JSON's vocabulary (lists, not tuples); spec
    dictionaries are passed through this before being stored in a record.
    """
    return json.loads(json.dumps(value))


def record_to_line(record: TraceRecord) -> str:
    """Canonical JSONL line (no trailing newline) for one record.

    Sorted keys and minimal separators make the encoding a pure function of
    the record's value, so identical missions produce byte-identical trace
    files no matter which process wrote them.
    """
    return json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))


def record_from_line(line: str) -> TraceRecord:
    """Parse one JSONL line back into its record type.

    Raises:
        ValueError: when the line's ``kind`` field is missing or unknown.
    """
    data = json.loads(line)
    kind = data.get("kind")
    if kind == KIND_DECISION:
        return DecisionRecord.from_dict(data)
    if kind == KIND_MISSION:
        return MissionRecord.from_dict(data)
    raise ValueError(f"unknown trace record kind {kind!r}")


def split_records(
    records: Iterable[TraceRecord],
) -> Tuple[List[DecisionRecord], List[MissionRecord]]:
    """Partition a mixed record stream into (decisions, missions), in order."""
    decisions: List[DecisionRecord] = []
    missions: List[MissionRecord] = []
    for record in records:
        if isinstance(record, DecisionRecord):
            decisions.append(record)
        else:
            missions.append(record)
    return decisions, missions
