"""Streaming JSONL trace files.

A trace file is a sequence of JSON objects, one per line: every
:class:`~repro.analysis.trace.DecisionRecord` of a mission in decision
order, followed by the mission's :class:`~repro.analysis.trace.
MissionRecord`.  The format is append-only and line-oriented so that

* multi-thousand-mission campaigns stream records to disk as they are
  produced instead of holding them in memory,
* a partially written file (a crashed worker) is still readable up to its
  last complete line, and
* files from different runs of the same spec are byte-identical (the
  encoder is canonical — see :func:`repro.analysis.trace.record_to_line`).

:class:`TraceWriter` and :class:`TraceReader` are deliberately tiny: no
compression, no framing, no dependencies beyond the standard library.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.trace import (
    DecisionRecord,
    MissionRecord,
    TraceRecord,
    record_from_line,
    record_to_line,
    split_records,
)

PathLike = Union[str, Path]

#: File suffix used by campaign trace directories.
TRACE_SUFFIX = ".jsonl"


class TraceWriter:
    """Appends trace records to a JSONL file, one line per record.

    The writer creates parent directories on first use and flushes on
    :meth:`close` (or context-manager exit); records are buffered by the
    underlying file object in between, so per-decision writes stay cheap.

    Attributes:
        path: destination file; an existing file is truncated.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self._written = 0

    def write(self, record: TraceRecord) -> None:
        """Append one record as a canonical JSONL line."""
        if self._handle is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._handle.write(record_to_line(record))
        self._handle.write("\n")
        self._written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> None:
        """Append every record of an iterable, in order."""
        for record in records:
            self.write(record)

    @property
    def written(self) -> int:
        """Number of records written so far."""
        return self._written

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TraceReader:
    """Iterates the records of one JSONL trace file, in file order.

    The reader is streaming: iterating never loads the whole file, so
    campaign-scale traces aggregate in constant memory.  Blank lines are
    skipped (a trailing newline is not an error).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[TraceRecord]:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield record_from_line(line)

    def records(self) -> List[TraceRecord]:
        """All records of the file as a list (convenience for small files)."""
        return list(self)


def trace_path(directory: PathLike, spec_name: str) -> Path:
    """The canonical trace-file path for one spec inside a trace directory.

    Path separators in the spec name are flattened so a name can never
    escape the directory.
    """
    safe = spec_name.replace("/", "_").replace("\\", "_")
    return Path(directory) / f"{safe}{TRACE_SUFFIX}"


def list_trace_files(directory: PathLike) -> List[Path]:
    """Every ``*.jsonl`` trace file under a directory, sorted by name."""
    return sorted(Path(directory).glob(f"*{TRACE_SUFFIX}"))


def clear_traces(directory: PathLike) -> int:
    """Delete every ``*.jsonl`` trace file under a directory, if it exists.

    :meth:`~repro.simulation.campaign.CampaignRunner.run` sweeps its trace
    directory through this before flying: each worker only truncates its own
    spec's file, so without the sweep, files from a previous (different)
    campaign would survive and be silently folded into the next report.

    Returns:
        The number of files removed.
    """
    base = Path(directory)
    if not base.is_dir():
        return 0
    stale = list_trace_files(base)
    for path in stale:
        path.unlink()
    return len(stale)


def is_complete_trace(path: PathLike) -> bool:
    """True when a trace file exists, parses cleanly and ended well.

    This is the ``--resume`` probe: a campaign restarted into the same trace
    directory skips every spec whose file passes it.  "Ended well" means the
    final record is the mission's :class:`MissionRecord` with no error — a
    file that stops mid-stream (crashed worker), holds an unparseable line
    (torn write) or ends in an error record is *not* complete, so resuming
    re-flies exactly the specs that never finished.
    """
    source = Path(path)
    if not source.is_file():
        return False
    last: Optional[TraceRecord] = None
    try:
        for record in TraceReader(source):
            last = record
    except Exception:  # noqa: BLE001 - any parse failure means "rerun it"
        return False
    return isinstance(last, MissionRecord) and last.error is None


def read_traces(
    paths: Sequence[PathLike],
) -> Tuple[List[DecisionRecord], List[MissionRecord]]:
    """Read many trace files and split them into (decisions, missions).

    Files are read in the given order and records keep their file order, so
    passing spec-ordered paths reproduces the campaign's spec order.
    """
    records: List[TraceRecord] = []
    for path in paths:
        records.extend(TraceReader(path))
    return split_records(records)
