"""Mission trace and campaign reporting subsystem.

The analysis package turns missions into data and data into the paper's
figures, in three layers:

1. **Records** (:mod:`repro.analysis.trace`): one
   :class:`DecisionRecord` per pipeline decision — budget, solver knobs,
   map size, per-stage/hop latencies, energy — plus one
   :class:`MissionRecord` per mission, all plain JSON-serialisable values.
2. **Capture and storage** (:mod:`repro.analysis.recorder`,
   :mod:`repro.analysis.io`): a :class:`TraceRecorder` taps the decision
   pipeline's topics as a passive subscriber (zero overhead when not
   attached) and streams records through :class:`TraceWriter` /
   :class:`TraceReader` JSONL files that are byte-identical across serial
   and multiprocessing campaign runs.
3. **Aggregation** (:mod:`repro.analysis.figures`,
   :mod:`repro.analysis.report`): ``fig2/5/7/8`` aggregators fold record
   streams into :class:`FigureTable` values with CSV/markdown emitters, and
   :class:`CampaignReport` assembles them into a self-contained report —
   the backend of ``python -m repro.report``.
"""

from repro.analysis.figures import (
    FIG8_KNOBS,
    FigureTable,
    archetype_comparison,
    fig2_latency_deadline,
    fig2a_model_table,
    fig2b_model_table,
    fig5_governor_response,
    fig5_model_table,
    fig7_overall,
    fig8_sensitivity,
)
from repro.analysis.io import (
    TraceReader,
    TraceWriter,
    clear_traces,
    list_trace_files,
    read_traces,
    trace_path,
)
from repro.analysis.recorder import TraceRecorder
from repro.analysis.report import CampaignReport
from repro.analysis.trace import (
    DecisionRecord,
    MissionRecord,
    record_from_line,
    record_to_line,
    split_records,
)

__all__ = [
    "FIG8_KNOBS",
    "CampaignReport",
    "DecisionRecord",
    "FigureTable",
    "MissionRecord",
    "TraceReader",
    "TraceRecorder",
    "TraceWriter",
    "archetype_comparison",
    "fig2_latency_deadline",
    "fig2a_model_table",
    "fig2b_model_table",
    "fig5_governor_response",
    "fig5_model_table",
    "fig7_overall",
    "fig8_sensitivity",
    "clear_traces",
    "list_trace_files",
    "read_traces",
    "record_from_line",
    "record_to_line",
    "split_records",
    "trace_path",
]
