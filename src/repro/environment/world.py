"""The obstacle world.

A :class:`World` is a bounded 3-D region containing axis-aligned box
obstacles.  It provides the spatial queries that both the simulated sensors
and RoboRun's profilers rely on:

* occupancy tests and segment collision checks (planner collision checking);
* distance to the nearest obstacle (drives the precision demand near
  obstacles, Table I "closest obstacle");
* visibility along a heading (the space-visibility feature of §II-A);
* local obstacle density and gap statistics (drive the precision constraint
  ``g_min <= p_0 <= min(p_1, g_avg, d_obs)`` of Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray, ray_aabb_intersect, segment_intersects_aabb
from repro.geometry.vec3 import Vec3


def _corner_arrays(obstacles: Sequence[Obstacle]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack obstacle boxes into contiguous ``(N, 3)`` min/max corner arrays."""
    n = len(obstacles)
    lo = np.empty((n, 3), dtype=np.float64)
    hi = np.empty((n, 3), dtype=np.float64)
    for row, obstacle in enumerate(obstacles):
        box = obstacle.box
        lo[row, 0] = box.min_corner.x
        lo[row, 1] = box.min_corner.y
        lo[row, 2] = box.min_corner.z
        hi[row, 0] = box.max_corner.x
        hi[row, 1] = box.max_corner.y
        hi[row, 2] = box.max_corner.z
    return lo, hi


def _boxes_distance_to_point(
    lo: np.ndarray, hi: np.ndarray, point: Vec3
) -> np.ndarray:
    """Surface distance from each box to a point (0 when inside), batched.

    Reproduces ``AABB.distance_to_point`` per box: clamp the point to the box
    then take the euclidean distance, with the same left-to-right summation
    order as ``Vec3.distance_to`` so results are bit-identical.
    """
    p = np.array((point.x, point.y, point.z), dtype=np.float64)
    closest = np.minimum(np.maximum(p, lo), hi)
    d = closest - p
    return np.sqrt((d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2])


@dataclass(frozen=True, slots=True)
class Obstacle:
    """A static, axis-aligned box obstacle."""

    box: AABB
    name: str = "obstacle"

    @property
    def center(self) -> Vec3:
        """Obstacle centre point."""
        return self.box.center

    def distance_to(self, point: Vec3) -> float:
        """Distance from the obstacle surface to a point (0 when inside)."""
        return self.box.distance_to_point(point)


class World:
    """A bounded region populated with box obstacles.

    The world uses a coarse 2-D spatial hash over the x-y plane to keep
    nearest-obstacle and collision queries fast even with hundreds of
    obstacles; drones fly well above or below obstacles rarely enough in the
    paper's warehouse scenarios that a 2-D bucketing is an effective filter.

    Besides the hashed static obstacles, the world carries a small *dynamic*
    obstacle layer (:meth:`set_dynamic_obstacles`): the current boxes of the
    kinematic movers from :mod:`repro.worlds.movers`.  Movers are replaced
    wholesale once per decision epoch and number at most a handful, so they
    are scanned linearly instead of re-hashed — every occupancy, collision,
    proximity and density query below folds them in.
    """

    def __init__(
        self,
        bounds: AABB,
        obstacles: Optional[Iterable[Obstacle]] = None,
        hash_cell: float = 20.0,
    ) -> None:
        if hash_cell <= 0:
            raise ValueError("spatial hash cell size must be positive")
        self.bounds = bounds
        self._hash_cell = hash_cell
        self._obstacles: List[Obstacle] = []
        self._hash: dict[Tuple[int, int], List[int]] = {}
        self._dynamic: List[Obstacle] = []
        self._agents: List[Obstacle] = []
        # Lazily rebuilt corner-array snapshots.  The static snapshot changes
        # only when obstacles are added (construction time); the unhashed
        # (mover + agent) snapshot is invalidated when a layer is replaced —
        # once per decision epoch — so batched queries pay one stacking pass
        # per epoch rather than a Python loop per probe.
        self._static_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._unhashed_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        for obstacle in obstacles or []:
            self.add_obstacle(obstacle)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_obstacle(self, obstacle: Obstacle) -> None:
        """Add an obstacle, indexing it in the spatial hash."""
        index = len(self._obstacles)
        self._obstacles.append(obstacle)
        self._static_arrays = None
        for key in self._hash_keys_for_box(obstacle.box):
            self._hash.setdefault(key, []).append(index)

    def _hash_keys_for_box(self, box: AABB) -> Iterable[Tuple[int, int]]:
        x0 = int(math.floor(box.min_corner.x / self._hash_cell))
        x1 = int(math.floor(box.max_corner.x / self._hash_cell))
        y0 = int(math.floor(box.min_corner.y / self._hash_cell))
        y1 = int(math.floor(box.max_corner.y / self._hash_cell))
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                yield (ix, iy)

    def _candidate_indices(self, point: Vec3, radius: float) -> List[int]:
        x0 = int(math.floor((point.x - radius) / self._hash_cell))
        x1 = int(math.floor((point.x + radius) / self._hash_cell))
        y0 = int(math.floor((point.y - radius) / self._hash_cell))
        y1 = int(math.floor((point.y + radius) / self._hash_cell))
        seen: set[int] = set()
        result: List[int] = []
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                for idx in self._hash.get((ix, iy), ()):
                    if idx not in seen:
                        seen.add(idx)
                        result.append(idx)
        return result

    # ------------------------------------------------------------------
    # Dynamic obstacle layer
    # ------------------------------------------------------------------
    def set_dynamic_obstacles(self, obstacles: Iterable[Obstacle]) -> None:
        """Replace the dynamic obstacle layer (the movers' current boxes).

        Called once per decision epoch by
        :meth:`repro.worlds.movers.DynamicObstacleSet.step`; the layer is
        small and scanned linearly, so no re-hashing happens.
        """
        self._dynamic = list(obstacles)
        self._unhashed_arrays = None

    @property
    def dynamic_obstacles(self) -> Sequence[Obstacle]:
        """The dynamic obstacle layer at its most recently stepped epoch."""
        return tuple(self._dynamic)

    # ------------------------------------------------------------------
    # Agent (peer drone) layer
    # ------------------------------------------------------------------
    def set_agent_obstacles(self, obstacles: Iterable[Obstacle]) -> None:
        """Replace the agent layer: the other drones of a fleet, as boxes.

        Kept separate from the mover layer because
        :meth:`~repro.worlds.movers.DynamicObstacleSet.step` replaces the
        dynamic layer wholesale at the sense boundary; the fleet simulator
        refreshes this layer per drone turn instead.  Empty for single-drone
        missions, so they pay nothing.
        """
        self._agents = list(obstacles)
        self._unhashed_arrays = None

    @property
    def agent_obstacles(self) -> Sequence[Obstacle]:
        """The agent obstacle layer (peer drones), as most recently set."""
        return tuple(self._agents)

    def _unhashed_obstacles(self) -> List[Obstacle]:
        """Movers plus peer agents — the obstacles scanned linearly."""
        if not self._agents:
            return self._dynamic
        return self._dynamic + self._agents

    def _unhashed_corner_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The memoised per-epoch snapshot of the mover + agent boxes."""
        arrays = self._unhashed_arrays
        if arrays is None:
            arrays = _corner_arrays(self._unhashed_obstacles())
            self._unhashed_arrays = arrays
        return arrays

    def _static_corner_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Corner arrays for every static obstacle, rebuilt only on insertion."""
        arrays = self._static_arrays
        if arrays is None:
            arrays = _corner_arrays(self._obstacles)
            self._static_arrays = arrays
        return arrays

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def obstacles(self) -> Sequence[Obstacle]:
        """All static obstacles in insertion order (movers excluded)."""
        return tuple(self._obstacles)

    def obstacles_near(self, point: Vec3, radius: float) -> List[Obstacle]:
        """Obstacles whose spatial-hash cells fall within ``radius`` of a point.

        This is a broad-phase filter (it may return obstacles slightly beyond
        the radius) used by the simulated depth cameras to avoid testing every
        obstacle in the world against every ray.  Dynamic obstacles within
        the radius are appended after the static candidates.
        """
        result = [self._obstacles[idx] for idx in self._candidate_indices(point, radius)]
        result.extend(
            obstacle
            for obstacle in self._unhashed_obstacles()
            if obstacle.box.distance_to_point(point) <= radius
        )
        return result

    def obstacle_arrays_near(
        self, point: Vec3, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Corner arrays of :meth:`obstacles_near`'s candidates, stacked.

        The batched twin used by the vectorised depth camera: the same static
        hash candidates plus the same distance-filtered mover/agent boxes, but
        returned as two ``(K, 3)`` min/max corner arrays sliced out of the
        memoised snapshots instead of a list of :class:`Obstacle` objects.
        """
        static_lo, static_hi = self._static_corner_arrays()
        indices = self._candidate_indices(point, radius)
        lo = static_lo[indices]
        hi = static_hi[indices]
        if self._dynamic or self._agents:
            dyn_lo, dyn_hi = self._unhashed_corner_arrays()
            near = _boxes_distance_to_point(dyn_lo, dyn_hi, point) <= radius
            if near.any():
                lo = np.concatenate([lo, dyn_lo[near]])
                hi = np.concatenate([hi, dyn_hi[near]])
        return lo, hi

    def obstacle_count(self) -> int:
        """Number of static obstacles."""
        return len(self._obstacles)

    # ------------------------------------------------------------------
    # Occupancy / collision
    # ------------------------------------------------------------------
    def is_occupied(self, point: Vec3, margin: float = 0.0) -> bool:
        """True when a point is inside (or within ``margin`` of) an obstacle."""
        for idx in self._candidate_indices(point, margin + self._hash_cell):
            obstacle = self._obstacles[idx]
            if margin == 0.0:
                if obstacle.box.contains(point):
                    return True
            elif obstacle.box.expanded(margin).contains(point):
                return True
        for obstacle in self._unhashed_obstacles():
            box = obstacle.box if margin == 0.0 else obstacle.box.expanded(margin)
            if box.contains(point):
                return True
        return False

    def is_inside_bounds(self, point: Vec3) -> bool:
        """True when the point lies inside the world bounds."""
        return self.bounds.contains(point)

    def segment_collides(self, start: Vec3, end: Vec3, margin: float = 0.0) -> bool:
        """True when the straight segment hits any obstacle (inflated by margin)."""
        mid = start.lerp(end, 0.5)
        radius = start.distance_to(end) * 0.5 + margin + self._hash_cell
        for idx in self._candidate_indices(mid, radius):
            box = self._obstacles[idx].box
            if margin > 0.0:
                box = box.expanded(margin)
            if segment_intersects_aabb(start, end, box):
                return True
        for obstacle in self._unhashed_obstacles():
            box = obstacle.box if margin == 0.0 else obstacle.box.expanded(margin)
            if segment_intersects_aabb(start, end, box):
                return True
        return False

    # ------------------------------------------------------------------
    # Spatial features (the paper's four heterogeneity features live here)
    # ------------------------------------------------------------------
    def nearest_obstacle_distance(self, point: Vec3, search_radius: float = 200.0) -> float:
        """Distance to the closest obstacle surface.

        Returns ``search_radius`` when no obstacle lies within the radius,
        which mirrors the "no nearby threat" saturation the profilers use.
        """
        best = search_radius
        for idx in self._candidate_indices(point, search_radius):
            d = self._obstacles[idx].distance_to(point)
            if d < best:
                best = d
        for obstacle in self._unhashed_obstacles():
            d = obstacle.distance_to(point)
            if d < best:
                best = d
        return best

    def visibility_along(self, origin: Vec3, direction: Vec3, max_range: float) -> float:
        """Unobstructed distance along ``direction`` before hitting an obstacle.

        This is the paper's space-visibility feature: the further the drone
        can see, the longer its decision deadline can be (Figure 2b).  The
        returned value is clamped to ``max_range`` (sensor range / weather).
        """
        if max_range <= 0:
            return 0.0
        if direction.norm_sq() == 0.0:
            return max_range
        ray = Ray(origin, direction.normalized())
        nearest = max_range
        probe_point = origin + direction.normalized() * (max_range * 0.5)
        candidates = [
            self._obstacles[idx].box
            for idx in self._candidate_indices(probe_point, max_range)
        ]
        candidates.extend(obstacle.box for obstacle in self._unhashed_obstacles())
        for box in candidates:
            hit = ray_aabb_intersect(ray, box)
            if hit is None:
                continue
            t_enter, t_exit = hit
            if t_exit < 0:
                continue
            entry = max(t_enter, 0.0)
            if entry < nearest:
                nearest = entry
        return min(nearest, max_range)

    def obstacle_density(self, point: Vec3, radius: float) -> float:
        """Fraction of the sampling disc around ``point`` occupied by obstacles.

        Matches the generator's definition: "obstacle density determines the
        ratio of occupied cells around a grid cell" (§IV).  Estimated by
        sampling a coarse 2-D grid at the drone's altitude.
        """
        if radius <= 0:
            raise ValueError("density radius must be positive")
        step = max(radius / 8.0, 0.5)
        total = 0
        occupied = 0
        x = point.x - radius
        while x <= point.x + radius:
            y = point.y - radius
            while y <= point.y + radius:
                if math.hypot(x - point.x, y - point.y) <= radius:
                    total += 1
                    if self.is_occupied(Vec3(x, y, point.z)):
                        occupied += 1
                y += step
            x += step
        if total == 0:
            return 0.0
        return occupied / total

    def gap_statistics(
        self, point: Vec3, radius: float
    ) -> Tuple[float, float]:
        """Return ``(min_gap, avg_gap)`` between obstacles near a point.

        The gap between two obstacles is the surface-to-surface distance
        between their boxes.  Only obstacles within ``radius`` of the query
        point participate.  When fewer than two obstacles are nearby, both
        statistics saturate at ``radius`` — an "open sky" answer that lets
        the solver relax precision all the way to its upper bound.
        """
        nearby = [
            self._obstacles[idx]
            for idx in self._candidate_indices(point, radius)
            if self._obstacles[idx].distance_to(point) <= radius
        ]
        if len(nearby) < 2:
            return (radius, radius)
        gaps: List[float] = []
        for i in range(len(nearby)):
            best = math.inf
            for j in range(len(nearby)):
                if i == j:
                    continue
                gap = _box_gap(nearby[i].box, nearby[j].box)
                if gap < best:
                    best = gap
            if math.isfinite(best):
                gaps.append(best)
        if not gaps:
            return (radius, radius)
        return (min(gaps), sum(gaps) / len(gaps))

    def free_space_ratio_along(
        self, start: Vec3, end: Vec3, samples: int = 50
    ) -> float:
        """Fraction of sample points along a segment that are obstacle-free."""
        if samples < 1:
            raise ValueError("need at least one sample")
        free = 0
        for i in range(samples):
            t = i / max(samples - 1, 1)
            if not self.is_occupied(start.lerp(end, t)):
                free += 1
        return free / samples


def _box_gap(a: AABB, b: AABB) -> float:
    """Surface-to-surface distance between two boxes (0 when overlapping)."""
    dx = max(0.0, max(a.min_corner.x - b.max_corner.x, b.min_corner.x - a.max_corner.x))
    dy = max(0.0, max(a.min_corner.y - b.max_corner.y, b.min_corner.y - a.max_corner.y))
    dz = max(0.0, max(a.min_corner.z - b.max_corner.z, b.min_corner.z - a.max_corner.z))
    return math.sqrt(dx * dx + dy * dy + dz * dz)
