"""Synthetic 3-D environments.

The paper evaluates RoboRun inside Unreal/AirSim worlds produced by an
"environment generator" that controls obstacle density, obstacle spread and
goal distance to create 27 environments of varying difficulty (§IV).  This
package is the offline substitute: axis-aligned box obstacles placed by a
Gaussian congestion-cluster generator, plus the spatial queries the runtime
needs — nearest obstacle, visibility along a heading, gap statistics between
obstacles and per-zone congestion levels.
"""

from repro.environment.generator import EnvironmentConfig, EnvironmentGenerator
from repro.environment.world import Obstacle, World
from repro.environment.zones import Zone, ZoneMap

__all__ = [
    "EnvironmentConfig",
    "EnvironmentGenerator",
    "Obstacle",
    "World",
    "Zone",
    "ZoneMap",
]
