"""Environment generator.

Reimplements the paper's environment generator (§IV "Environment Generation"
and Figure 8a): environments are parameterised by obstacle **density**
(peak fraction of occupied cells near a cluster centre), obstacle **spread**
(radius over which obstacles are scattered around a cluster centre) and
**goal distance** (straight-line mission length).  Obstacles are spawned from
a Gaussian distribution around congestion-cluster centres; two congested
clusters sit at the mission's start and end (zones A and C) with a long,
nearly empty zone B between them.

The paper's evaluation grid uses three values per knob:

* density ∈ {0.3, 0.45, 0.6}
* spread ∈ {40, 80, 120} m
* goal distance ∈ {600, 900, 1200} m

for 27 environments total.  :meth:`EnvironmentGenerator.generate_suite`
produces exactly that grid.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.environment.world import Obstacle, World

if TYPE_CHECKING:  # pragma: no cover - the worlds package imports us, not vice versa
    from repro.worlds.field import HeterogeneityField
    from repro.worlds.movers import DynamicObstacleSet
    from repro.worlds.spec import WorldSpec
from repro.environment.zones import ZoneMap
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3

# Paper evaluation grid (Figure 8a).
DENSITY_LEVELS: Sequence[float] = (0.3, 0.45, 0.6)
SPREAD_LEVELS_M: Sequence[float] = (40.0, 80.0, 120.0)
GOAL_DISTANCE_LEVELS_M: Sequence[float] = (600.0, 900.0, 1200.0)


@dataclass(frozen=True, slots=True)
class EnvironmentConfig:
    """Difficulty knobs for one generated environment.

    Attributes:
        obstacle_density: peak fraction of space occupied near cluster centres
            (the paper sweeps 0.3 / 0.45 / 0.6).
        obstacle_spread: standard radius, in metres, over which obstacles are
            scattered around each cluster centre (40 / 80 / 120 m).
        goal_distance: straight-line distance from mission start to goal
            (600 / 900 / 1200 m).
        corridor_width: lateral half-width of the mission corridor, metres.
        flight_altitude: nominal z of the mission corridor, metres.
        obstacle_height: height of generated box obstacles, metres.
        clusters_per_zone: congestion clusters placed inside each congested
            zone (the generator hyper-parameter "number of congestion
            clusters" in §IV).
        seed: RNG seed; the same config + seed always produces the same world.
    """

    obstacle_density: float = 0.45
    obstacle_spread: float = 80.0
    goal_distance: float = 900.0
    corridor_width: float = 150.0
    flight_altitude: float = 5.0
    obstacle_height: float = 20.0
    clusters_per_zone: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for knob in (
            "obstacle_density",
            "obstacle_spread",
            "goal_distance",
            "corridor_width",
            "flight_altitude",
            "obstacle_height",
        ):
            value = getattr(self, knob)
            if not math.isfinite(value):
                raise ValueError(f"{knob} must be a finite number, got {value!r}")
        if not 0.0 < self.obstacle_density < 1.0:
            raise ValueError(
                f"obstacle density is the peak occupied fraction and must be in "
                f"(0, 1), got {self.obstacle_density!r}"
            )
        if self.obstacle_spread <= 0:
            raise ValueError(
                f"obstacle spread is a scatter radius in metres and must be "
                f"positive, got {self.obstacle_spread!r}"
            )
        if self.goal_distance <= 0:
            raise ValueError(
                f"goal distance is the mission length in metres and must be "
                f"positive, got {self.goal_distance!r}"
            )
        if self.corridor_width <= 0:
            raise ValueError(
                f"corridor width must be positive metres, got "
                f"{self.corridor_width!r} (a non-positive width inverts the "
                f"corridor: its left edge would sit right of its right edge)"
            )
        if self.flight_altitude <= 0:
            raise ValueError(
                f"flight altitude must be positive metres above ground, got "
                f"{self.flight_altitude!r}"
            )
        if self.obstacle_height <= 0:
            raise ValueError(
                f"obstacle height must be positive metres, got "
                f"{self.obstacle_height!r}"
            )
        if self.flight_altitude >= self.obstacle_height:
            raise ValueError(
                f"flight altitude ({self.flight_altitude!r} m) must sit below "
                f"the obstacle height ({self.obstacle_height!r} m); a corridor "
                f"whose obstacles all pass under the drone has no congestion "
                f"to generate"
            )
        if self.clusters_per_zone < 1:
            raise ValueError(
                f"need at least one congestion cluster per congested zone, "
                f"got {self.clusters_per_zone!r}"
            )

    def label(self) -> str:
        """Short human-readable identifier used in experiment tables."""
        return (
            f"den{self.obstacle_density:g}_spr{self.obstacle_spread:g}"
            f"_goal{self.goal_distance:g}_seed{self.seed}"
        )


@dataclass
class GeneratedEnvironment:
    """A generated world together with its mission endpoints and zone map.

    Bundles everything one mission needs of its surroundings: the obstacle
    ``world`` (all coordinates in metres), the ``start`` and ``goal``
    positions, the congestion ``zone_map`` (zones A and C are the congested
    clusters at the mission's ends, B the open middle) and the cluster
    centres the obstacles were scattered around.

    Environments built through :mod:`repro.worlds` additionally carry the
    worlds-layer extras (all default to their "plain paper corridor"
    values, so environments from :meth:`EnvironmentGenerator.generate`
    remain valid):

    Attributes:
        archetype: name of the world archetype the environment came from.
        world_spec: the :class:`~repro.worlds.spec.WorldSpec` it was built
            from (``None`` for directly generated environments).
        heterogeneity: the corridor's
            :class:`~repro.worlds.field.HeterogeneityField` (``None`` when
            not sampled).
        dynamics: the environment's
            :class:`~repro.worlds.movers.DynamicObstacleSet` (``None``
            when the world is fully static).
    """

    config: EnvironmentConfig
    world: World
    start: Vec3
    goal: Vec3
    zone_map: ZoneMap
    cluster_centers: List[Vec3] = field(default_factory=list)
    archetype: str = "paper_corridor"
    world_spec: Optional["WorldSpec"] = None
    heterogeneity: Optional["HeterogeneityField"] = None
    dynamics: Optional["DynamicObstacleSet"] = None

    def congestion_at(self, position: Vec3, radius: float = 30.0) -> float:
        """Local obstacle density around a position (Figure 9's heat value)."""
        return self.world.obstacle_density(position, radius)

    def difficulty_at(self, position: Vec3) -> float:
        """Interpolated corridor difficulty in [0, 1] at a position.

        One lerp against the precomputed heterogeneity field — cheap enough
        for the trace recorder's per-decision path.  Environments without a
        sampled field report 0.0 rather than paying a live density query.
        """
        if self.heterogeneity is None:
            return 0.0
        return self.heterogeneity.difficulty_at(position)


class EnvironmentGenerator:
    """Generates congestion-cluster environments from difficulty knobs.

    Reproduces the paper's §IV generator: obstacles are sampled from
    Gaussians around congestion-cluster centres placed in the start and goal
    zones, parameterised by obstacle density (peak occupied fraction),
    spread (scatter radius, metres) and goal distance (mission length,
    metres).  The same :class:`EnvironmentConfig` and seed always produce
    the same world; :meth:`generate_suite` builds the paper's 27-environment
    evaluation grid.
    """

    # Obstacle footprint dimensions: narrow pillars and wider rack-like blocks,
    # in metres, mimicking warehouse shelving and building clutter.
    _FOOTPRINTS: Sequence[Tuple[float, float]] = ((2.0, 2.0), (4.0, 2.0), (6.0, 3.0))

    def __init__(self, default_seed: int = 0) -> None:
        self.default_seed = default_seed

    # ------------------------------------------------------------------
    # Single environment
    # ------------------------------------------------------------------
    def generate(self, config: Optional[EnvironmentConfig] = None) -> GeneratedEnvironment:
        """Generate one environment from the given configuration."""
        cfg = config or EnvironmentConfig(seed=self.default_seed)
        rng = random.Random(cfg.seed)

        start = Vec3(0.0, 0.0, cfg.flight_altitude)
        goal = Vec3(cfg.goal_distance, 0.0, cfg.flight_altitude)
        zone_map = ZoneMap(start, goal)

        half_width = cfg.corridor_width / 2.0
        bounds = AABB(
            Vec3(-50.0, -half_width - 50.0, 0.0),
            Vec3(cfg.goal_distance + 50.0, half_width + 50.0, 60.0),
        )
        world = World(bounds)

        cluster_centers = self._place_cluster_centers(cfg, zone_map, rng)
        for center in cluster_centers:
            for obstacle in self._spawn_cluster(cfg, center, start, goal, rng):
                # Gaussian scatter occasionally lands outside the corridor;
                # such obstacles can never affect the mission, so drop them.
                if world.bounds.contains(obstacle.center):
                    world.add_obstacle(obstacle)

        return GeneratedEnvironment(
            config=cfg,
            world=world,
            start=start,
            goal=goal,
            zone_map=zone_map,
            cluster_centers=cluster_centers,
        )

    def _place_cluster_centers(
        self, cfg: EnvironmentConfig, zone_map: ZoneMap, rng: random.Random
    ) -> List[Vec3]:
        """Drop cluster centres inside the congested zones (A and C)."""
        centers: List[Vec3] = []
        for zone in zone_map.zones:
            if not zone.congested:
                continue
            for _ in range(cfg.clusters_per_zone):
                fraction = rng.uniform(zone.start_fraction, zone.end_fraction)
                lateral = rng.uniform(-cfg.corridor_width / 4.0, cfg.corridor_width / 4.0)
                base = zone_map.start.lerp(zone_map.goal, fraction)
                centers.append(Vec3(base.x, base.y + lateral, cfg.flight_altitude))
        return centers

    def _spawn_cluster(
        self,
        cfg: EnvironmentConfig,
        center: Vec3,
        start: Vec3,
        goal: Vec3,
        rng: random.Random,
    ) -> Iterable[Obstacle]:
        """Spawn Gaussian-scattered obstacles around one cluster centre.

        The obstacle count is chosen so that the *peak* areal density near the
        cluster centre approximates ``cfg.obstacle_density``; density then
        falls off outward with the Gaussian, reproducing the "gradual
        reduction of congestion outward from their center" the paper
        describes.  Obstacles overlapping the mission start or goal are
        rejected so every environment remains solvable.
        """
        sigma = cfg.obstacle_spread / 2.0
        mean_footprint = sum(w * d for w, d in self._FOOTPRINTS) / len(self._FOOTPRINTS)
        cluster_area = math.pi * sigma**2
        target_count = max(3, int(cfg.obstacle_density * cluster_area / mean_footprint))

        obstacles: List[Obstacle] = []
        attempts = 0
        max_attempts = target_count * 10
        keep_clear = 12.0  # metres around start/goal that stay obstacle-free
        while len(obstacles) < target_count and attempts < max_attempts:
            attempts += 1
            dx = rng.gauss(0.0, sigma)
            dy = rng.gauss(0.0, sigma)
            footprint = self._FOOTPRINTS[rng.randrange(len(self._FOOTPRINTS))]
            pos = Vec3(center.x + dx, center.y + dy, cfg.obstacle_height / 2.0)
            if pos.horizontal_distance_to(start) < keep_clear:
                continue
            if pos.horizontal_distance_to(goal) < keep_clear:
                continue
            box = AABB.from_center(
                pos, Vec3(footprint[0], footprint[1], cfg.obstacle_height)
            )
            obstacles.append(Obstacle(box, name=f"obs_{len(obstacles)}"))
        return obstacles

    # ------------------------------------------------------------------
    # Evaluation suites
    # ------------------------------------------------------------------
    def generate_suite(
        self,
        densities: Sequence[float] = DENSITY_LEVELS,
        spreads: Sequence[float] = SPREAD_LEVELS_M,
        goal_distances: Sequence[float] = GOAL_DISTANCE_LEVELS_M,
        seed: Optional[int] = None,
    ) -> List[GeneratedEnvironment]:
        """Generate the full evaluation grid (27 environments by default)."""
        base_seed = self.default_seed if seed is None else seed
        suite: List[GeneratedEnvironment] = []
        for index, (density, spread, goal) in enumerate(
            itertools.product(densities, spreads, goal_distances)
        ):
            cfg = EnvironmentConfig(
                obstacle_density=density,
                obstacle_spread=spread,
                goal_distance=goal,
                seed=base_seed + index,
            )
            suite.append(self.generate(cfg))
        return suite

    def suite_configs(
        self,
        densities: Sequence[float] = DENSITY_LEVELS,
        spreads: Sequence[float] = SPREAD_LEVELS_M,
        goal_distances: Sequence[float] = GOAL_DISTANCE_LEVELS_M,
    ) -> List[EnvironmentConfig]:
        """The configuration grid without generating worlds (cheap)."""
        return [
            EnvironmentConfig(obstacle_density=d, obstacle_spread=s, goal_distance=g)
            for d, s, g in itertools.product(densities, spreads, goal_distances)
        ]

    def congestion_map(
        self, environment: GeneratedEnvironment, cell: float = 30.0
    ) -> Dict[Tuple[int, int], float]:
        """Coarse 2-D congestion heat map (the data behind Figure 9).

        Returns a mapping from (ix, iy) grid cell to local obstacle density at
        flight altitude.
        """
        cfg = environment.config
        result: Dict[Tuple[int, int], float] = {}
        x = environment.world.bounds.min_corner.x
        ix = 0
        while x < environment.world.bounds.max_corner.x:
            y = environment.world.bounds.min_corner.y
            iy = 0
            while y < environment.world.bounds.max_corner.y:
                probe = Vec3(x + cell / 2.0, y + cell / 2.0, cfg.flight_altitude)
                result[(ix, iy)] = environment.world.obstacle_density(probe, cell / 2.0)
                y += cell
                iy += 1
            x += cell
            ix += 1
        return result
