"""Mission zones.

Every generated environment in the paper "contains two congested (A and C)
zones and one non-congested (B) zone.  Congested zones are located at the
beginning and end of the mission to emulate warehouse-building or
hospital-building combinations" (§V-B).  The zone map partitions the mission
corridor so that the analysis code can attribute decisions, latencies and
velocities to zones A, B and C when reproducing Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class Zone:
    """One zone of the mission corridor.

    Zones are defined by their extent along the mission axis (the straight
    line from start to goal), expressed as fractions of the total goal
    distance, so the same zone layout applies to every goal-distance setting.
    """

    name: str
    start_fraction: float
    end_fraction: float
    congested: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ValueError(
                f"zone fractions must satisfy 0 <= start < end <= 1, got "
                f"[{self.start_fraction}, {self.end_fraction}]"
            )

    def contains_fraction(self, fraction: float) -> bool:
        """True when a normalised mission progress value falls in this zone."""
        return self.start_fraction <= fraction <= self.end_fraction


class ZoneMap:
    """Maps positions along the mission corridor to zones A, B and C."""

    def __init__(self, start: Vec3, goal: Vec3, zones: Optional[Sequence[Zone]] = None) -> None:
        if start.distance_to(goal) <= 0:
            raise ValueError("mission start and goal must be distinct")
        self.start = start
        self.goal = goal
        self.zones: List[Zone] = list(zones) if zones is not None else self.default_zones()

    @staticmethod
    def default_zones() -> List[Zone]:
        """The paper's A/B/C layout: congested ends, a long homogeneous middle."""
        return [
            Zone("A", 0.0, 0.25, congested=True),
            Zone("B", 0.25, 0.75, congested=False),
            Zone("C", 0.75, 1.0, congested=True),
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def progress_fraction(self, position: Vec3) -> float:
        """Project a position onto the start→goal axis, clamped to [0, 1]."""
        axis = self.goal - self.start
        length_sq = axis.norm_sq()
        t = (position - self.start).dot(axis) / length_sq
        return min(1.0, max(0.0, t))

    def zone_at(self, position: Vec3) -> Zone:
        """The zone containing a position (positions past the goal map to the last zone)."""
        fraction = self.progress_fraction(position)
        for zone in self.zones:
            if zone.contains_fraction(fraction):
                return zone
        return self.zones[-1]

    def zone_named(self, name: str) -> Zone:
        """Look a zone up by name.

        Raises:
            KeyError: when no zone has the given name.
        """
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone named {name!r}")

    def zone_boundaries(self) -> Dict[str, tuple[float, float]]:
        """Zone name → (start_fraction, end_fraction)."""
        return {z.name: (z.start_fraction, z.end_fraction) for z in self.zones}

    def congested_zone_names(self) -> List[str]:
        """Names of the congested zones (A and C in the default layout)."""
        return [z.name for z in self.zones if z.congested]

    def zone_centers(self) -> Dict[str, Vec3]:
        """World-space centre point of each zone along the mission axis."""
        centers: Dict[str, Vec3] = {}
        for zone in self.zones:
            mid = 0.5 * (zone.start_fraction + zone.end_fraction)
            centers[zone.name] = self.start.lerp(self.goal, mid)
        return centers
