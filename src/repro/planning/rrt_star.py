"""RRT* piece-wise planning.

"Piece-wise planning stochastically samples the map until a collision-free
path to the destination is found.  We use the RRT* planner from the OMPL
library due to its asymptotic optimality" (§III-A).  This module is the OMPL
substitute: a self-contained RRT* whose collision checks run against the
reduced :class:`~repro.perception.planning_view.PlanningView` and that exposes
the two hooks RoboRun's operators need:

* the **planner precision operator** — collision checks use a sampled ray
  cast whose step follows the requested planning precision; and
* the **planner volume operator** — a *volume monitor* tracks the volume of
  space explored (sampled) so far and "stops the search upon exceeding the
  threshold" (§III-B).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import hotpath
from repro.geometry.aabb import AABB
from repro.geometry.grid import voxel_key
from repro.geometry.vec3 import Vec3
from repro.perception.planning_view import PlanningView
from repro.perception.spatial_index import (
    PackedCellTable,
    cell_margin_radius,
    point_hits_cells,
    segment_hits_cells,
)

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class RRTStarConfig:
    """Tuning parameters for the RRT* search.

    Attributes:
        max_iterations: sampling iterations before giving up.
        step_size: maximum edge length when extending the tree, metres.
        goal_bias: probability of sampling the goal directly.
        goal_tolerance: distance at which a node counts as reaching the goal.
        rewire_radius: neighbourhood radius for the RRT* rewiring step.
        collision_margin: obstacle inflation applied during collision checks.
        collision_ray_step: step of the sampled collision ray cast (the
            planning precision knob); ``None`` uses exact segment tests.
        max_explored_volume: planner volume budget in m^3; ``None`` disables
            the volume monitor.
        exploration_cell: edge of the cells used to measure explored volume.
        seed: RNG seed for reproducible planning.
    """

    max_iterations: int = 600
    step_size: float = 4.0
    goal_bias: float = 0.2
    goal_tolerance: float = 8.0
    rewire_radius: float = 8.0
    collision_margin: float = 1.0
    collision_ray_step: Optional[float] = None
    max_explored_volume: Optional[float] = None
    exploration_cell: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 <= self.goal_bias <= 1.0:
            raise ValueError("goal_bias must be in [0, 1]")
        if self.goal_tolerance <= 0:
            raise ValueError("goal_tolerance must be positive")
        if self.exploration_cell <= 0:
            raise ValueError("exploration_cell must be positive")


@dataclass
class _TreeNode:
    """Internal RRT* tree node."""

    position: Vec3
    parent: Optional[int]
    cost: float


@dataclass(frozen=True, slots=True)
class PlanResult:
    """Outcome of one planning query.

    Attributes:
        success: True when a collision-free path to (or within the goal
            tolerance of) the goal was found.
        waypoints: the piece-wise path from start towards the goal (empty on
            failure).
        iterations: sampling iterations actually executed.
        nodes_expanded: number of nodes added to the tree.
        explored_volume: volume of space explored by the sampler, m^3.
        stopped_by_volume_monitor: True when the search terminated because the
            planner volume budget was exhausted.
        path_length: total length of the returned path, metres.
        collision_samples: number of points probed by the collision ray caster
            across the whole search — the quantity the planning precision knob
            controls and the compute model charges.
        rewires: number of tree edges re-parented by the RRT* rewiring pass —
            an observability counter (how much the asymptotically-optimal
            machinery actually worked), not a cost-model input.
    """

    success: bool
    waypoints: Tuple[Vec3, ...]
    iterations: int
    nodes_expanded: int
    explored_volume: float
    stopped_by_volume_monitor: bool
    path_length: float
    collision_samples: int = 0
    rewires: int = 0


class _CollisionChecker:
    """Counts ray-cast samples while probing the planning view's cell grid.

    The checker runs on the spatial-index collision primitives directly —
    the view's cell set and precision are fetched once, so the planner's
    hottest loop (thousands of segment probes per plan) avoids the per-call
    attribute traffic and per-sample point allocation of the view methods.
    """

    def __init__(self, view: PlanningView, margin: float, ray_step: Optional[float]) -> None:
        self.view = view
        self.cells = view.cells
        self.precision = view.precision
        self.margin = margin
        self.step = ray_step if ray_step is not None else view.precision
        self.samples = 0
        self._table = PackedCellTable(view.cells) if hotpath.enabled() else None

    def point(self, point: Vec3) -> bool:
        self.samples += 1
        return point_hits_cells(self.cells, self.precision, point, self.margin)

    def segment(self, start: Vec3, end: Vec3) -> bool:
        effective = min(self.step, self.precision)
        if effective <= 0:
            effective = self.precision
        self.samples += int(start.distance_to(end) / max(effective, 1e-6)) + 2
        if self._table is not None:
            return self._segment_batched(start, end)
        return segment_hits_cells(
            self.cells, self.precision, start, end, self.step, self.margin
        )

    def _segment_batched(self, start: Vec3, end: Vec3) -> bool:
        """One membership pass over every probe of one segment.

        Probe parameters are accumulated with :func:`np.cumsum` (a sequential
        reduction matching the scalar ``t += step`` floats exactly) and the
        same strict ``t < length`` cut-off and end-point probe apply, so the
        verdict is bit-identical to :func:`segment_hits_cells`.
        """
        table = self._table
        if table is None or table.size == 0:
            return False
        res = self.precision
        effective = min(self.step, res)
        sx, sy, sz = start.x, start.y, start.z
        dx, dy, dz = end.x - sx, end.y - sy, end.z - sz
        length = math.sqrt(dx * dx + dy * dy + dz * dz)
        if effective <= 0 or length <= _EPS:
            return segment_hits_cells(
                self.cells, res, start, end, self.step, self.margin
            )
        max_probes = int(length / effective) + 2
        ts = np.concatenate(
            ([0.0], np.cumsum(np.full(max_probes, effective, dtype=np.float64)))
        )
        ts = ts[ts < length]
        unit = np.array((dx / length, dy / length, dz / length))
        p = np.empty((ts.shape[0] + 1, 3), dtype=np.float64)
        p[:-1] = np.array((sx, sy, sz)) + unit[None, :] * ts[:, None]
        p[-1] = (end.x, end.y, end.z)
        keys = np.floor(p / res).astype(np.int64)
        radius = cell_margin_radius(self.margin, res)
        return bool(table.contains_batch(keys, radius).any())


class _PositionBuffer:
    """Growable ``(N, 3)`` array mirroring the RRT* node positions.

    Keeps the nearest-node and rewire-neighbourhood scans — executed once per
    sampling iteration over every node so far — as single vectorised distance
    passes instead of per-node ``Vec3`` arithmetic.
    """

    __slots__ = ("data", "count")

    def __init__(self, start: Vec3) -> None:
        self.data = np.empty((64, 3), dtype=np.float64)
        self.count = 0
        self.append(start)

    def append(self, position: Vec3) -> None:
        if self.count == self.data.shape[0]:
            grown = np.empty((self.data.shape[0] * 2, 3), dtype=np.float64)
            grown[: self.count] = self.data
            self.data = grown
        self.data[self.count] = (position.x, position.y, position.z)
        self.count += 1

    def distances_to(self, point: Vec3) -> np.ndarray:
        """Distance from every stored node to ``point``, matching
        ``Vec3.distance_to``'s summation order bit for bit."""
        d = self.data[: self.count] - np.array((point.x, point.y, point.z))
        return np.sqrt((d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2])


class RRTStarPlanner:
    """RRT* over a planning view, bounded by a sampling region."""

    def __init__(self, config: Optional[RRTStarConfig] = None) -> None:
        self.config = config or RRTStarConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self,
        start: Vec3,
        goal: Vec3,
        view: PlanningView,
        bounds: AABB,
        config: Optional[RRTStarConfig] = None,
    ) -> PlanResult:
        """Search for a collision-free path from ``start`` to ``goal``.

        A node within ``goal_tolerance`` of the goal terminates the search; if
        the straight connection to the exact goal point is free it is appended,
        otherwise the path ends at that node (the goal may sit inside an
        obstacle when it is a receding-horizon waypoint rather than the true
        mission goal).

        Args:
            start: start position (must be collision-free).
            goal: goal position.
            view: the reduced occupancy view handed over by perception.
            bounds: sampling region; samples are drawn uniformly inside it.
            config: optional per-query configuration overriding the planner's
                default (the runtime uses this to apply per-decision knobs).
        """
        cfg = config or self.config
        rng = random.Random(cfg.seed)
        checker = _CollisionChecker(view, cfg.collision_margin, cfg.collision_ray_step)

        # If the start already violates the inflated clearance (the drone is
        # hugging an obstacle), drop the inflation for this query so the
        # planner can squeeze back out instead of failing forever.
        if checker.point(start):
            checker.margin = 0.0
            if checker.point(start):
                return self._failure(
                    iterations=0,
                    nodes=0,
                    explored=0.0,
                    by_volume=False,
                    samples=checker.samples,
                )

        nodes: List[_TreeNode] = [_TreeNode(position=start, parent=None, cost=0.0)]
        positions = _PositionBuffer(start) if hotpath.enabled() else None
        explored_cells: Set[Tuple[int, int, int]] = {
            voxel_key(start, cfg.exploration_cell)
        }
        cell_volume = cfg.exploration_cell**3
        goal_node_index: Optional[int] = None
        stopped_by_volume = False
        iterations = 0
        rewires = 0

        for iterations in range(1, cfg.max_iterations + 1):
            explored_volume = len(explored_cells) * cell_volume
            if (
                cfg.max_explored_volume is not None
                and explored_volume >= cfg.max_explored_volume
            ):
                stopped_by_volume = True
                break

            sample = self._sample(rng, goal, bounds, cfg)

            nearest_index = self._nearest(nodes, sample, positions)
            new_position = self._steer(nodes[nearest_index].position, sample, cfg.step_size)
            if not bounds.contains(new_position):
                new_position = bounds.clamp_point(new_position)
            if checker.point(new_position):
                continue
            if checker.segment(nodes[nearest_index].position, new_position):
                continue

            new_index, new_rewires = self._insert_with_rewire(
                nodes, new_position, nearest_index, checker, cfg, positions
            )
            rewires += new_rewires
            explored_cells.add(voxel_key(new_position, cfg.exploration_cell))

            if new_position.distance_to(goal) <= cfg.goal_tolerance:
                if not checker.segment(new_position, goal):
                    goal_cost = nodes[new_index].cost + new_position.distance_to(goal)
                    nodes.append(_TreeNode(position=goal, parent=new_index, cost=goal_cost))
                    if positions is not None:
                        positions.append(goal)
                    goal_node_index = len(nodes) - 1
                else:
                    goal_node_index = new_index
                break

        explored_volume = len(explored_cells) * cell_volume
        if goal_node_index is None:
            return self._failure(
                iterations=iterations,
                nodes=len(nodes),
                explored=explored_volume,
                by_volume=stopped_by_volume,
                samples=checker.samples,
                rewires=rewires,
            )

        waypoints = self._extract_path(nodes, goal_node_index)
        return PlanResult(
            success=True,
            waypoints=tuple(waypoints),
            iterations=iterations,
            nodes_expanded=len(nodes),
            explored_volume=explored_volume,
            stopped_by_volume_monitor=stopped_by_volume,
            path_length=_path_length(waypoints),
            collision_samples=checker.samples,
            rewires=rewires,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _failure(
        iterations: int,
        nodes: int,
        explored: float,
        by_volume: bool,
        samples: int,
        rewires: int = 0,
    ) -> PlanResult:
        return PlanResult(
            success=False,
            waypoints=(),
            iterations=iterations,
            nodes_expanded=nodes,
            explored_volume=explored,
            stopped_by_volume_monitor=by_volume,
            path_length=0.0,
            collision_samples=samples,
            rewires=rewires,
        )

    @staticmethod
    def _sample(
        rng: random.Random, goal: Vec3, bounds: AABB, cfg: RRTStarConfig
    ) -> Vec3:
        if rng.random() < cfg.goal_bias:
            return goal
        lo, hi = bounds.min_corner, bounds.max_corner
        return Vec3(
            rng.uniform(lo.x, hi.x),
            rng.uniform(lo.y, hi.y),
            rng.uniform(lo.z, hi.z),
        )

    @staticmethod
    def _nearest(
        nodes: Sequence[_TreeNode],
        sample: Vec3,
        positions: Optional[_PositionBuffer] = None,
    ) -> int:
        if positions is not None:
            # argmin returns the first occurrence of the minimum, matching
            # the scalar loop's strict-< update rule.
            return int(np.argmin(positions.distances_to(sample)))
        best_index = 0
        best_dist = math.inf
        for index, node in enumerate(nodes):
            d = node.position.distance_to(sample)
            if d < best_dist:
                best_dist = d
                best_index = index
        return best_index

    @staticmethod
    def _steer(origin: Vec3, target: Vec3, step: float) -> Vec3:
        delta = target - origin
        distance = delta.norm()
        if distance <= step or distance == 0.0:
            return target
        return origin + delta * (step / distance)

    def _insert_with_rewire(
        self,
        nodes: List[_TreeNode],
        position: Vec3,
        nearest_index: int,
        checker: _CollisionChecker,
        cfg: RRTStarConfig,
        positions: Optional[_PositionBuffer] = None,
    ) -> Tuple[int, int]:
        # Choose the lowest-cost parent within the rewiring radius.  The
        # distance scan is the vectorisable part; the conditional collision
        # probes must stay a sequential short-circuit loop because the
        # checker's sample counter (charged by the compute model) depends on
        # exactly which segments get probed.
        if positions is not None:
            distances = positions.distances_to(position)
            neighbour_indices = [
                int(i) for i in np.flatnonzero(distances <= cfg.rewire_radius)
            ]
            best_cost = nodes[nearest_index].cost + float(distances[nearest_index])
        else:
            distances = None
            neighbour_indices = [
                i
                for i, node in enumerate(nodes)
                if node.position.distance_to(position) <= cfg.rewire_radius
            ]
            best_cost = nodes[nearest_index].cost + nodes[
                nearest_index
            ].position.distance_to(position)
        best_parent = nearest_index
        for i in neighbour_indices:
            if distances is not None:
                candidate_cost = nodes[i].cost + float(distances[i])
            else:
                candidate_cost = nodes[i].cost + nodes[i].position.distance_to(position)
            if candidate_cost < best_cost and not checker.segment(
                nodes[i].position, position
            ):
                best_parent = i
                best_cost = candidate_cost

        nodes.append(_TreeNode(position=position, parent=best_parent, cost=best_cost))
        if positions is not None:
            positions.append(position)
        new_index = len(nodes) - 1

        # Rewire neighbours through the new node when it shortens their cost.
        # Vec3.distance_to is exactly symmetric (the squared differences are
        # sign-insensitive), so the precomputed distances serve both passes.
        rewired = 0
        for i in neighbour_indices:
            if distances is not None:
                through_new = best_cost + float(distances[i])
            else:
                through_new = best_cost + position.distance_to(nodes[i].position)
            if through_new < nodes[i].cost and not checker.segment(
                position, nodes[i].position
            ):
                nodes[i] = _TreeNode(
                    position=nodes[i].position, parent=new_index, cost=through_new
                )
                rewired += 1
        return new_index, rewired

    @staticmethod
    def _extract_path(nodes: Sequence[_TreeNode], goal_index: int) -> List[Vec3]:
        path: List[Vec3] = []
        index: Optional[int] = goal_index
        guard = 0
        while index is not None:
            path.append(nodes[index].position)
            index = nodes[index].parent
            guard += 1
            if guard > len(nodes):
                raise RuntimeError("cycle detected while extracting the RRT* path")
        path.reverse()
        return path


def _path_length(waypoints: Sequence[Vec3]) -> float:
    return sum(a.distance_to(b) for a, b in zip(waypoints, waypoints[1:]))
