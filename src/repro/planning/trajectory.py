"""Time-parameterised trajectories.

A :class:`Trajectory` is the output of the path smoother and the input to the
flight controller.  The RoboRun profilers also read it: upcoming waypoints and
their planned velocities feed Algorithm 1's global time budget, and the
distance from the drone to the trajectory orders points for the OctoMap
volume operator.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One sample of a time-parameterised trajectory."""

    time: float
    position: Vec3
    velocity: Vec3

    @property
    def speed(self) -> float:
        """Scalar speed at this sample."""
        return self.velocity.norm()


@dataclass(frozen=True, slots=True)
class NearestWaypoint:
    """A trajectory sample together with its index in the sample sequence.

    Returned by :meth:`Trajectory.nearest_point_to` so callers that walk the
    trajectory from the nearest sample (e.g. the simulator's blocked-path
    check) can anchor at the exact sample rather than re-finding it by
    position equality — which silently picks the *first* occurrence when a
    path revisits a waypoint.
    """

    index: int
    point: TrajectoryPoint

    @property
    def position(self) -> Vec3:
        """Position of the underlying sample."""
        return self.point.position

    @property
    def time(self) -> float:
        """Timestamp of the underlying sample."""
        return self.point.time

    @property
    def velocity(self) -> Vec3:
        """Velocity of the underlying sample."""
        return self.point.velocity


class Trajectory:
    """A piecewise-linear, time-parameterised path.

    Samples must be strictly increasing in time.  Queries between samples
    interpolate linearly, which is adequate because the smoother emits densely
    spaced samples.
    """

    def __init__(self, points: Sequence[TrajectoryPoint]) -> None:
        if not points:
            raise ValueError("a trajectory needs at least one point")
        times = [p.time for p in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("trajectory sample times must be strictly increasing")
        self._points: List[TrajectoryPoint] = list(points)
        self._times = times

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> Sequence[TrajectoryPoint]:
        """The underlying samples."""
        return tuple(self._points)

    @property
    def start_time(self) -> float:
        """Time of the first sample."""
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Time of the last sample."""
        return self._times[-1]

    @property
    def duration(self) -> float:
        """Total duration in seconds."""
        return self.end_time - self.start_time

    @property
    def start(self) -> Vec3:
        """First position."""
        return self._points[0].position

    @property
    def goal(self) -> Vec3:
        """Last position."""
        return self._points[-1].position

    def length(self) -> float:
        """Total path length in metres."""
        total = 0.0
        for a, b in zip(self._points, self._points[1:]):
            total += a.position.distance_to(b.position)
        return total

    def max_speed(self) -> float:
        """Maximum sampled speed along the trajectory."""
        return max(p.speed for p in self._points)

    def mean_speed(self) -> float:
        """Path length divided by duration (0 for zero-duration trajectories)."""
        if self.duration == 0:
            return 0.0
        return self.length() / self.duration

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, time: float) -> TrajectoryPoint:
        """Interpolate the trajectory at an absolute time (clamped to the ends)."""
        if time <= self.start_time:
            return self._points[0]
        if time >= self.end_time:
            return self._points[-1]
        hi = bisect.bisect_right(self._times, time)
        lo = hi - 1
        a, b = self._points[lo], self._points[hi]
        span = b.time - a.time
        alpha = (time - a.time) / span
        return TrajectoryPoint(
            time=time,
            position=a.position.lerp(b.position, alpha),
            velocity=a.velocity.lerp(b.velocity, alpha),
        )

    def position_at(self, time: float) -> Vec3:
        """Interpolated position at an absolute time."""
        return self.sample(time).position

    def velocity_at(self, time: float) -> Vec3:
        """Interpolated velocity at an absolute time."""
        return self.sample(time).velocity

    # ------------------------------------------------------------------
    # Queries used by RoboRun
    # ------------------------------------------------------------------
    def nearest_point_to(self, position: Vec3) -> NearestWaypoint:
        """The sample closest to a world-space position, with its index.

        Exact distance ties — duplicate waypoints where the path revisits a
        position — resolve to the *latest* matching sample: the drone has
        already consumed the earlier visit, so look-ahead checks anchored at
        the returned index must start from the later one.
        """
        best_index = 0
        best_sq = math.inf
        for index, p in enumerate(self._points):
            dx = p.position.x - position.x
            dy = p.position.y - position.y
            dz = p.position.z - position.z
            d_sq = dx * dx + dy * dy + dz * dz
            if d_sq <= best_sq:
                best_index = index
                best_sq = d_sq
        return NearestWaypoint(index=best_index, point=self._points[best_index])

    def distance_to(self, position: Vec3) -> float:
        """Distance from a position to the nearest trajectory sample."""
        return self.nearest_point_to(position).position.distance_to(position)

    def upcoming_waypoints(self, time: float, count: int) -> List[TrajectoryPoint]:
        """Up to ``count`` samples at or after the given time.

        Algorithm 1 iterates over "the planned velocity and visibility for
        upcoming waypoints (W)"; the governor obtains W from this method.
        """
        if count < 0:
            raise ValueError("waypoint count cannot be negative")
        idx = bisect.bisect_left(self._times, time)
        return self._points[idx : idx + count]

    def waypoint_positions(self) -> List[Vec3]:
        """All sample positions, in order."""
        return [p.position for p in self._points]

    def remaining_length(self, time: float) -> float:
        """Path length from the sample nearest ``time`` to the end."""
        idx = bisect.bisect_left(self._times, time)
        idx = min(idx, len(self._points) - 1)
        total = 0.0
        for a, b in zip(self._points[idx:], self._points[idx + 1 :]):
            total += a.position.distance_to(b.position)
        return total

    @staticmethod
    def hover(position: Vec3, start_time: float = 0.0, duration: float = 1.0) -> "Trajectory":
        """A degenerate trajectory that stays at one position (hover)."""
        return Trajectory(
            [
                TrajectoryPoint(start_time, position, Vec3.zero()),
                TrajectoryPoint(start_time + duration, position, Vec3.zero()),
            ]
        )
