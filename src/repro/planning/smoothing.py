"""Path smoothing.

"We use Richter et al.'s Path Smoothing kernel to modify the piece-wise
trajectory to incorporate the MAV's dynamic constraints such as maximum
velocity" (§III-A).  Richter's method fits minimum-snap polynomials; the
behaviour RoboRun depends on is simpler: the piece-wise RRT* path must be
turned into a time-parameterised trajectory that (a) respects a maximum
velocity and acceleration, and (b) can be re-timed when the governor changes
the velocity cap.  :class:`PathSmoother` provides exactly that via shortcut
simplification, corner-rounding subdivision and a trapezoidal velocity
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.vec3 import Vec3
from repro.perception.planning_view import PlanningView
from repro.planning.trajectory import Trajectory, TrajectoryPoint


@dataclass(frozen=True, slots=True)
class SmoothingConfig:
    """Parameters of the smoothing kernel.

    Attributes:
        max_velocity: velocity cap applied to the trajectory, m/s.
        max_acceleration: acceleration cap for the trapezoidal profile, m/s^2.
        sample_spacing: spatial spacing of the emitted trajectory samples, m.
        corner_subdivisions: number of intermediate samples inserted when
            rounding each interior waypoint.
        shortcut_passes: how many shortcut-simplification passes to run when a
            planning view is supplied for collision checking.
    """

    max_velocity: float = 2.5
    max_acceleration: float = 2.0
    sample_spacing: float = 2.0
    corner_subdivisions: int = 3
    shortcut_passes: int = 2

    def __post_init__(self) -> None:
        if self.max_velocity <= 0:
            raise ValueError("max_velocity must be positive")
        if self.max_acceleration <= 0:
            raise ValueError("max_acceleration must be positive")
        if self.sample_spacing <= 0:
            raise ValueError("sample_spacing must be positive")
        if self.corner_subdivisions < 0:
            raise ValueError("corner_subdivisions cannot be negative")


class PathSmoother:
    """Turns piece-wise waypoint paths into dynamically feasible trajectories."""

    def __init__(self, config: Optional[SmoothingConfig] = None) -> None:
        self.config = config or SmoothingConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def smooth(
        self,
        waypoints: Sequence[Vec3],
        start_time: float = 0.0,
        view: Optional[PlanningView] = None,
        max_velocity: Optional[float] = None,
        collision_margin: float = 1.0,
    ) -> Trajectory:
        """Smooth and time-parameterise a waypoint path.

        Args:
            waypoints: the piece-wise path from the planner (at least one point).
            start_time: timestamp of the first trajectory sample.
            view: optional planning view; when given, shortcut simplification
                only removes waypoints if the shortcut stays collision-free.
            max_velocity: velocity cap overriding the configured one — this is
                how the governor's per-decision velocity choice reaches the
                trajectory.
            collision_margin: obstacle inflation used during shortcutting.

        Returns:
            A time-parameterised trajectory starting at ``start_time``.
        """
        if not waypoints:
            raise ValueError("cannot smooth an empty path")
        v_max = max_velocity if max_velocity is not None else self.config.max_velocity
        if v_max <= 0:
            raise ValueError("max velocity must be positive")

        points = list(waypoints)
        if len(points) == 1:
            return Trajectory.hover(points[0], start_time)

        if view is not None:
            for _ in range(self.config.shortcut_passes):
                points = self._shortcut(points, view, collision_margin)
        rounded = self._round_corners(points)
        # Corner rounding is not collision-checked; if it pulled the path into
        # an obstacle, fall back to the (already validated) piece-wise path.
        if view is not None and self._path_collides(rounded, view):
            rounded = points
        dense = self._resample(rounded)
        return self._time_parameterise(dense, start_time, v_max)

    # ------------------------------------------------------------------
    # Geometric simplification
    # ------------------------------------------------------------------
    def _shortcut(
        self, points: List[Vec3], view: PlanningView, margin: float
    ) -> List[Vec3]:
        """Remove interior waypoints whose removal keeps the path collision-free."""
        if len(points) <= 2:
            return points
        result = [points[0]]
        index = 0
        while index < len(points) - 1:
            # Greedily jump to the furthest waypoint reachable in a straight line.
            next_index = index + 1
            for candidate in range(len(points) - 1, index, -1):
                if not view.segment_in_collision(points[index], points[candidate], margin):
                    next_index = candidate
                    break
            result.append(points[next_index])
            index = next_index
        return result

    def _round_corners(self, points: List[Vec3]) -> List[Vec3]:
        """Insert Chaikin-style intermediate points to soften sharp corners."""
        if len(points) <= 2 or self.config.corner_subdivisions == 0:
            return points
        rounded: List[Vec3] = [points[0]]
        for prev, corner, nxt in zip(points, points[1:], points[2:]):
            for k in range(1, self.config.corner_subdivisions + 1):
                t = k / (self.config.corner_subdivisions + 1)
                before = prev.lerp(corner, 0.5 + 0.5 * t)
                after = corner.lerp(nxt, 0.5 * t)
                rounded.append(before.lerp(after, t))
        rounded.append(points[-1])
        return rounded

    @staticmethod
    def _path_collides(points: List[Vec3], view: PlanningView) -> bool:
        """True when any segment of the path intersects the view's occupied cells."""
        for a, b in zip(points, points[1:]):
            if view.segment_in_collision(a, b, margin=0.0):
                return True
        return False

    def _resample(self, points: List[Vec3]) -> List[Vec3]:
        """Resample the path at approximately uniform spatial spacing."""
        spacing = self.config.sample_spacing
        dense: List[Vec3] = [points[0]]
        for a, b in zip(points, points[1:]):
            segment_length = a.distance_to(b)
            if segment_length == 0.0:
                continue
            steps = max(1, int(math.ceil(segment_length / spacing)))
            for k in range(1, steps + 1):
                dense.append(a.lerp(b, k / steps))
        return dense

    # ------------------------------------------------------------------
    # Time parameterisation
    # ------------------------------------------------------------------
    def _time_parameterise(
        self, points: List[Vec3], start_time: float, v_max: float
    ) -> Trajectory:
        """Assign times using a trapezoidal (accelerate/cruise/brake) profile."""
        if len(points) == 1:
            return Trajectory.hover(points[0], start_time)

        cumulative = [0.0]
        for a, b in zip(points, points[1:]):
            cumulative.append(cumulative[-1] + a.distance_to(b))
        total_length = cumulative[-1]
        if total_length == 0.0:
            return Trajectory.hover(points[0], start_time)

        a_max = self.config.max_acceleration
        accel_distance = v_max**2 / (2.0 * a_max)
        samples: List[TrajectoryPoint] = []
        time = start_time
        previous_s = 0.0
        for index, s in enumerate(cumulative):
            speed = self._profile_speed(s, total_length, v_max, accel_distance, a_max)
            if index > 0:
                ds = s - previous_s
                # Advance time with the average of the segment's endpoint speeds,
                # floored to avoid a division blow-up near zero speed.
                prev_speed = samples[-1].speed
                mean_speed = max(0.5 * (speed + prev_speed), 0.05 * v_max)
                time += ds / mean_speed
            direction = self._direction_at(points, index)
            samples.append(
                TrajectoryPoint(time=time, position=points[index], velocity=direction * speed)
            )
            previous_s = s
        return Trajectory(samples)

    @staticmethod
    def _profile_speed(
        s: float, total: float, v_max: float, accel_distance: float, a_max: float
    ) -> float:
        """Trapezoidal speed as a function of arc length."""
        if total <= 2.0 * accel_distance:
            # Triangular profile: never reaches v_max.
            peak = math.sqrt(a_max * total)
            half = total / 2.0
            if s <= half:
                return math.sqrt(2.0 * a_max * s) if s > 0 else 0.0
            remaining = max(total - s, 0.0)
            return math.sqrt(2.0 * a_max * remaining) if remaining > 0 else 0.0
        if s < accel_distance:
            return math.sqrt(2.0 * a_max * s) if s > 0 else 0.0
        if s > total - accel_distance:
            remaining = max(total - s, 0.0)
            return math.sqrt(2.0 * a_max * remaining) if remaining > 0 else 0.0
        return v_max

    @staticmethod
    def _direction_at(points: List[Vec3], index: int) -> Vec3:
        """Unit travel direction at a sample (forward difference, backward at the end)."""
        if index < len(points) - 1:
            delta = points[index + 1] - points[index]
        else:
            delta = points[index] - points[index - 1]
        norm = delta.norm()
        if norm == 0.0:
            return Vec3.zero()
        return delta / norm
