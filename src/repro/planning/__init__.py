"""Planning: piece-wise path planning and smoothing.

The paper's planning stage "generates a collision-free path using two
kernels: piece-wise planning and path smoothing.  Piece-wise planning
stochastically samples the map until a collision-free path to the destination
is found.  We use the RRT* planner from the OMPL library ...  We use Richter
et al.'s Path Smoothing kernel to modify the piece-wise trajectory to
incorporate the MAV's dynamic constraints such as maximum velocity" (§III-A).

This package provides both kernels:

* :class:`~repro.planning.rrt_star.RRTStarPlanner` — RRT* over the planner's
  reduced map view, with the *planner volume monitor* hook ("our volume
  monitor stops the search upon exceeding the threshold") and a ray-step
  precision knob on its collision checks.
* :mod:`~repro.planning.smoothing` — piecewise cubic time-parameterised
  smoothing with velocity/acceleration limits, standing in for Richter et
  al.'s polynomial trajectory optimisation.
* :class:`~repro.planning.trajectory.Trajectory` — the time-parameterised
  result consumed by the controller and the profilers.
"""

from repro.planning.rrt_star import PlanResult, RRTStarConfig, RRTStarPlanner
from repro.planning.smoothing import PathSmoother, SmoothingConfig
from repro.planning.trajectory import Trajectory, TrajectoryPoint

__all__ = [
    "PathSmoother",
    "PlanResult",
    "RRTStarConfig",
    "RRTStarPlanner",
    "SmoothingConfig",
    "Trajectory",
    "TrajectoryPoint",
]
