"""RoboRun reproduction: a spatial-aware robot runtime (DAC 2021).

The package reproduces "RoboRun: A Robot Runtime to Exploit Spatial
Heterogeneity" end to end in pure Python: the navigation pipeline
(point cloud → occupancy octree → RRT* → smoothing → control), the
middleware substrate the runtime sits in, the drone/energy/compute models the
evaluation depends on, and — at its centre — the RoboRun governor, profilers
and operators plus the static spatial-oblivious baseline it is compared
against.  On top sit the procedural world library (:mod:`repro.worlds`:
archetype registry, heterogeneity fields, dynamic obstacles), the
scenario/campaign layer (declarative missions — single drone or an N-drone
fleet sharing one world and bus (:class:`~repro.simulation.fleet.
FleetSimulator`) — fanned across a process pool) and the analysis subsystem
(:mod:`repro.analysis`): structured mission traces, streaming JSONL trace
files, and the aggregators that fold traces into the paper's figures —
surfaced on the command line as ``python -m repro.report``.  The
observability layer (:mod:`repro.obs`) watches the runtime itself:
wall-clock spans with Chrome-trace export, a metrics registry with
Prometheus rendering, campaign heartbeats, and the ``python -m
repro.profile`` CLI — all opt-in and strictly off the data path.

Quick start::

    from repro import (
        EnvironmentConfig, EnvironmentGenerator, MissionConfig,
        MissionSimulator, RoboRunRuntime, SpatialObliviousRuntime,
    )

    env = EnvironmentGenerator().generate(EnvironmentConfig(goal_distance=150.0))
    result = MissionSimulator(env, RoboRunRuntime(), MissionConfig()).run()
    print(result.metrics.mission_time_s, result.metrics.mean_velocity_mps)
"""

from repro.analysis.figures import FigureTable
from repro.analysis.io import TraceReader, TraceWriter
from repro.analysis.recorder import TraceRecorder
from repro.analysis.report import CampaignReport
from repro.analysis.trace import DecisionRecord, MissionRecord
from repro.core.baseline import SpatialObliviousRuntime
from repro.core.budget import TimeBudgeter
from repro.core.governor import Governor, GovernorDecision
from repro.core.operators import OperatorSet
from repro.core.policy import KnobLimits, KnobPolicy, STATIC_BASELINE_POLICY
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.core.runtime import RoboRunRuntime
from repro.core.solver import KnobSolver, SolverResult
from repro.environment.generator import (
    EnvironmentConfig,
    EnvironmentGenerator,
    GeneratedEnvironment,
)
from repro.middleware.executor import DispatchRecord
from repro.middleware.topic import TopicNamespace
from repro.obs import (
    HeartbeatEmitter,
    HeartbeatRecord,
    MetricsRegistry,
    ObsTap,
    Tracer,
    configure_logging,
    get_logger,
)
from repro.simulation.campaign import (
    CAMPAIGN_MODES,
    CampaignResult,
    CampaignRunner,
    ScenarioOutcome,
)
from repro.simulation.faults import (
    CameraDegradation,
    CommsDropout,
    CommsLatencySpike,
    Fault,
    FaultSchedule,
    FaultSet,
    PowerBrownout,
    SensorDropout,
    StuckMover,
    ThermalThrottle,
    fault_names,
    register_fault,
)
from repro.simulation.fleet import FleetMetrics, FleetResult, FleetSimulator
from repro.simulation.orchestrator import FaultOrchestrator
from repro.simulation.metrics import DecisionTrace, MissionMetrics
from repro.simulation.mission import MissionConfig, MissionResult, MissionSimulator
from repro.simulation.pipeline import DecisionPipeline, PipelineHop
from repro.simulation.scenario import ScenarioSpec, scenario_grid
from repro.worlds import (
    DynamicObstacleSet,
    HeterogeneityField,
    MoverSpec,
    WorldSpec,
    archetype_names,
    build_environment,
    build_world,
    register_archetype,
)

__version__ = "0.10.0"

__all__ = [
    "CAMPAIGN_MODES",
    "CameraDegradation",
    "CampaignReport",
    "CampaignResult",
    "CampaignRunner",
    "CommsDropout",
    "CommsLatencySpike",
    "DecisionPipeline",
    "DecisionRecord",
    "DecisionTrace",
    "DispatchRecord",
    "DynamicObstacleSet",
    "EnvironmentConfig",
    "FigureTable",
    "EnvironmentGenerator",
    "Fault",
    "FaultOrchestrator",
    "FaultSchedule",
    "FaultSet",
    "FleetMetrics",
    "FleetResult",
    "FleetSimulator",
    "GeneratedEnvironment",
    "Governor",
    "GovernorDecision",
    "HeartbeatEmitter",
    "HeartbeatRecord",
    "HeterogeneityField",
    "KnobLimits",
    "KnobPolicy",
    "KnobSolver",
    "MissionConfig",
    "MissionMetrics",
    "MissionRecord",
    "MissionResult",
    "MetricsRegistry",
    "MissionSimulator",
    "MoverSpec",
    "ObsTap",
    "OperatorSet",
    "PipelineHop",
    "PowerBrownout",
    "ProfilerSuite",
    "RoboRunRuntime",
    "STATIC_BASELINE_POLICY",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SensorDropout",
    "SolverResult",
    "SpaceProfile",
    "SpatialObliviousRuntime",
    "StuckMover",
    "ThermalThrottle",
    "TimeBudgeter",
    "TopicNamespace",
    "TraceReader",
    "Tracer",
    "TraceRecorder",
    "TraceWriter",
    "WorldSpec",
    "__version__",
    "archetype_names",
    "build_environment",
    "build_world",
    "configure_logging",
    "fault_names",
    "get_logger",
    "register_archetype",
    "register_fault",
    "scenario_grid",
]
