"""The stopping-distance model (paper Equation 2).

The time budget (Eq. 1) subtracts the distance the drone needs to come to a
stop from the visible distance ahead.  The paper models that stopping
distance as a quadratic in velocity fitted from simulation:

    d_stop(v) = -0.055 v^2 - 0.36 v + 0.20         (Eq. 2, 2% MSE)

The published coefficients produce *negative* distances for v > ~0.5 m/s,
which only makes sense if the fitted quantity is the (negative) displacement
along the braking axis or the axes were flipped; a physical stopping distance
must be non-negative and grow with speed.  We therefore keep the published
form available verbatim (``paper_form=True``) for completeness but default to
the magnitude interpretation ``|−0.055 v^2 − 0.36 v| + 0.20``, which is the
standard v²/(2a) braking curve plus a reaction offset and reproduces the
paper's qualitative behaviour (budget shrinks as velocity rises, Figure 2b).
The model can also be re-fitted against the kinematic drone model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.drone import QuadrotorKinematics

# Published Eq. 2 coefficients (quadratic, linear, constant).
PAPER_COEFFICIENTS: Tuple[float, float, float] = (-0.055, -0.36, 0.20)


@dataclass(frozen=True, slots=True)
class StoppingDistanceModel:
    """Quadratic stopping-distance model ``d_stop(v) = a v^2 + b v + c``.

    Attributes:
        a, b, c: polynomial coefficients.
        paper_form: when True, :meth:`distance` evaluates the published
            polynomial verbatim (clamped at zero); when False (default) the
            magnitudes of the velocity terms are used so the distance grows
            with speed.
    """

    a: float = PAPER_COEFFICIENTS[0]
    b: float = PAPER_COEFFICIENTS[1]
    c: float = PAPER_COEFFICIENTS[2]
    paper_form: bool = False

    def distance(self, velocity: float) -> float:
        """Stopping distance in metres for a given speed in m/s."""
        if velocity < 0:
            raise ValueError("velocity cannot be negative")
        if self.paper_form:
            return max(0.0, self.a * velocity**2 + self.b * velocity + self.c)
        return abs(self.a) * velocity**2 + abs(self.b) * velocity + abs(self.c)

    def __call__(self, velocity: float) -> float:
        return self.distance(velocity)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @staticmethod
    def fit_from_kinematics(
        kinematics: QuadrotorKinematics,
        speeds: Optional[Sequence[float]] = None,
    ) -> "StoppingDistanceModel":
        """Fit the quadratic by measuring stopping distances on the drone model.

        Mirrors the paper's calibration procedure: fly at several velocities,
        measure the stopping distance, and least-squares fit a quadratic.
        """
        sample_speeds = list(speeds) if speeds is not None else [0.5 * k for k in range(1, 11)]
        if len(sample_speeds) < 3:
            raise ValueError("need at least three speeds to fit a quadratic")
        distances = [kinematics.stopping_distance(v) for v in sample_speeds]
        a, b, c = _fit_quadratic(sample_speeds, distances)
        return StoppingDistanceModel(a=a, b=b, c=c, paper_form=False)

    def mse_against(
        self, kinematics: QuadrotorKinematics, speeds: Sequence[float]
    ) -> float:
        """Mean squared error between the model and measured stopping distances."""
        if not speeds:
            raise ValueError("need at least one speed")
        errors = []
        for v in speeds:
            measured = kinematics.stopping_distance(v)
            errors.append((self.distance(v) - measured) ** 2)
        return sum(errors) / len(errors)


def _fit_quadratic(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit of ``y = a x^2 + b x + c`` via the normal equations."""
    design = np.vstack([np.square(xs), xs, np.ones(len(xs))]).T
    coeffs, *_ = np.linalg.lstsq(design, np.asarray(ys, dtype=float), rcond=None)
    return float(coeffs[0]), float(coeffs[1]), float(coeffs[2])
