"""Drone dynamics and energy.

The AirSim/Unreal physics substrate is replaced by a kinematic quadrotor
model with acceleration-limited velocity tracking, the paper's quadratic
stopping-distance model (Eq. 2) and a hover-dominated power model.  The paper
notes that "flight energy is highly correlated with flight time, as propellers
consume large amounts of energy even when hovering" and that "compute consumes
less than 0.05% of the overall MAV's energy" (§V-A) — the energy model encodes
exactly that structure so the 4X energy improvement emerges from the 4.5X
mission-time improvement rather than from compute power savings.
"""

from repro.dynamics.drone import DroneState, QuadrotorKinematics
from repro.dynamics.energy import EnergyModel
from repro.dynamics.stopping import StoppingDistanceModel

__all__ = [
    "DroneState",
    "EnergyModel",
    "QuadrotorKinematics",
    "StoppingDistanceModel",
]
