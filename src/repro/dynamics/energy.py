"""Flight and compute energy models.

The paper's energy argument (§V-A) has two parts the model must preserve:

1. "flight energy is highly correlated with flight time, as propellers
   consume large amounts of energy even when hovering" — so flight power is
   dominated by a large hover term with a comparatively small
   velocity-dependent term; and
2. "compute consumes less than 0.05% of the overall MAV's energy" — so
   reducing compute *power* barely matters; compute helps energy only by
   raising velocity and shortening the mission.

The default constants reproduce the paper's overall magnitudes: the baseline
mission (~2000 s) lands near 1000 kJ, i.e. roughly 500 W of flight power.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Hover-dominated drone power model.

    Attributes:
        hover_power_w: power drawn while hovering, watts.
        velocity_power_coeff: additional power per (m/s), watts — parasitic
            and induced drag grow with speed but remain small relative to the
            hover term at the paper's velocities.
        compute_power_w: average power of the onboard compute platform, watts.
            Chosen so compute stays well below 0.05% of total mission energy,
            matching the paper's observation.
    """

    hover_power_w: float = 450.0
    velocity_power_coeff: float = 20.0
    compute_power_w: float = 15.0

    def __post_init__(self) -> None:
        if self.hover_power_w <= 0:
            raise ValueError("hover power must be positive")
        if self.velocity_power_coeff < 0:
            raise ValueError("velocity power coefficient cannot be negative")
        if self.compute_power_w < 0:
            raise ValueError("compute power cannot be negative")

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def flight_power(self, speed: float) -> float:
        """Instantaneous flight power (watts) at the given speed."""
        if speed < 0:
            raise ValueError("speed cannot be negative")
        return self.hover_power_w + self.velocity_power_coeff * speed

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def flight_energy(self, duration_s: float, mean_speed: float = 0.0) -> float:
        """Flight energy in joules over a duration at a mean speed."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        return self.flight_power(mean_speed) * duration_s

    def compute_energy(self, busy_seconds: float) -> float:
        """Energy consumed by the compute platform while busy, joules."""
        if busy_seconds < 0:
            raise ValueError("busy time cannot be negative")
        return self.compute_power_w * busy_seconds

    def mission_energy(
        self, flight_time_s: float, mean_speed: float, compute_busy_s: float
    ) -> float:
        """Total mission energy in joules (flight plus compute)."""
        return self.flight_energy(flight_time_s, mean_speed) + self.compute_energy(
            compute_busy_s
        )

    def compute_energy_fraction(
        self, flight_time_s: float, mean_speed: float, compute_busy_s: float
    ) -> float:
        """Fraction of mission energy consumed by compute (paper: < 0.05%... of total)."""
        total = self.mission_energy(flight_time_s, mean_speed, compute_busy_s)
        if total == 0:
            return 0.0
        return self.compute_energy(compute_busy_s) / total
