"""Quadrotor kinematics.

A deliberately simple, acceleration-limited kinematic model: the drone tracks
commanded velocities with a first-order response bounded by a maximum
acceleration.  The paper's evaluation depends on velocity, stopping distance
and collision outcomes rather than attitude dynamics, so a point-mass model
is the appropriate level of fidelity (and keeps missions fast to simulate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class DroneState:
    """The drone's kinematic state at an instant."""

    time: float
    position: Vec3
    velocity: Vec3

    @property
    def speed(self) -> float:
        """Scalar speed, m/s."""
        return self.velocity.norm()


@dataclass
class QuadrotorKinematics:
    """Acceleration-limited velocity-tracking point-mass model.

    Attributes:
        max_acceleration: magnitude limit on acceleration, m/s^2.
        max_velocity: hard physical velocity limit of the airframe, m/s
            (the runtime usually commands well below this).
        drag_time_constant: first-order time constant with which commanded
            velocity is approached, seconds.
    """

    max_acceleration: float = 3.5
    max_velocity: float = 10.0
    drag_time_constant: float = 0.25

    def __post_init__(self) -> None:
        if self.max_acceleration <= 0:
            raise ValueError("max acceleration must be positive")
        if self.max_velocity <= 0:
            raise ValueError("max velocity must be positive")
        if self.drag_time_constant <= 0:
            raise ValueError("drag time constant must be positive")

    def step(self, state: DroneState, commanded_velocity: Vec3, dt: float) -> DroneState:
        """Advance the drone by one control period.

        The commanded velocity is clamped to the airframe limit, approached
        with a first-order response and the resulting acceleration is clamped
        to the airframe's maximum.

        Args:
            state: current state.
            commanded_velocity: velocity requested by the flight controller.
            dt: step duration in seconds; must be positive.
        """
        if dt <= 0:
            raise ValueError("time step must be positive")

        command = commanded_velocity
        speed = command.norm()
        if speed > self.max_velocity:
            command = command * (self.max_velocity / speed)

        # First-order velocity tracking with acceleration clamping.
        alpha = min(1.0, dt / self.drag_time_constant)
        desired_delta = (command - state.velocity) * alpha
        max_delta = self.max_acceleration * dt
        delta_norm = desired_delta.norm()
        if delta_norm > max_delta and delta_norm > 0.0:
            desired_delta = desired_delta * (max_delta / delta_norm)

        new_velocity = state.velocity + desired_delta
        new_position = state.position + (state.velocity + new_velocity) * (0.5 * dt)
        return DroneState(
            time=state.time + dt,
            position=new_position,
            velocity=new_velocity,
        )

    def coast_to_stop(self, state: DroneState, dt: float = 0.05) -> DroneState:
        """Brake at maximum deceleration until the drone stops.

        Used to measure stopping distances when calibrating the stopping
        model, mirroring how the paper fits Eq. 2 "by flying the drone with
        various velocities in simulation and measuring the stopping distance".
        """
        current = state
        guard = 0
        while current.speed > 1e-3:
            current = self.step(current, Vec3.zero(), dt)
            guard += 1
            if guard > 100_000:
                raise RuntimeError("drone failed to stop; check the dynamics parameters")
        return current

    def stopping_distance(self, speed: float, dt: float = 0.05) -> float:
        """Measured distance needed to stop from the given speed."""
        if speed < 0:
            raise ValueError("speed cannot be negative")
        start = DroneState(time=0.0, position=Vec3.zero(), velocity=Vec3(speed, 0.0, 0.0))
        stopped = self.coast_to_stop(start, dt)
        return stopped.position.distance_to(start.position)
