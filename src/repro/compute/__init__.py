"""Compute-cost models — the substitute for the paper's Intel i9 testbed.

The paper measures each pipeline kernel's latency on real hardware and fits
the polynomial model of Eq. 4 to a profiled grid of precision/volume
combinations (<8% MSE).  Offline we cannot measure an i9 running OctoMap and
OMPL, so this package provides two layers that play the same two roles:

* :class:`~repro.compute.costs.WorkloadCostModel` — the "ground truth"
  substitute: converts the *work actually performed* by each kernel (pixels
  converted, map cells updated, planner iterations, bytes communicated) into
  seconds using per-operation costs calibrated so the static baseline's
  end-to-end latency lands in the multi-second range the paper reports.
  The mission simulator charges this model's output against the simulated
  clock.
* :class:`~repro.compute.latency_model.StageLatencyModel` — Eq. 4 itself:
  ``δ_i(p_i, v_i) = (q0·p̂³ + q1·p̂² + q2·p̂)(q3·v_i)`` with ``p̂ = 1/p``.
  The governor's solver uses this model, and
  :func:`~repro.compute.latency_model.fit_stage_model` reproduces the paper's
  calibration step by fitting the coefficients to a profiled grid generated
  from the workload cost model.
"""

from repro.compute.costs import KernelWork, WorkloadCostModel
from repro.compute.latency_model import (
    PipelineLatencyModel,
    StageLatencyModel,
    fit_stage_model,
)
from repro.compute.utilization import CpuUtilizationTracker

__all__ = [
    "CpuUtilizationTracker",
    "KernelWork",
    "PipelineLatencyModel",
    "StageLatencyModel",
    "WorkloadCostModel",
    "fit_stage_model",
]
