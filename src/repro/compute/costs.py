"""Per-operation compute costs.

The mission simulator needs a latency for every kernel invocation.  Rather
than inventing latencies directly, each kernel reports the *work* it actually
did (how many pixels were converted, how many map cells were touched, how many
planner iterations ran) and :class:`WorkloadCostModel` converts that work into
seconds.  This keeps latency causally tied to the knobs: lowering precision
really does reduce the number of cells touched, which is what reduces the
charged latency — the same causal chain the paper exploits.

Default constants are calibrated so that the static baseline configuration
(Table II: 0.3 m precision, 46 000 m³ map volume) produces end-to-end decision
latencies of a few seconds, matching Figure 11's baseline traces, while the
fixed point-cloud conversion cost is ~210 ms and RoboRun's own overhead is
~50 ms as reported in §V-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass(frozen=True, slots=True)
class KernelWork:
    """Work performed by the pipeline during one decision.

    All counts are plain operation counts reported by the kernels themselves;
    zero is always a valid value (a kernel that did not run did no work).
    """

    pixels_converted: int = 0
    cloud_points: int = 0
    map_cells_updated: int = 0
    map_occupied_cells: int = 0
    view_cells: int = 0
    planner_iterations: int = 0
    planner_nodes: int = 0
    planner_collision_samples: int = 0
    smoother_waypoints: int = 0
    messages_sent: int = 0
    message_payload_items: int = 0

    def __post_init__(self) -> None:
        for name in (
            "pixels_converted",
            "cloud_points",
            "map_cells_updated",
            "map_occupied_cells",
            "view_cells",
            "planner_iterations",
            "planner_nodes",
            "planner_collision_samples",
            "smoother_waypoints",
            "messages_sent",
            "message_payload_items",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True, slots=True)
class WorkloadCostModel:
    """Converts kernel work counts into per-stage latencies (seconds).

    Attributes:
        point_cloud_fixed_s: fixed cost of the point-cloud kernel per decision
            (the paper reports a ~210 ms fixed point-cloud latency for both
            designs).
        point_cloud_per_pixel_s: additional cost per camera pixel converted.
        octomap_per_cell_s: cost per occupancy cell updated during insertion.
        view_per_cell_s: cost per cell placed in the perception→planning view
            (sub-sampling, pruning and serialisation of the tree).
        planner_per_iteration_s: fixed cost per RRT* sampling iteration
            (sampling, nearest-neighbour search).
        planner_per_node_s: additional cost per tree node (rewiring work).
        planner_per_sample_s: cost per collision ray-cast sample — the term the
            planning precision knob controls (a finer ray step probes more
            samples per segment).
        smoother_per_waypoint_s: cost per waypoint processed by the smoother.
        runtime_overhead_s: RoboRun's own per-decision cost (profilers,
            governor, solver); the paper reports ~50 ms.
        comm_per_message_s: fixed cost per message exchanged between nodes.
        comm_per_item_s: cost per payload item (point, cell, waypoint)
            serialised.
    """

    point_cloud_fixed_s: float = 0.210
    point_cloud_per_pixel_s: float = 2.0e-5
    octomap_per_cell_s: float = 9.0e-5
    view_per_cell_s: float = 6.0e-5
    planner_per_iteration_s: float = 2.0e-4
    planner_per_node_s: float = 3.0e-4
    planner_per_sample_s: float = 3.0e-5
    smoother_per_waypoint_s: float = 5.0e-4
    runtime_overhead_s: float = 0.050
    comm_per_message_s: float = 5.0e-3
    comm_per_item_s: float = 2.0e-6

    def __post_init__(self) -> None:
        for name in (
            "point_cloud_fixed_s",
            "point_cloud_per_pixel_s",
            "octomap_per_cell_s",
            "view_per_cell_s",
            "planner_per_iteration_s",
            "planner_per_node_s",
            "planner_per_sample_s",
            "smoother_per_waypoint_s",
            "runtime_overhead_s",
            "comm_per_message_s",
            "comm_per_item_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    # ------------------------------------------------------------------
    # Per-stage latencies
    # ------------------------------------------------------------------
    def point_cloud_latency(self, work: KernelWork) -> float:
        """Latency of the point-cloud kernel for one decision."""
        return self.point_cloud_fixed_s + self.point_cloud_per_pixel_s * work.pixels_converted

    def octomap_latency(self, work: KernelWork) -> float:
        """Latency of the OctoMap insertion for one decision."""
        return self.octomap_per_cell_s * work.map_cells_updated

    def perception_to_planning_latency(self, work: KernelWork) -> float:
        """Latency of building the reduced planner view."""
        return self.view_per_cell_s * work.view_cells

    def planning_latency(self, work: KernelWork) -> float:
        """Latency of the RRT* piece-wise planner."""
        return (
            self.planner_per_iteration_s * work.planner_iterations
            + self.planner_per_node_s * work.planner_nodes
            + self.planner_per_sample_s * work.planner_collision_samples
        )

    def smoothing_latency(self, work: KernelWork) -> float:
        """Latency of the path smoother."""
        return self.smoother_per_waypoint_s * work.smoother_waypoints

    def runtime_latency(self, spatial_aware: bool) -> float:
        """RoboRun's own overhead (zero for the spatial-oblivious baseline)."""
        return self.runtime_overhead_s if spatial_aware else 0.0

    def communication_latency(self, work: KernelWork) -> float:
        """Total communication latency for one decision."""
        return (
            self.comm_per_message_s * work.messages_sent
            + self.comm_per_item_s * work.message_payload_items
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def stage_latencies(self, work: KernelWork, spatial_aware: bool) -> Dict[str, float]:
        """Latency per canonical pipeline stage for one decision.

        Keys match :data:`repro.middleware.latency.ALL_STAGES`, with the
        communication total split evenly across the comm stages so Figure 11's
        stacked breakdown has the same structure as the paper's.
        """
        comm_total = self.communication_latency(work)
        comm_share = comm_total / 4.0
        return {
            "point_cloud": self.point_cloud_latency(work),
            "octomap": self.octomap_latency(work),
            "perception_to_planning": self.perception_to_planning_latency(work),
            "piecewise_planning": self.planning_latency(work),
            "path_smoothing": self.smoothing_latency(work),
            "runtime": self.runtime_latency(spatial_aware),
            "comm_point_cloud": comm_share,
            "comm_octomap": comm_share,
            "comm_planning": comm_share,
            "comm_control": comm_share,
        }

    def end_to_end_latency(self, work: KernelWork, spatial_aware: bool) -> float:
        """Total decision latency (compute plus communication)."""
        return sum(self.stage_latencies(work, spatial_aware).values())
