"""CPU-utilisation accounting.

The paper reports that RoboRun "reduces CPU-utilization by 36% on average per
decision by lowering the computational load when possible" (§V-A), freeing
resources for higher-level cognitive tasks.  Per decision we therefore define
utilisation as the fraction of the decision interval the CPU spends busy on
the navigation pipeline:

    utilisation = busy_seconds / decision_interval

where the decision interval runs from the start of one decision to the start
of the next (it is never shorter than the busy time itself, and never shorter
than the sensor sampling period — the pipeline cannot start a new decision
before new sensor data exists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True, slots=True)
class DecisionUtilization:
    """Utilisation of one decision."""

    decision_index: int
    busy_seconds: float
    interval_seconds: float

    def __post_init__(self) -> None:
        if self.busy_seconds < 0:
            raise ValueError("busy time cannot be negative")
        if self.interval_seconds <= 0:
            raise ValueError("decision interval must be positive")

    @property
    def utilization(self) -> float:
        """Busy fraction of the decision interval, clamped to [0, 1]."""
        return min(1.0, self.busy_seconds / self.interval_seconds)


class CpuUtilizationTracker:
    """Collects per-decision utilisation samples across a mission."""

    def __init__(self, sensor_period_s: float = 0.5) -> None:
        if sensor_period_s <= 0:
            raise ValueError("sensor period must be positive")
        self.sensor_period_s = sensor_period_s
        self._samples: List[DecisionUtilization] = []

    def record_decision(self, decision_index: int, busy_seconds: float) -> DecisionUtilization:
        """Record one decision's busy time.

        The decision interval is the larger of the busy time and the sensor
        sampling period: a decision that finishes early must still wait for
        fresh sensor data, which is exactly the idle time RoboRun frees up for
        other tasks.
        """
        interval = max(busy_seconds, self.sensor_period_s)
        sample = DecisionUtilization(
            decision_index=decision_index,
            busy_seconds=busy_seconds,
            interval_seconds=interval,
        )
        self._samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def samples(self) -> List[DecisionUtilization]:
        """All recorded samples in decision order."""
        return list(self._samples)

    def mean_utilization(self) -> float:
        """Average per-decision utilisation (0 when nothing recorded)."""
        if not self._samples:
            return 0.0
        return sum(s.utilization for s in self._samples) / len(self._samples)

    def total_busy_seconds(self) -> float:
        """Total CPU-busy seconds across the mission."""
        return sum(s.busy_seconds for s in self._samples)

    def headroom(self) -> float:
        """Average idle fraction per decision — the capacity freed for
        higher-level cognitive tasks such as semantic labelling."""
        return 1.0 - self.mean_utilization()
