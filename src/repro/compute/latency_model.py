"""The paper's per-stage latency model (Equation 4) and its calibration.

Equation 4 models each application-layer stage's latency as a function of its
precision and volume knobs:

    δ_i(p_i, v_i) = (q_{i,0} p̂_i³ + q_{i,1} p̂_i² + q_{i,2} p̂_i) · (q_{i,3} v_i)

with p̂ = 1/p ("this change of variables improves the numerical conditioning
of the optimization problem").  The governor's solver evaluates this model
when choosing knob settings, exactly as the paper does.

The paper obtains the coefficients by profiling "a representative set of
precision-volume combinations" and fitting the polynomial with <8% average
MSE.  :func:`fit_stage_model` reproduces that calibration step: it takes a
profiled grid (produced offline from the
:class:`~repro.compute.costs.WorkloadCostModel` by running the real kernels at
each combination) and least-squares fits the four coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

# Stage indices used by the solver, matching the paper's i = 0, 1, 2.
STAGE_PERCEPTION = "perception"
STAGE_PERCEPTION_TO_PLANNING = "perception_to_planning"
STAGE_PLANNING = "planning"
SOLVER_STAGES: Tuple[str, str, str] = (
    STAGE_PERCEPTION,
    STAGE_PERCEPTION_TO_PLANNING,
    STAGE_PLANNING,
)


@dataclass(frozen=True, slots=True)
class StageLatencyModel:
    """Equation 4 for one pipeline stage.

    Attributes:
        q0, q1, q2: coefficients on p̂³, p̂² and p̂.
        q3: volume coefficient (latency scales linearly with volume).
    """

    q0: float
    q1: float
    q2: float
    q3: float

    def latency(self, precision: float, volume: float) -> float:
        """Predicted latency (seconds) at the given precision (m) and volume (m³)."""
        if precision <= 0:
            raise ValueError("precision must be positive")
        if volume < 0:
            raise ValueError("volume cannot be negative")
        p_hat = 1.0 / precision
        precision_term = self.q0 * p_hat**3 + self.q1 * p_hat**2 + self.q2 * p_hat
        return max(0.0, precision_term * (self.q3 * volume))

    def __call__(self, precision: float, volume: float) -> float:
        return self.latency(precision, volume)

    def coefficients(self) -> Tuple[float, float, float, float]:
        """The coefficient vector ``q_i`` as a tuple."""
        return (self.q0, self.q1, self.q2, self.q3)


# Default per-stage coefficients, calibrated against the WorkloadCostModel
# defaults so that the static baseline (0.3 m precision, Table II volumes)
# lands in the multi-second latency regime the paper's Figure 11 shows.
DEFAULT_STAGE_MODELS: Dict[str, StageLatencyModel] = {
    # Perception (OctoMap insertion): dominated by cells updated, which grow
    # cubically as the voxel size shrinks and linearly with observed volume.
    STAGE_PERCEPTION: StageLatencyModel(q0=1.2e-3, q1=1.0e-4, q2=1.0e-5, q3=1.0e-3),
    # Perception→planning: sub-sampling and serialising the tree; slightly
    # cheaper per cell than insertion.
    STAGE_PERCEPTION_TO_PLANNING: StageLatencyModel(
        q0=4.0e-4, q1=5.0e-5, q2=5.0e-6, q3=4.0e-4
    ),
    # Planning: collision checks per sampled state grow with map precision and
    # the explored volume.
    STAGE_PLANNING: StageLatencyModel(q0=6.0e-4, q1=8.0e-5, q2=8.0e-6, q3=6.0e-4),
}


@dataclass(frozen=True, slots=True)
class LatencyProfileSample:
    """One profiled (precision, volume) → latency observation for a stage."""

    precision: float
    volume: float
    latency: float

    def __post_init__(self) -> None:
        if self.precision <= 0:
            raise ValueError("profiled precision must be positive")
        if self.volume < 0:
            raise ValueError("profiled volume cannot be negative")
        if self.latency < 0:
            raise ValueError("profiled latency cannot be negative")


def fit_stage_model(samples: Sequence[LatencyProfileSample]) -> StageLatencyModel:
    """Least-squares fit of the Eq. 4 coefficients to profiled samples.

    The model is bilinear in ``(q0, q1, q2)`` and ``q3``; following the paper
    we absorb ``q3`` into a single linear system by fitting the products
    ``q0·q3, q1·q3, q2·q3`` against features ``p̂³·v, p̂²·v, p̂·v`` and then
    reporting ``q3 = 1`` with the products folded into ``q0..q2``.  The
    resulting model predicts identical latencies, which is all the solver
    needs.

    Raises:
        ValueError: when fewer than four samples are provided (the system
            would be under-determined).
    """
    if len(samples) < 4:
        raise ValueError("need at least four profiled samples to fit Eq. 4")
    features = []
    targets = []
    for sample in samples:
        p_hat = 1.0 / sample.precision
        features.append(
            [
                p_hat**3 * sample.volume,
                p_hat**2 * sample.volume,
                p_hat * sample.volume,
            ]
        )
        targets.append(sample.latency)
    design = np.asarray(features, dtype=float)
    observed = np.asarray(targets, dtype=float)
    coeffs, *_ = np.linalg.lstsq(design, observed, rcond=None)
    return StageLatencyModel(
        q0=float(coeffs[0]), q1=float(coeffs[1]), q2=float(coeffs[2]), q3=1.0
    )


def model_mse(
    model: StageLatencyModel, samples: Sequence[LatencyProfileSample]
) -> float:
    """Relative mean squared error of a fitted model on profiled samples.

    Mirrors the paper's "<8% average MSE" quality metric: errors are expressed
    relative to the observed latency so the figure is comparable across
    stages with different absolute magnitudes.
    """
    if not samples:
        raise ValueError("need at least one sample")
    errors = []
    for sample in samples:
        predicted = model.latency(sample.precision, sample.volume)
        scale = max(sample.latency, 1e-9)
        errors.append(((predicted - sample.latency) / scale) ** 2)
    return float(sum(errors) / len(errors))


@dataclass(frozen=True, slots=True)
class PipelineLatencyModel:
    """End-to-end latency model across the three solver-visible stages.

    The solver's objective sums ``δ_i(p_i, v_i)`` over perception,
    perception→planning and planning; fixed costs that the knobs cannot change
    (the ~210 ms point-cloud conversion, RoboRun's ~50 ms runtime overhead and
    communication) are carried separately so the solver optimises only what it
    can influence while the governor still budgets for the full pipeline.
    """

    stages: Mapping[str, StageLatencyModel]
    fixed_overhead_s: float = 0.260

    def __post_init__(self) -> None:
        missing = [s for s in SOLVER_STAGES if s not in self.stages]
        if missing:
            raise ValueError(f"pipeline model is missing stages: {missing}")
        if self.fixed_overhead_s < 0:
            raise ValueError("fixed overhead cannot be negative")

    @staticmethod
    def default() -> "PipelineLatencyModel":
        """The default calibrated pipeline model."""
        return PipelineLatencyModel(stages=dict(DEFAULT_STAGE_MODELS))

    def stage_latency(self, stage: str, precision: float, volume: float) -> float:
        """Predicted latency of one stage at the given knob setting."""
        if stage not in self.stages:
            raise KeyError(f"unknown stage {stage!r}")
        return self.stages[stage].latency(precision, volume)

    def end_to_end(
        self,
        precisions: Mapping[str, float],
        volumes: Mapping[str, float],
        include_fixed: bool = True,
    ) -> float:
        """Predicted end-to-end latency for a full knob assignment."""
        total = self.fixed_overhead_s if include_fixed else 0.0
        for stage in SOLVER_STAGES:
            total += self.stage_latency(stage, precisions[stage], volumes[stage])
        return total


def profile_grid(
    latencies: Mapping[Tuple[float, float], float]
) -> List[LatencyProfileSample]:
    """Convert a {(precision, volume): latency} mapping into profile samples."""
    return [
        LatencyProfileSample(precision=p, volume=v, latency=latency)
        for (p, v), latency in sorted(latencies.items())
    ]
