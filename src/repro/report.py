"""``python -m repro.report`` — run a scenario grid and write a markdown report.

The report CLI is the command-line face of :mod:`repro.analysis`: it flies a
campaign described by a JSON grid file (or loads previously saved traces),
streams every mission's structured trace to JSONL, folds the traces into the
paper's figure tables (Figures 2, 5, 7 and 8) and writes a self-contained
markdown report under ``reports/``.

Usage::

    # Fly a grid and report on it (traces land next to the report)
    python -m repro.report --grid examples/grid_small.json

    # Re-report saved traces without flying anything
    python -m repro.report --traces reports/traces/grid_small

    # More workers, CSV sidecars, custom destination
    python -m repro.report --grid examples/grid_small.json \
        --workers 4 --csv-dir reports/csv --out reports/small.md

Grid files take one of three JSON shapes:

* ``{"grid": {...}}`` — keyword arguments for
  :func:`repro.simulation.scenario.scenario_grid` (``base_environment`` /
  ``mission`` given as plain dictionaries; ``faults`` as either one
  fault-set dictionary or a ``{config_name: fault set}`` mapping that
  becomes a swept fault axis);
* ``{"specs": [...]}`` — a list of full scenario-spec dictionaries;
* ``[...]`` — the same list, bare.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import CampaignReport
from repro.simulation.campaign import CampaignRunner
from repro.simulation.scenario import ScenarioSpec, scenario_grid


def load_grid_file(path: Path) -> List[ScenarioSpec]:
    """Parse a grid JSON file into the campaign's scenario specs.

    Raises:
        ValueError: when the file matches none of the supported shapes.
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, list):
        return [ScenarioSpec.from_dict(item) for item in data]
    if not isinstance(data, dict):
        raise ValueError(f"grid file {path} must hold a JSON object or list")
    if "specs" in data:
        return [ScenarioSpec.from_dict(item) for item in data["specs"]]
    if "grid" in data:
        return _grid_from_kwargs(dict(data["grid"]))
    raise ValueError(
        f"grid file {path} needs a 'grid' or 'specs' key (or a bare spec list)"
    )


def _grid_from_kwargs(kwargs: Dict[str, Any]) -> List[ScenarioSpec]:
    """Build a :func:`scenario_grid` call from the grid file's plain data."""
    from repro.environment.generator import EnvironmentConfig
    from repro.simulation.mission import MissionConfig

    if "base_environment" in kwargs:
        kwargs["base_environment"] = EnvironmentConfig(**kwargs["base_environment"])
    if "mission" in kwargs:
        kwargs["mission"] = MissionConfig(**kwargs["mission"])
    # "faults" passes through untouched: scenario_grid itself coerces both
    # shapes — one fault-set dict applied everywhere, or a {name: fault set}
    # mapping that becomes a swept axis — and rejects typo'd fault names.
    for knob in ("designs", "densities", "spreads", "goal_distances", "n_drones"):
        if knob in kwargs:
            kwargs[knob] = tuple(kwargs[knob])
    return scenario_grid(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description=(
            "Fly a scenario grid (or load saved traces) and write a markdown "
            "campaign report with the paper's figure tables."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--grid",
        type=Path,
        help="JSON grid file describing the campaign's scenario specs",
    )
    source.add_argument(
        "--traces",
        type=Path,
        help="directory of saved *.jsonl traces to report on (no missions flown)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="markdown report destination (default: reports/<grid name>.md)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="where grid runs stream JSONL traces (default: reports/traces/<grid name>)",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write one CSV per figure table into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="campaign pool size (default: one per core; 1 = serial)",
    )
    parser.add_argument(
        "--title",
        default=None,
        help="report title (default derived from the grid / trace directory name)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.grid is not None:
        stem = args.grid.stem
        out = args.out or Path("reports") / f"{stem}.md"
        trace_dir = args.trace_dir or Path("reports") / "traces" / stem
        specs = load_grid_file(args.grid)
        print(f"Flying {len(specs)} scenario(s) from {args.grid} ...")
        campaign = CampaignRunner(max_workers=args.workers).run(
            specs, trace_dir=trace_dir
        )
        failures = campaign.failures()
        flown = len(campaign) - len(failures)
        print(f"  {flown} flew, {len(failures)} failed; traces in {trace_dir}/")
        # The report is rebuilt from the trace files alone: what the report
        # shows is exactly what a later --traces run would show.
        report = CampaignReport.from_trace_dir(trace_dir)
    else:
        stem = args.traces.name
        out = args.out or Path("reports") / f"{stem}.md"
        report = CampaignReport.from_trace_dir(args.traces)
        print(
            f"Loaded {len(report.missions)} mission(s) / "
            f"{len(report.decisions)} decision record(s) from {args.traces}/"
        )

    title = args.title or f"RoboRun campaign report — {stem}"
    destination = report.write_markdown(out, title=title)
    print(f"Report written to {destination}")
    if args.csv_dir is not None:
        written = report.write_csvs(args.csv_dir)
        print(f"{len(written)} CSV table(s) written to {args.csv_dir}/")
    failed = report.failures()
    if failed and len(failed) == len(report.missions):
        # Every spec errored: the report holds nothing but the failure
        # section, so the run itself failed — exit nonzero and say so.
        print(
            f"ERROR: all {len(failed)} spec(s) failed to run; "
            "see the report's partial-failures section"
        )
        return 1
    if failed:
        print(f"WARNING: {len(failed)} spec(s) failed; see the report")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
