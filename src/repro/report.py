"""``python -m repro.report`` — run a scenario grid and write a markdown report.

The report CLI is the command-line face of :mod:`repro.analysis`: it flies a
campaign described by a JSON grid file (or loads previously saved traces),
streams every mission's structured trace to JSONL, folds the traces into the
paper's figure tables (Figures 2, 5, 7 and 8) and writes a self-contained
markdown report under ``reports/``.

Usage::

    # Fly a grid and report on it (traces land next to the report)
    python -m repro.report --grid examples/grid_small.json

    # Re-report saved traces without flying anything
    python -m repro.report --traces reports/traces/grid_small

    # More workers, CSV sidecars, custom destination
    python -m repro.report --grid examples/grid_small.json \
        --workers 4 --csv-dir reports/csv --out reports/small.md

    # Async work-stealing execution with retry/timeout, resumable
    python -m repro.report --grid big_grid.json --mode async \
        --spec-timeout 300 --max-attempts 3 --resume

Grid files take one of three JSON shapes:

* ``{"grid": {...}}`` — keyword arguments for
  :func:`repro.simulation.scenario.scenario_grid` (``base_environment`` /
  ``mission`` given as plain dictionaries; ``faults`` as either one
  fault-set dictionary or a ``{config_name: fault set}`` mapping that
  becomes a swept fault axis);
* ``{"specs": [...]}`` — a list of full scenario-spec dictionaries;
* ``[...]`` — the same list, bare.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import CampaignReport
from repro.obs.log import configure_logging, get_logger
from repro.simulation.campaign import CampaignRunner
from repro.simulation.scenario import ScenarioSpec, scenario_grid

log = get_logger("report")


def load_grid_file(path: Path) -> List[ScenarioSpec]:
    """Parse a grid JSON file into the campaign's scenario specs.

    Raises:
        ValueError: when the file matches none of the supported shapes.
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, list):
        return [ScenarioSpec.from_dict(item) for item in data]
    if not isinstance(data, dict):
        raise ValueError(f"grid file {path} must hold a JSON object or list")
    if "specs" in data:
        return [ScenarioSpec.from_dict(item) for item in data["specs"]]
    if "grid" in data:
        return _grid_from_kwargs(dict(data["grid"]))
    raise ValueError(
        f"grid file {path} needs a 'grid' or 'specs' key (or a bare spec list)"
    )


def _grid_from_kwargs(kwargs: Dict[str, Any]) -> List[ScenarioSpec]:
    """Build a :func:`scenario_grid` call from the grid file's plain data."""
    from repro.environment.generator import EnvironmentConfig
    from repro.simulation.mission import MissionConfig

    if "base_environment" in kwargs:
        kwargs["base_environment"] = EnvironmentConfig(**kwargs["base_environment"])
    if "mission" in kwargs:
        kwargs["mission"] = MissionConfig(**kwargs["mission"])
    # "faults" passes through untouched: scenario_grid itself coerces both
    # shapes — one fault-set dict applied everywhere, or a {name: fault set}
    # mapping that becomes a swept axis — and rejects typo'd fault names.
    for knob in ("designs", "densities", "spreads", "goal_distances", "n_drones"):
        if knob in kwargs:
            kwargs[knob] = tuple(kwargs[knob])
    return scenario_grid(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description=(
            "Fly a scenario grid (or load saved traces) and write a markdown "
            "campaign report with the paper's figure tables."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--grid",
        type=Path,
        help="JSON grid file describing the campaign's scenario specs",
    )
    source.add_argument(
        "--traces",
        type=Path,
        help="directory of saved *.jsonl traces to report on (no missions flown)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="markdown report destination (default: reports/<grid name>.md)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="where grid runs stream JSONL traces (default: reports/traces/<grid name>)",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write one CSV per figure table into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="campaign pool size (default: one per core; 1 = serial)",
    )
    parser.add_argument(
        "--mode",
        choices=["serial", "sync", "async"],
        default=None,
        help=(
            "campaign execution mode: serial (inline), sync (Pool.map "
            "barrier) or async (persistent work-stealing workers with "
            "retry/timeout); default: $REPRO_CAMPAIGN_MODE or sync"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip specs whose trace files already exist in the trace "
            "directory and parse cleanly to a completed mission (grid runs "
            "only); everything else is re-flown"
        ),
    )
    parser.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "async mode: per-spec wall-clock budget; an over-budget worker "
            "is killed and the spec retried (default: no timeout)"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help=(
            "async mode: dispatch attempts per spec before it is excluded "
            "as poisoned and reported as an error (default: 3)"
        ),
    )
    parser.add_argument(
        "--title",
        default=None,
        help="report title (default derived from the grid / trace directory name)",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help=(
            "where grid runs write heartbeat telemetry "
            "(default: <trace dir>/telemetry)"
        ),
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable campaign telemetry (no heartbeats, no runtime table)",
    )
    return parser


class _ProgressLine:
    """Renders campaign heartbeats as one live progress line on stderr.

    The line is rewritten in place (carriage return) when stderr is a
    terminal and suppressed entirely otherwise, so piped and CI output stays
    clean — progress is a human affordance, not part of the report.
    """

    def __init__(self, total_specs: int) -> None:
        self.total = total_specs
        self.done = 0
        self.failed = 0
        self._tty = bool(getattr(sys.stderr, "isatty", lambda: False)())
        self._dirty = False

    def __call__(self, record: Dict[str, Any]) -> None:
        status = record.get("status")
        if status == "done":
            self.done += 1
        elif status == "error":
            self.done += 1
            self.failed += 1
        if not self._tty:
            return
        spec = record.get("spec", "?")
        epoch = record.get("epoch", -1)
        line = (
            f"\r[{self.done}/{self.total}] {spec} "
            f"epoch={epoch} rss={record.get('rss_mb', 0.0):.0f}MB"
        )
        if self.failed:
            line += f" failed={self.failed}"
        sys.stderr.write(line[:120].ljust(80))
        sys.stderr.flush()
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            sys.stderr.write("\n")
            sys.stderr.flush()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.grid is None:
        parser.error("--resume only applies to --grid runs")

    if args.grid is not None:
        stem = args.grid.stem
        out = args.out or Path("reports") / f"{stem}.md"
        trace_dir = args.trace_dir or Path("reports") / "traces" / stem
        specs = load_grid_file(args.grid)
        log.info("Flying %d scenario(s) from %s ...", len(specs), args.grid)
        telemetry_dir: Optional[Path] = None
        progress: Optional[_ProgressLine] = None
        if not args.no_telemetry:
            telemetry_dir = args.telemetry_dir or trace_dir / "telemetry"
            progress = _ProgressLine(len(specs))
        runner = CampaignRunner(
            max_workers=args.workers,
            mode=args.mode,
            spec_timeout_s=args.spec_timeout,
            max_attempts=args.max_attempts,
        )
        try:
            campaign = runner.run(
                specs,
                trace_dir=trace_dir,
                telemetry_dir=telemetry_dir,
                progress=progress,
                resume=args.resume,
            )
        finally:
            if progress is not None:
                progress.close()
        failures = campaign.failures()
        flown = len(campaign) - len(failures)
        log.info(
            "  %d flew, %d failed; traces in %s/", flown, len(failures), trace_dir
        )
        # The report is rebuilt from the trace files alone: what the report
        # shows is exactly what a later --traces run would show.
        report = CampaignReport.from_trace_dir(trace_dir)
    else:
        stem = args.traces.name
        out = args.out or Path("reports") / f"{stem}.md"
        report = CampaignReport.from_trace_dir(args.traces)
        log.info(
            "Loaded %d mission(s) / %d decision record(s) from %s/",
            len(report.missions),
            len(report.decisions),
            args.traces,
        )

    title = args.title or f"RoboRun campaign report — {stem}"
    destination = report.write_markdown(out, title=title)
    log.info("Report written to %s", destination)
    if args.csv_dir is not None:
        written = report.write_csvs(args.csv_dir)
        log.info("%d CSV table(s) written to %s/", len(written), args.csv_dir)
    failed = report.failures()
    if failed and len(failed) == len(report.missions):
        # Every spec errored: the report holds nothing but the failure
        # section, so the run itself failed — exit nonzero and say so.
        log.error(
            "ERROR: all %d spec(s) failed to run; "
            "see the report's partial-failures section",
            len(failed),
        )
        return 1
    if failed:
        log.warning("WARNING: %d spec(s) failed; see the report", len(failed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
