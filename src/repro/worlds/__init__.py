"""Procedural world-archetype library with dynamic obstacles.

The worlds subsystem multiplies the repo's scenario diversity: instead of
one fixed corridor shape, a mission names a :class:`WorldSpec` — a
JSON-serialisable value selecting a registered procedural *archetype*
(``paper_corridor``, ``urban_canyon``, ``forest``, ``warehouse``,
``disaster_rubble``, or any extension added via
:func:`register_archetype`), its knobs and its dynamic obstacles — and the
registry builds a fully wired
:class:`~repro.environment.generator.GeneratedEnvironment`:

* the obstacle :class:`~repro.environment.world.World` and
  :class:`~repro.environment.zones.ZoneMap` the mission flies through;
* a continuous :class:`HeterogeneityField` — local difficulty sampled
  along the corridor, recorded per decision by the trace recorder; and
* a :class:`DynamicObstacleSet` of kinematic movers, stepped once per
  decision epoch at the Sense node boundary and re-marked into the
  occupancy map through the incremental spatial index.

The subsystem plugs into every downstream layer:
:class:`~repro.simulation.scenario.ScenarioSpec` carries a ``world`` field
(defaulting to the paper corridor, so old specs behave identically),
:func:`~repro.simulation.scenario.scenario_grid` sweeps archetypes as a
grid axis, and :mod:`repro.analysis` aggregates governor-vs-baseline
results per archetype.  See ``docs/worlds.md`` for the archetype
catalogue and knob semantics.
"""

from repro.worlds.field import HeterogeneityField
from repro.worlds.movers import (
    DynamicObstacleSet,
    KinematicMover,
    MoverSpec,
    build_movers,
)
from repro.worlds.registry import (
    archetype_names,
    build_environment,
    build_world,
    get_archetype,
    is_registered,
    register_archetype,
)
from repro.worlds.spec import DEFAULT_ARCHETYPE, WorldSpec

# Importing the module registers the built-in archetypes.
from repro.worlds import archetypes as _builtin_archetypes  # noqa: F401  (side effect)

__all__ = [
    "DEFAULT_ARCHETYPE",
    "DynamicObstacleSet",
    "HeterogeneityField",
    "KinematicMover",
    "MoverSpec",
    "WorldSpec",
    "archetype_names",
    "build_environment",
    "build_world",
    "build_movers",
    "get_archetype",
    "is_registered",
    "register_archetype",
]
