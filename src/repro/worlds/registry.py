"""The archetype registry: names → procedural world generators.

An *archetype generator* is a callable ``(EnvironmentConfig, WorldSpec,
random.Random) -> GeneratedEnvironment`` registered under a unique name.
The registry is the worlds subsystem's single construction entry point:

* :func:`build_environment` — the scenario layer's path: environment
  difficulty knobs plus a :class:`~repro.worlds.spec.WorldSpec` in, a fully
  finalised :class:`~repro.environment.generator.GeneratedEnvironment` out
  (heterogeneity field attached, movers bound, archetype stamped);
* :func:`build_world` — the standalone path for tools and tests that have
  only a spec.

Registration is open: downstream code can add archetypes with
:func:`register_archetype` and campaigns sweep them by name — the registry
is what lets :func:`~repro.simulation.scenario.scenario_grid` treat "which
world" as just another grid axis.

Every generator must be a pure function of ``(config, spec, rng)`` where
``rng`` is seeded from the config/spec seeds: the determinism suite asserts
that the same spec + seed reproduce a byte-identical obstacle list and
difficulty field, including across multiprocessing campaign workers.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro.environment.generator import EnvironmentConfig, GeneratedEnvironment
from repro.worlds.field import HeterogeneityField
from repro.worlds.movers import DynamicObstacleSet, build_movers
from repro.worlds.spec import WorldSpec

ArchetypeGenerator = Callable[
    [EnvironmentConfig, WorldSpec, random.Random], GeneratedEnvironment
]

_ARCHETYPES: Dict[str, ArchetypeGenerator] = {}


def register_archetype(
    name: str,
) -> Callable[[ArchetypeGenerator], ArchetypeGenerator]:
    """Decorator registering a generator under ``name``.

    Raises:
        ValueError: when the name is empty or already registered.
    """
    if not name:
        raise ValueError("archetype name must be non-empty")

    def decorator(generator: ArchetypeGenerator) -> ArchetypeGenerator:
        if name in _ARCHETYPES:
            raise ValueError(f"archetype {name!r} is already registered")
        _ARCHETYPES[name] = generator
        return generator

    return decorator


def archetype_names() -> List[str]:
    """Registered archetype names, sorted."""
    return sorted(_ARCHETYPES)


def is_registered(name: str) -> bool:
    """True when an archetype generator exists under ``name``."""
    return name in _ARCHETYPES


def get_archetype(name: str) -> ArchetypeGenerator:
    """Look a generator up by name.

    Raises:
        KeyError: with the known names, when the archetype is unknown.
    """
    try:
        return _ARCHETYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown world archetype {name!r}; registered: {archetype_names()}"
        ) from None


def effective_seed(config: EnvironmentConfig, spec: WorldSpec) -> int:
    """The world-layout seed: the spec's override, else the config's seed."""
    return config.seed if spec.seed is None else spec.seed


def build_environment(
    config: EnvironmentConfig, spec: Optional[WorldSpec] = None
) -> GeneratedEnvironment:
    """Generate and finalise one environment from difficulty knobs + a spec.

    The generator runs with an RNG seeded by :func:`effective_seed`; the
    result is then finalised: archetype name and world spec stamped,
    heterogeneity field sampled along the corridor, and dynamic obstacles
    (when the spec has movers) bound to the world at epoch 0.
    """
    world_spec = spec or WorldSpec()
    generator = get_archetype(world_spec.archetype)
    seed = effective_seed(config, world_spec)
    environment = generator(
        replace(config, seed=seed), world_spec, random.Random(seed)
    )
    return _finalise(environment, config, world_spec)


def build_world(
    spec: WorldSpec, config: Optional[EnvironmentConfig] = None
) -> GeneratedEnvironment:
    """Standalone construction from a spec alone (default difficulty knobs)."""
    base = config or EnvironmentConfig(seed=spec.seed or 0)
    return build_environment(base, spec)


def _finalise(
    environment: GeneratedEnvironment,
    config: EnvironmentConfig,
    spec: WorldSpec,
) -> GeneratedEnvironment:
    """Attach the cross-cutting worlds extras to a generated environment."""
    environment.archetype = spec.archetype
    environment.world_spec = spec
    # The field is sampled before movers are bound: it describes the static
    # corridor, not one arbitrary epoch of the movers' motion.  Sampling is
    # eager — ~50-70 ms once per build against minutes of mission wall-clock
    # — so the field is a plain value of the built artifact: the determinism
    # suite fingerprints it, and untraced missions pay nothing per decision.
    if environment.heterogeneity is None:
        sample_radius = min(config.corridor_width / 2.0, 30.0)
        sample_count = max(16, min(96, int(config.goal_distance // 15) + 2))
        environment.heterogeneity = HeterogeneityField.from_world(
            environment.world,
            environment.start,
            environment.goal,
            sample_count=sample_count,
            sample_radius=sample_radius,
        )
    if spec.movers:
        dynamics = DynamicObstacleSet(build_movers(spec.movers), environment.world)
        # Place the ground-truth dynamic layer at epoch 0 so the world is
        # complete even before a pipeline starts stepping it.
        dynamics.step(0)
        environment.dynamics = dynamics
    return environment
