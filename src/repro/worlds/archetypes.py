"""The built-in world archetypes.

Five procedural generators, each a different *shape* of spatial
heterogeneity for the governor to exploit (or be defeated by):

==================  ====================================================
``paper_corridor``  The paper's §IV generator verbatim — congested
                    clusters at both mission ends, empty middle.  Golden:
                    bit-identical to
                    :class:`~repro.environment.generator.
                    EnvironmentGenerator` for the same config and seed.
``urban_canyon``    Parallel building rows flanking the corridor, broken
                    by cross-streets; heterogeneity alternates with the
                    street rhythm.
``forest``          Uniform thin-pillar scatter — low spatial variance,
                    the archetype a spatial-aware governor gains *least*
                    on.
``warehouse``       A rack-and-aisle grid with pallet choke points in the
                    cross-aisles — narrow-gap heterogeneity.
``disaster_rubble`` Clustered debris whose density ramps up along the
                    corridor — monotone difficulty gradient.
==================  ====================================================

All generators share the corridor frame of the paper generator (start at
the origin, goal ``goal_distance`` metres down +x, flight at
``flight_altitude``), honour its 12 m obstacle-free bubble around start and
goal, and interpret the three shared difficulty knobs
(``obstacle_density``, ``obstacle_spread``, ``goal_distance``) where they
are meaningful; archetype-specific knobs arrive via
:attr:`~repro.worlds.spec.WorldSpec.params` and are documented, with
units, in ``docs/worlds.md``.

Every generator is a pure function of ``(config, spec, rng)``: the
determinism suite asserts byte-identical obstacle lists and difficulty
fields for equal seeds, including across multiprocessing campaign workers.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Tuple

from repro.environment.generator import (
    EnvironmentConfig,
    EnvironmentGenerator,
    GeneratedEnvironment,
)
from repro.environment.world import Obstacle, World
from repro.environment.zones import Zone, ZoneMap
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.worlds.registry import register_archetype
from repro.worlds.spec import WorldSpec

#: Radius around the mission start and goal that stays obstacle-free
#: (matches the paper generator's keep-clear bubble).
KEEP_CLEAR_M = 12.0


# ----------------------------------------------------------------------
# Shared corridor frame
# ----------------------------------------------------------------------
def _corridor_frame(cfg: EnvironmentConfig) -> Tuple[Vec3, Vec3, World]:
    """Start, goal and an empty bounded world in the paper's corridor frame."""
    start = Vec3(0.0, 0.0, cfg.flight_altitude)
    goal = Vec3(cfg.goal_distance, 0.0, cfg.flight_altitude)
    half_width = cfg.corridor_width / 2.0
    bounds = AABB(
        Vec3(-50.0, -half_width - 50.0, 0.0),
        Vec3(cfg.goal_distance + 50.0, half_width + 50.0, 60.0),
    )
    return start, goal, World(bounds)


def _admissible(world: World, start: Vec3, goal: Vec3, box: AABB) -> bool:
    """True when an obstacle box may enter the world (in bounds, ends clear)."""
    center = box.center
    if not world.bounds.contains(center):
        return False
    if center.horizontal_distance_to(start) < KEEP_CLEAR_M:
        return False
    if center.horizontal_distance_to(goal) < KEEP_CLEAR_M:
        return False
    return True


def _add_boxes(
    world: World, start: Vec3, goal: Vec3, boxes: Iterable[Tuple[AABB, str]]
) -> None:
    """Add every admissible box to the world, preserving iteration order."""
    for box, name in boxes:
        if _admissible(world, start, goal, box):
            world.add_obstacle(Obstacle(box, name=name))


# ----------------------------------------------------------------------
# paper_corridor — the golden-pinned §IV generator
# ----------------------------------------------------------------------
@register_archetype("paper_corridor")
def paper_corridor(
    cfg: EnvironmentConfig, spec: WorldSpec, rng: random.Random
) -> GeneratedEnvironment:
    """The paper's congested-A / empty-B / congested-C corridor, verbatim.

    Delegates to :class:`~repro.environment.generator.EnvironmentGenerator`
    so the obstacle list is bit-identical to the pre-worlds generator for
    the same config and seed (the golden test pins this).  The ``rng``
    argument is unused: the legacy generator seeds its own RNG from the
    config, and re-deriving it here would change the stream.
    """
    return EnvironmentGenerator().generate(cfg)


# ----------------------------------------------------------------------
# urban_canyon — building rows with cross-streets
# ----------------------------------------------------------------------
@register_archetype("urban_canyon")
def urban_canyon(
    cfg: EnvironmentConfig, spec: WorldSpec, rng: random.Random
) -> GeneratedEnvironment:
    """Parallel building rows along the corridor, broken by cross-streets.

    Knobs (``spec.params``): ``rows_per_side`` (count, default 2),
    ``block_length_m`` (mean building length, default 28),
    ``street_width_m`` (cross-street gap, default 14),
    ``building_depth_m`` (row depth, default 10).  ``obstacle_density``
    sets the probability each block is actually built, so sparse canyons
    have gap-toothed skylines.
    """
    start, goal, world = _corridor_frame(cfg)
    rows_per_side = max(1, int(spec.param("rows_per_side", 2)))
    block_length = spec.param("block_length_m", 28.0)
    street_width = spec.param("street_width_m", 14.0)
    depth = spec.param("building_depth_m", 10.0)
    if block_length <= 0 or street_width <= 0 or depth <= 0:
        raise ValueError("urban_canyon lengths must be positive metres")
    build_probability = min(1.0, cfg.obstacle_density + 0.35)

    half_width = cfg.corridor_width / 2.0
    # Row centre-lines, nearest first, mirrored across the corridor axis.
    lateral_offsets: List[float] = []
    for row in range(1, rows_per_side + 1):
        offset = half_width * row / (rows_per_side + 0.5)
        lateral_offsets.extend((offset, -offset))

    boxes: List[Tuple[AABB, str]] = []
    for row_index, offset in enumerate(lateral_offsets):
        x = 0.0
        block_index = 0
        while x < cfg.goal_distance:
            length = block_length * rng.uniform(0.7, 1.3)
            if rng.random() < build_probability:
                height = cfg.obstacle_height * rng.uniform(1.0, 1.6)
                center = Vec3(x + length / 2.0, offset, height / 2.0)
                boxes.append(
                    (
                        AABB.from_center(center, Vec3(length, depth, height)),
                        f"building_r{row_index}_b{block_index}",
                    )
                )
            x += length + street_width
            block_index += 1
    _add_boxes(world, start, goal, boxes)

    zone_map = ZoneMap(start, goal, zones=[Zone("CANYON", 0.0, 1.0, congested=True)])
    return GeneratedEnvironment(
        config=cfg, world=world, start=start, goal=goal, zone_map=zone_map
    )


# ----------------------------------------------------------------------
# forest — uniform thin-pillar scatter
# ----------------------------------------------------------------------
@register_archetype("forest")
def forest(
    cfg: EnvironmentConfig, spec: WorldSpec, rng: random.Random
) -> GeneratedEnvironment:
    """Thin pillars scattered uniformly over the whole corridor.

    Knobs: ``cover_scale`` (dimensionless, default 0.05) — the pillar
    footprint covers ``obstacle_density * cover_scale`` of the corridor
    area, keeping pure-Python worlds tractable while preserving the
    density ordering; ``pillar_side_m`` (mean pillar edge, default 0.9).
    ``obstacle_spread`` is meaningless for a uniform scatter and ignored.
    """
    start, goal, world = _corridor_frame(cfg)
    cover_scale = spec.param("cover_scale", 0.05)
    pillar_side = spec.param("pillar_side_m", 0.9)
    if cover_scale <= 0 or pillar_side <= 0:
        raise ValueError("forest cover_scale and pillar_side_m must be positive")

    half_width = cfg.corridor_width / 2.0
    area = cfg.goal_distance * cfg.corridor_width
    mean_footprint = pillar_side**2
    count = max(4, int(cfg.obstacle_density * cover_scale * area / mean_footprint))

    boxes: List[Tuple[AABB, str]] = []
    for index in range(count):
        x = rng.uniform(0.0, cfg.goal_distance)
        y = rng.uniform(-half_width, half_width)
        side = pillar_side * rng.uniform(0.6, 1.4)
        height = cfg.obstacle_height * rng.uniform(0.9, 1.3)
        center = Vec3(x, y, height / 2.0)
        boxes.append(
            (AABB.from_center(center, Vec3(side, side, height)), f"pillar_{index}")
        )
    _add_boxes(world, start, goal, boxes)

    zone_map = ZoneMap(start, goal, zones=[Zone("FOREST", 0.0, 1.0, congested=True)])
    return GeneratedEnvironment(
        config=cfg, world=world, start=start, goal=goal, zone_map=zone_map
    )


# ----------------------------------------------------------------------
# warehouse — rack rows, cross-aisles, choke points
# ----------------------------------------------------------------------
@register_archetype("warehouse")
def warehouse(
    cfg: EnvironmentConfig, spec: WorldSpec, rng: random.Random
) -> GeneratedEnvironment:
    """A rack-and-aisle grid with pallet choke points.

    Knobs: ``aisle_width_m`` (gap between rack rows, default 8),
    ``rack_length_m`` (rack segment length, default 20),
    ``rack_depth_m`` (rack depth, default 2.5), ``cross_aisle_m``
    (cross-aisle gap between segments, default 6).  ``obstacle_density``
    sets the probability a cross-aisle is choked by a pallet, so dense
    warehouses have fewer open shortcuts.
    """
    start, goal, world = _corridor_frame(cfg)
    aisle_width = spec.param("aisle_width_m", 8.0)
    rack_length = spec.param("rack_length_m", 20.0)
    rack_depth = spec.param("rack_depth_m", 2.5)
    cross_aisle = spec.param("cross_aisle_m", 6.0)
    if min(aisle_width, rack_length, rack_depth, cross_aisle) <= 0:
        raise ValueError("warehouse dimensions must be positive metres")
    choke_probability = min(0.9, cfg.obstacle_density)

    half_width = cfg.corridor_width / 2.0
    pitch = rack_depth + aisle_width
    period = rack_length + cross_aisle

    boxes: List[Tuple[AABB, str]] = []
    row_index = 0
    y = -half_width + aisle_width
    while y <= half_width - aisle_width / 2.0:
        # Staggering alternate rows turns straight cross-corridors into the
        # offset choke structure real warehouses have.
        phase = (period / 2.0) if row_index % 2 else 0.0
        x = phase
        segment = 0
        while x < cfg.goal_distance:
            length = min(rack_length, cfg.goal_distance - x)
            if length > 1.0:
                center = Vec3(x + length / 2.0, y, cfg.obstacle_height / 2.0)
                boxes.append(
                    (
                        AABB.from_center(
                            center, Vec3(length, rack_depth, cfg.obstacle_height)
                        ),
                        f"rack_r{row_index}_s{segment}",
                    )
                )
            gap_center_x = x + rack_length + cross_aisle / 2.0
            if gap_center_x < cfg.goal_distance and rng.random() < choke_probability:
                pallet = Vec3(
                    gap_center_x + rng.uniform(-1.0, 1.0),
                    y + rng.uniform(-rack_depth, rack_depth),
                    cfg.obstacle_height / 4.0,
                )
                boxes.append(
                    (
                        AABB.from_center(
                            pallet, Vec3(2.0, 2.0, cfg.obstacle_height / 2.0)
                        ),
                        f"pallet_r{row_index}_s{segment}",
                    )
                )
            x += period
            segment += 1
        y += pitch
        row_index += 1
    _add_boxes(world, start, goal, boxes)

    zone_map = ZoneMap(start, goal, zones=[Zone("AISLES", 0.0, 1.0, congested=True)])
    return GeneratedEnvironment(
        config=cfg, world=world, start=start, goal=goal, zone_map=zone_map
    )


# ----------------------------------------------------------------------
# disaster_rubble — clustered debris with a density gradient
# ----------------------------------------------------------------------
@register_archetype("disaster_rubble")
def disaster_rubble(
    cfg: EnvironmentConfig, spec: WorldSpec, rng: random.Random
) -> GeneratedEnvironment:
    """Debris clusters whose density ramps up along the corridor.

    Knobs: ``clusters`` (count, default 6), ``gradient`` (dimensionless,
    default 1.5) — a cluster at mission fraction ``f`` spawns
    ``1 + gradient * f`` times the debris of one at the start, producing
    the monotone difficulty ramp; ``debris_height_scale`` (fraction of
    ``obstacle_height``, default 0.6) keeps rubble lower than buildings.
    ``obstacle_spread`` sets the per-cluster scatter radius exactly as in
    the paper generator.
    """
    start, goal, world = _corridor_frame(cfg)
    cluster_count = max(1, int(spec.param("clusters", 6)))
    gradient = spec.param("gradient", 1.5)
    height_scale = spec.param("debris_height_scale", 0.6)
    if gradient < 0:
        raise ValueError("disaster_rubble gradient cannot be negative")
    if height_scale <= 0:
        raise ValueError("disaster_rubble debris_height_scale must be positive")

    sigma = cfg.obstacle_spread / 2.0
    half_width = cfg.corridor_width / 2.0
    # Base count per cluster mirrors the paper generator's sizing but with
    # the smaller debris footprint (mean ~4 m²).
    mean_footprint = 4.0
    base_count = max(
        3, int(cfg.obstacle_density * math.pi * sigma**2 / mean_footprint / 2.0)
    )

    centers: List[Vec3] = []
    boxes: List[Tuple[AABB, str]] = []
    for cluster in range(cluster_count):
        fraction = (cluster + 0.5) / cluster_count
        lateral = rng.uniform(-half_width / 2.0, half_width / 2.0)
        center = start.lerp(goal, fraction) + Vec3(0.0, lateral, 0.0)
        centers.append(center)
        count = max(1, int(base_count * (1.0 + gradient * fraction)))
        for index in range(count):
            dx = rng.gauss(0.0, sigma)
            dy = rng.gauss(0.0, sigma)
            width = rng.uniform(1.0, 4.0)
            depth = rng.uniform(1.0, 4.0)
            height = cfg.obstacle_height * height_scale * rng.uniform(0.4, 1.0)
            position = Vec3(center.x + dx, center.y + dy, height / 2.0)
            boxes.append(
                (
                    AABB.from_center(position, Vec3(width, depth, height)),
                    f"debris_c{cluster}_{index}",
                )
            )
    _add_boxes(world, start, goal, boxes)

    zone_map = ZoneMap(
        start,
        goal,
        zones=[
            Zone("LIGHT", 0.0, 0.34, congested=False),
            Zone("MID", 0.34, 0.67, congested=True),
            Zone("DENSE", 0.67, 1.0, congested=True),
        ],
    )
    return GeneratedEnvironment(
        config=cfg,
        world=world,
        start=start,
        goal=goal,
        zone_map=zone_map,
        cluster_centers=centers,
    )
