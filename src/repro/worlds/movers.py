"""Dynamic obstacles: kinematic movers stepped once per decision epoch.

Static worlds understate how hard spatial heterogeneity is to exploit: a
governor that banks on yesterday's map is punished hardest when the map
moves.  This module adds *kinematic movers* — box obstacles whose position
is an exact, analytic function of the decision epoch — in two flavours:

* **waypoint loops** (``kind="waypoint_loop"``): the mover traverses a
  closed polyline at constant speed, wrapping from the last waypoint back
  to the first (a patrolling forklift, a security robot);
* **constant-velocity crossers** (``kind="crosser"``): the mover travels
  along a fixed velocity vector, optionally wrapping after ``span_m``
  metres so it re-crosses the corridor forever (cross-street traffic).

Positions are *computed*, not integrated: ``position_at(epoch)`` depends
only on the spec and the epoch number, so mover state is bit-reproducible
across processes and after any number of steps — the same property the
trace byte-determinism suite pins for the static world.

Per decision epoch, :class:`DynamicObstacleSet.step` does two things at the
Sense node boundary (before the cameras capture):

1. updates the ground-truth :class:`~repro.environment.world.World`'s
   dynamic obstacle layer, so depth cameras, collision checks and density
   queries see the mover where it *is*; and
2. re-marks each mover's footprint into the
   :class:`~repro.perception.octomap.OccupancyOctree` (clear old voxels,
   mark new ones), each mutation flowing through the octree's incremental
   spatial index — planning and collision probes see the move without any
   rebuild.

All distances are metres, speeds metres/second, and ``epoch_s`` is the
simulated seconds of motion one decision epoch represents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.environment.world import Obstacle, World
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perception.octomap import OccupancyOctree

#: The supported mover kinds.
MOVER_KINDS = ("waypoint_loop", "crosser")

Point = Tuple[float, float, float]


@dataclass(frozen=True, slots=True)
class MoverSpec:
    """One dynamic obstacle, as plain JSON-serialisable data.

    Attributes:
        kind: ``"waypoint_loop"`` or ``"crosser"``.
        size: (x, y, z) edge lengths of the mover's box, metres.
        epoch_s: simulated seconds of motion per decision epoch.
        speed_mps: traversal speed along the waypoint loop, m/s
            (``waypoint_loop`` only).
        waypoints: the loop's vertices, at least two, metres; the loop is
            closed (last wraps to first) (``waypoint_loop`` only).
        velocity: (vx, vy, vz) velocity vector, m/s (``crosser`` only).
        origin: the crosser's position at epoch 0, metres (``crosser`` only).
        span_m: wrap distance for crossers — after travelling this far the
            mover restarts from ``origin``; 0 means never wrap.
        name: label used for the obstacle and the octree re-mark ledger.
    """

    kind: str = "crosser"
    size: Point = (2.0, 2.0, 2.0)
    epoch_s: float = 0.5
    speed_mps: float = 2.0
    waypoints: Tuple[Point, ...] = ()
    velocity: Point = (0.0, 0.0, 0.0)
    origin: Point = (0.0, 0.0, 0.0)
    span_m: float = 0.0
    name: str = "mover"

    def __post_init__(self) -> None:
        if self.kind not in MOVER_KINDS:
            raise ValueError(
                f"unknown mover kind {self.kind!r}; expected one of {MOVER_KINDS}"
            )
        if len(self.size) != 3 or any(s <= 0 for s in self.size):
            raise ValueError("mover size must be three positive edge lengths")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive seconds")
        if self.kind == "waypoint_loop":
            if len(self.waypoints) < 2:
                raise ValueError("a waypoint loop needs at least two waypoints")
            if self.speed_mps <= 0:
                raise ValueError("waypoint-loop speed must be positive")
        if self.kind == "crosser":
            if all(v == 0.0 for v in self.velocity):
                raise ValueError("a crosser needs a non-zero velocity")
            if self.span_m < 0:
                raise ValueError("span_m cannot be negative")
        # Normalise JSON lists to tuples so specs compare equal across
        # serialisation round-trips.
        object.__setattr__(self, "size", tuple(float(v) for v in self.size))
        object.__setattr__(
            self, "waypoints", tuple(tuple(float(v) for v in p) for p in self.waypoints)
        )
        object.__setattr__(self, "velocity", tuple(float(v) for v in self.velocity))
        object.__setattr__(self, "origin", tuple(float(v) for v in self.origin))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "size": list(self.size),
            "epoch_s": self.epoch_s,
            "speed_mps": self.speed_mps,
            "waypoints": [list(p) for p in self.waypoints],
            "velocity": list(self.velocity),
            "origin": list(self.origin),
            "span_m": self.span_m,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MoverSpec":
        return cls(
            kind=data.get("kind", "crosser"),
            size=tuple(data.get("size", (2.0, 2.0, 2.0))),
            epoch_s=float(data.get("epoch_s", 0.5)),
            speed_mps=float(data.get("speed_mps", 2.0)),
            waypoints=tuple(tuple(p) for p in data.get("waypoints", ())),
            velocity=tuple(data.get("velocity", (0.0, 0.0, 0.0))),
            origin=tuple(data.get("origin", (0.0, 0.0, 0.0))),
            span_m=float(data.get("span_m", 0.0)),
            name=str(data.get("name", "mover")),
        )


class KinematicMover:
    """A mover spec bound to a name, with exact per-epoch positions."""

    def __init__(self, spec: MoverSpec, name: Optional[str] = None) -> None:
        self.spec = spec
        self.name = name or spec.name
        if spec.kind == "waypoint_loop":
            points = [Vec3(*p) for p in spec.waypoints]
            # Closed loop: append the wrap segment back to the first vertex.
            self._loop = points + [points[0]]
            self._segment_lengths = [
                a.distance_to(b) for a, b in zip(self._loop, self._loop[1:])
            ]
            self._perimeter = sum(self._segment_lengths)
            if self._perimeter <= 0:
                raise ValueError("waypoint loop has zero perimeter")

    def position_at(self, epoch: int) -> Vec3:
        """The mover's centre at the given decision epoch (exact, analytic)."""
        if epoch < 0:
            raise ValueError("epoch cannot be negative")
        spec = self.spec
        t = spec.epoch_s * epoch
        if spec.kind == "waypoint_loop":
            travelled = math.fmod(spec.speed_mps * t, self._perimeter)
            for a, b, length in zip(self._loop, self._loop[1:], self._segment_lengths):
                if length > 0.0 and travelled <= length:
                    return a.lerp(b, travelled / length)
                travelled -= length
            # Accumulated rounding can leave a sliver past the last segment;
            # the loop is closed, so that sliver sits at the first vertex.
            return self._loop[0]
        velocity = Vec3(*spec.velocity)
        if spec.span_m > 0:
            speed = velocity.norm()
            travelled = math.fmod(speed * t, spec.span_m)
            return Vec3(*spec.origin) + velocity * (travelled / speed)
        return Vec3(*spec.origin) + velocity * t

    def box_at(self, epoch: int) -> AABB:
        """The mover's axis-aligned box at the given epoch."""
        return AABB.from_center(self.position_at(epoch), Vec3(*self.spec.size))


class DynamicObstacleSet:
    """All of one environment's movers, stepped together once per epoch.

    Attributes:
        movers: the kinematic movers, in spec order.
        world: the ground-truth world whose dynamic layer is updated.
        epoch: the most recently applied epoch (``None`` before any step).
    """

    def __init__(self, movers: Sequence[KinematicMover], world: World) -> None:
        names = [m.name for m in movers]
        if len(set(names)) != len(names):
            raise ValueError("mover names within an environment must be unique")
        self.movers: List[KinematicMover] = list(movers)
        self.world = world
        self.epoch: Optional[int] = None
        # Octree voxel keys currently marked, per octree then per mover, for
        # exact un-marking.  Keyed by id(octree) because a fleet steps one
        # mover set against N octomaps (one per drone) and each must track
        # its own footprints.  The octrees outlive this set (both belong to
        # the mission), so id reuse is not a concern in practice.
        self._marked: Dict[int, Dict[str, List[Tuple[int, int, int]]]] = {}
        self.last_step_stats: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.movers)

    def step(
        self,
        epoch: int,
        octree: Optional["OccupancyOctree"] = None,
        epoch_overrides: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Advance every mover to ``epoch`` and re-mark maps accordingly.

        Updates the world's dynamic obstacle layer (ground truth) and, when
        an octree is given, clears each mover's previously marked voxels and
        marks its new footprint — both through the octree's incremental
        spatial index, so no query structure is rebuilt.

        Args:
            epoch: the decision epoch every mover advances to.
            octree: the occupancy map to re-mark, if any.
            epoch_overrides: per-mover epoch pins (``{mover_name: epoch}``) —
                a pinned mover is positioned at its pinned epoch instead of
                ``epoch``.  This is how a stuck-mover fault freezes one
                obstacle mid-route while the rest keep moving.

        Returns:
            Step statistics: ``movers`` (total), ``remarked`` (movers whose
            octree footprint was refreshed this step), ``voxels_marked`` and
            ``voxels_cleared``.
        """
        if epoch_overrides:
            boxes = [
                mover.box_at(epoch_overrides.get(mover.name, epoch))
                for mover in self.movers
            ]
        else:
            boxes = [mover.box_at(epoch) for mover in self.movers]
        self.world.set_dynamic_obstacles(
            [Obstacle(box, name=mover.name) for mover, box in zip(self.movers, boxes)]
        )
        stats = {
            "movers": len(self.movers),
            "remarked": 0,
            "voxels_marked": 0,
            "voxels_cleared": 0,
        }
        if octree is not None:
            marked = self._marked.setdefault(id(octree), {})
            # Two passes: clear every mover's old footprint before marking any
            # new one.  Interleaving would let a later mover's clear erase a
            # voxel an earlier mover just marked where their paths cross.
            for mover in self.movers:
                previous = marked.get(mover.name)
                if previous:
                    stats["voxels_cleared"] += octree.clear_cells(previous)
            for mover, box in zip(self.movers, boxes):
                keys = octree.mark_box(box)
                marked[mover.name] = keys
                stats["voxels_marked"] += len(keys)
                stats["remarked"] += 1
        self.epoch = epoch
        self.last_step_stats = stats
        return stats


def build_movers(specs: Sequence[MoverSpec]) -> List[KinematicMover]:
    """Instantiate movers from specs, suffixing names to guarantee uniqueness."""
    return [
        KinematicMover(spec, name=f"{spec.name}_{index}")
        for index, spec in enumerate(specs)
    ]
