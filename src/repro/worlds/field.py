"""Continuous heterogeneity / difficulty fields along the mission corridor.

The paper's thesis is that environments are spatially *heterogeneous* — the
space around the robot varies in difficulty, and a spatial-aware governor
wins exactly where that variation is large.  A
:class:`HeterogeneityField` makes the variation a first-class, serialisable
quantity: local obstacle density sampled at evenly spaced stations along
the straight start→goal corridor, with linear interpolation in between.

The field is pure data (tuples of floats), so it

* is byte-reproducible: the same world always yields the same samples,
  which the worlds determinism suite pins alongside the obstacle list;
* costs one interpolation per query, cheap enough for the trace recorder
  to stamp a per-decision ``difficulty`` into every
  :class:`~repro.analysis.trace.DecisionRecord`; and
* round-trips through JSON for storage next to a
  :class:`~repro.worlds.spec.WorldSpec`.

Difficulty is dimensionless in ``[0, 1]``: the fraction of the sampling
disc (radius ``sample_radius`` metres, at flight altitude) occupied by
obstacles — the same "local obstacle density" definition the generator's
congestion maps use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple, TYPE_CHECKING

from repro.geometry.vec3 import Vec3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.environment.world import World

Point = Tuple[float, float, float]


@dataclass(frozen=True, slots=True)
class HeterogeneityField:
    """Local difficulty sampled along the start→goal corridor.

    Attributes:
        start: mission start (x, y, z), metres.
        goal: mission goal (x, y, z), metres.
        samples: difficulty values at evenly spaced stations from start
            (first sample) to goal (last sample), each in ``[0, 1]``.
        sample_radius: radius of the density sampling disc, metres.
    """

    start: Point
    goal: Point
    samples: Tuple[float, ...]
    sample_radius: float

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a heterogeneity field needs at least one sample")
        if self.sample_radius <= 0:
            raise ValueError("sample radius must be positive metres")
        object.__setattr__(self, "start", tuple(float(v) for v in self.start))
        object.__setattr__(self, "goal", tuple(float(v) for v in self.goal))
        object.__setattr__(self, "samples", tuple(float(v) for v in self.samples))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_world(
        cls,
        world: "World",
        start: Vec3,
        goal: Vec3,
        sample_count: int = 48,
        sample_radius: float = 20.0,
    ) -> "HeterogeneityField":
        """Sample a world's local obstacle density along the corridor.

        Args:
            world: the obstacle world to sample.  The registry samples the
                field *before* binding any movers, so built worlds' fields
                describe the static corridor only — movers change position
                every epoch, and freezing one arbitrary epoch into the
                field would misreport every other.
            start / goal: corridor endpoints, metres.
            sample_count: number of evenly spaced stations (≥ 2 unless the
                corridor is degenerate).
            sample_radius: density disc radius, metres.
        """
        if sample_count < 1:
            raise ValueError("need at least one sample station")
        denominator = max(sample_count - 1, 1)
        values = tuple(
            world.obstacle_density(start.lerp(goal, i / denominator), sample_radius)
            for i in range(sample_count)
        )
        return cls(
            start=(start.x, start.y, start.z),
            goal=(goal.x, goal.y, goal.z),
            samples=values,
            sample_radius=sample_radius,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def progress_fraction(self, position: Vec3) -> float:
        """Project a position onto the start→goal axis, clamped to [0, 1]."""
        start = Vec3(*self.start)
        axis = Vec3(*self.goal) - start
        length_sq = axis.norm_sq()
        if length_sq == 0.0:
            return 0.0
        t = (position - start).dot(axis) / length_sq
        return min(1.0, max(0.0, t))

    def difficulty_at(self, position: Vec3) -> float:
        """Interpolated difficulty at a position (one lerp, no world query)."""
        if len(self.samples) == 1:
            return self.samples[0]
        station = self.progress_fraction(position) * (len(self.samples) - 1)
        low = int(station)
        high = min(low + 1, len(self.samples) - 1)
        t = station - low
        return self.samples[low] * (1.0 - t) + self.samples[high] * t

    def mean(self) -> float:
        """Mean difficulty over the stations."""
        return sum(self.samples) / len(self.samples)

    def peak(self) -> float:
        """Maximum station difficulty."""
        return max(self.samples)

    def spread(self) -> float:
        """Peak minus minimum — how heterogeneous the corridor is."""
        return max(self.samples) - min(self.samples)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": list(self.start),
            "goal": list(self.goal),
            "samples": list(self.samples),
            "sample_radius": self.sample_radius,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HeterogeneityField":
        return cls(
            start=tuple(data["start"]),
            goal=tuple(data["goal"]),
            samples=tuple(data["samples"]),
            sample_radius=float(data["sample_radius"]),
        )
