"""The world specification: which archetype, which knobs, which movers.

A :class:`WorldSpec` is the declarative half of the worlds subsystem: plain
JSON-serialisable data naming a procedural archetype (``paper_corridor``,
``urban_canyon``, ``forest``, ``warehouse``, ``disaster_rubble``, or any
registered extension), archetype-specific parameters, an optional seed
override and the dynamic obstacles to animate.  The imperative half — the
registry that turns a spec into a generated environment — lives in
:mod:`repro.worlds.registry`.

Seeding: the shared difficulty knobs (obstacle density / spread / goal
distance) and the campaign's per-mission seed stay on
:class:`~repro.environment.generator.EnvironmentConfig`, exactly as before;
``WorldSpec.seed`` is ``None`` by default, meaning *inherit the environment
config's seed* so :meth:`~repro.simulation.scenario.ScenarioSpec.seeded`
keeps stamping one integer per mission.  Set it to pin the world layout
independently of the rest of the mission's randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.worlds.movers import MoverSpec

#: The archetype every spec (and every pre-worlds scenario) defaults to.
DEFAULT_ARCHETYPE = "paper_corridor"


@dataclass(frozen=True, slots=True)
class WorldSpec:
    """One procedural world, as plain serialisable data.

    Attributes:
        archetype: registered archetype name (see
            :func:`repro.worlds.registry.archetype_names`).
        seed: world-layout seed override; ``None`` inherits the
            :class:`~repro.environment.generator.EnvironmentConfig` seed.
        params: archetype-specific knobs (name → number; units documented
            per archetype in ``docs/worlds.md``).
        movers: dynamic obstacles animated through the world.
    """

    archetype: str = DEFAULT_ARCHETYPE
    seed: Optional[int] = None
    params: Dict[str, float] = field(default_factory=dict)
    movers: Tuple[MoverSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.archetype:
            raise ValueError("world archetype name must be non-empty")
        for key, value in dict(self.params).items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"world param {key!r} must be a number, got {value!r}"
                )
        object.__setattr__(self, "params", {k: float(v) for k, v in self.params.items()})
        object.__setattr__(
            self,
            "movers",
            tuple(
                m if isinstance(m, MoverSpec) else MoverSpec.from_dict(dict(m))
                for m in self.movers
            ),
        )

    def __hash__(self) -> int:
        # params is a dict (unhashable); hash the canonical item tuple instead.
        return hash(
            (self.archetype, self.seed, tuple(sorted(self.params.items())), self.movers)
        )

    @property
    def is_default(self) -> bool:
        """True for the implicit pre-worlds world (plain paper corridor)."""
        return (
            self.archetype == DEFAULT_ARCHETYPE
            and self.seed is None
            and not self.params
            and not self.movers
        )

    def param(self, name: str, default: float) -> float:
        """One archetype knob with a default (the generators' accessor)."""
        return float(self.params.get(name, default))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "archetype": self.archetype,
            "seed": self.seed,
            "params": dict(self.params),
            "movers": [m.to_dict() for m in self.movers],
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "WorldSpec":
        """Build a spec from plain data; ``None``/``{}`` give the default world."""
        if not data:
            return cls()
        seed = data.get("seed")
        return cls(
            archetype=data.get("archetype", DEFAULT_ARCHETYPE),
            seed=int(seed) if seed is not None else None,
            params=dict(data.get("params") or {}),
            movers=tuple(
                MoverSpec.from_dict(dict(m)) for m in data.get("movers") or ()
            ),
        )
