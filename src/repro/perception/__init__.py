"""Perception: point-cloud generation and occupancy mapping.

The paper's perception stage has two kernels (§III-A):

* the **Point cloud** kernel converts camera pixels into 3-D obstacle
  coordinates — :mod:`repro.perception.point_cloud`; and
* **OctoMap** accumulates point clouds into a 3-D occupancy map "encoded in a
  tree data structure where each leaf is a voxel" —
  :mod:`repro.perception.octomap`.

Both kernels expose the hooks the RoboRun precision and volume operators act
on: point-cloud grid resolution, ray-caster step size, map insertion volume
budget, and tree pruning / sub-sampling for the map handed to the planner.
"""

from repro.perception.octomap import OccupancyOctree, OctreeNode, allowed_precisions
from repro.perception.planning_view import PlanningView, build_planning_view
from repro.perception.point_cloud import PointCloud, PointCloudKernel
from repro.perception.spatial_index import SpatialIndex

__all__ = [
    "OccupancyOctree",
    "OctreeNode",
    "PlanningView",
    "PointCloud",
    "PointCloudKernel",
    "SpatialIndex",
    "allowed_precisions",
    "build_planning_view",
]
