"""The point-cloud kernel.

"We use the Point cloud kernel to extract obstacle positions by converting
pixels to 3D coordinates" (§III-A).  The kernel consumes the depth images
captured by the camera rig and produces a :class:`PointCloud`.  Its precision
operator "is enforced by controlling the sampling distance between points. We
grid the space into cells, map the points onto the cells using their
coordinates, and then reduce each cell to a single average point" (§III-B) —
implemented here via :class:`~repro.geometry.grid.VoxelGrid`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import hotpath
from repro.geometry.aabb import AABB
from repro.geometry.grid import downsample_points
from repro.geometry.vec3 import Vec3, centroid
from repro.sensors.rig import RigScan


@dataclass(frozen=True, slots=True)
class PointCloud:
    """A set of 3-D obstacle points measured from a single drone pose.

    Attributes:
        origin: the sensor position the points were observed from.
        points: obstacle surface points in world coordinates.
        raw_point_count: number of points before precision downsampling, used
            by the compute model to charge the fixed point-cloud conversion
            cost the paper reports (about 210 ms regardless of the knobs).
        resolution: the grid resolution the cloud was downsampled at, metres.
    """

    origin: Vec3
    points: tuple[Vec3, ...]
    raw_point_count: int
    resolution: float
    _array: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _origin_distances: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.points)

    def is_empty(self) -> bool:
        """True when no obstacle points were observed."""
        return not self.points

    def as_array(self) -> np.ndarray:
        """The points as a cached, contiguous ``(N, 3)`` float64 array."""
        array = self._array
        if array is None:
            array = np.array(
                [(p.x, p.y, p.z) for p in self.points], dtype=np.float64
            ).reshape(len(self.points), 3)
            object.__setattr__(self, "_array", array)
        return array

    def origin_distances(self) -> np.ndarray:
        """Cached per-point distance to the sensor origin, ``(N,)`` float64.

        Computed with the same left-to-right summation order as
        ``Vec3.distance_to`` so every entry equals the scalar distance bit
        for bit.
        """
        distances = self._origin_distances
        if distances is None:
            pts = self.as_array()
            d = pts - np.array(
                (self.origin.x, self.origin.y, self.origin.z), dtype=np.float64
            )
            distances = np.sqrt(
                (d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2]
            )
            object.__setattr__(self, "_origin_distances", distances)
        return distances

    def nearest_distance(self) -> float:
        """Distance from the origin to the closest observed point.

        Returns ``math.inf`` for an empty cloud, signalling "no visible
        obstacle" to the profilers.
        """
        if not self.points:
            return math.inf
        if hotpath.enabled():
            return float(self.origin_distances().min())
        return min(self.origin.distance_to(p) for p in self.points)

    def centroid(self) -> Optional[Vec3]:
        """Mean of the observed points, or ``None`` when empty."""
        if not self.points:
            return None
        return centroid(list(self.points))

    def points_within(self, radius: float) -> List[Vec3]:
        """Points within ``radius`` metres of the sensor origin."""
        if hotpath.enabled() and self.points:
            mask = self.origin_distances() <= radius
            return [self.points[i] for i in np.flatnonzero(mask)]
        return [p for p in self.points if self.origin.distance_to(p) <= radius]

    def bounding_volume(self) -> float:
        """Volume (m^3) of the axis-aligned box containing all points (0 when < 2 points)."""
        if len(self.points) < 2:
            return 0.0
        return AABB.from_points(list(self.points)).volume


@dataclass
class PointCloudKernel:
    """Converts rig scans into (optionally downsampled) point clouds.

    Attributes:
        default_resolution: grid resolution used when the runtime does not
            override precision, metres.  The static baseline keeps this at the
            worst-case 0.3 m from Table II.
    """

    default_resolution: float = 0.3

    def __post_init__(self) -> None:
        if self.default_resolution <= 0:
            raise ValueError("point-cloud resolution must be positive")

    def process(
        self,
        scan: RigScan,
        resolution: Optional[float] = None,
        max_points: Optional[int] = None,
    ) -> PointCloud:
        """Convert a rig scan into a point cloud at the requested precision.

        Args:
            scan: the merged depth images from the camera rig.
            resolution: grid cell edge used for the precision operator; when
                ``None`` the kernel's default (static) resolution is used.
            max_points: optional hard cap applied after downsampling, keeping
                the points closest to the sensor (a volume-style guard used
                in stress tests; the paper's volume operators act on the map
                instead).

        Returns:
            The downsampled point cloud.
        """
        res = self.default_resolution if resolution is None else resolution
        if res <= 0:
            raise ValueError("point-cloud resolution must be positive")
        raw_points = scan.all_hit_points()
        reduced = downsample_points(raw_points, res) if raw_points else []
        if max_points is not None and len(reduced) > max_points:
            reduced.sort(key=lambda p: scan.position.distance_to(p))
            reduced = reduced[:max_points]
        return PointCloud(
            origin=scan.position,
            points=tuple(reduced),
            raw_point_count=len(raw_points),
            resolution=res,
        )

    @staticmethod
    def from_points(
        origin: Vec3, points: Sequence[Vec3], resolution: float
    ) -> PointCloud:
        """Build a cloud directly from points (used heavily by unit tests)."""
        reduced = downsample_points(list(points), resolution) if points else []
        return PointCloud(
            origin=origin,
            points=tuple(reduced),
            raw_point_count=len(points),
            resolution=resolution,
        )
