"""The reduced map view handed from perception to planning.

RoboRun's perception→planning operators control both the *precision*
(sub-sampling the octree to a coarser resolution) and the *volume*
(pruning the tree to the cells nearest the drone) of the map the planner is
allowed to see.  :class:`PlanningView` is that reduced map: a set of occupied
grid cells at the chosen precision, bounded in total volume, with the
collision queries the planner needs.

Because the cells live on a regular grid, collision queries are O(1) set
lookups per probed point; the planner's precision operator (its collision
ray-cast step) directly controls how many points each segment check probes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro import hotpath
from repro.geometry.aabb import AABB
from repro.geometry.grid import VoxelKey, voxel_center
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.spatial_index import (
    cell_margin_radius,
    point_hits_cells,
    segment_hits_cells,
)


@dataclass(frozen=True, slots=True)
class PlanningView:
    """An immutable snapshot of the map given to the planner.

    Attributes:
        precision: edge length of the occupied cells, metres.
        cells: occupied cell keys at ``precision``.
        volume_budget: the volume cap applied when building the view (``None``
            when unbounded).
        total_volume: the occupied volume actually included, m^3.
    """

    precision: float
    cells: FrozenSet[VoxelKey]
    volume_budget: Optional[float]
    total_volume: float

    def __len__(self) -> int:
        return len(self.cells)

    def is_empty(self) -> bool:
        """True when the planner sees no obstacles."""
        return not self.cells

    @property
    def boxes(self) -> Tuple[AABB, ...]:
        """The occupied cells as axis-aligned boxes (for analysis/plotting)."""
        return tuple(
            AABB.cube(voxel_center(key, self.precision), self.precision)
            for key in self.cells
        )

    # ------------------------------------------------------------------
    # Collision queries
    # ------------------------------------------------------------------
    def _neighbour_radius(self, margin: float) -> int:
        return cell_margin_radius(margin, self.precision)

    def point_in_collision(self, point: Vec3, margin: float = 0.0) -> bool:
        """True when a point lies inside (or within margin of) an occupied cell.

        The margin is applied in grid space (rounded to whole cells and capped
        at two cells) so that the check stays a handful of set lookups.
        """
        return point_hits_cells(self.cells, self.precision, point, margin)

    def segment_in_collision(
        self,
        start: Vec3,
        end: Vec3,
        margin: float = 0.0,
        ray_step: Optional[float] = None,
    ) -> bool:
        """Collision test for a straight segment against the occupied cells.

        Delegates to the spatial-index segment primitive, which probes the
        segment on raw scalars instead of materialising a point per sample.

        Args:
            start: segment start.
            end: segment end.
            margin: obstacle inflation, metres (grid-space, capped at 2 cells).
            ray_step: sampling step of the collision ray cast — the *planning
                precision operator* ("planning precision is enforced by
                modifying the raytracer, similar to OctoMap", §III-B).  When
                ``None`` the view's own cell size is used, i.e. the exact
                resolution of the map the planner was given.  Steps wider than
                a cell are clamped so thin obstacles are never skipped.
        """
        return segment_hits_cells(
            self.cells, self.precision, start, end, ray_step, margin
        )

    def nearest_obstacle_distance(self, point: Vec3, default: float = 100.0) -> float:
        """Distance from a point to the nearest occupied cell centre."""
        best_sq = default * default
        for key in self.cells:
            center = voxel_center(key, self.precision)
            dx = center.x - point.x
            dy = center.y - point.y
            dz = center.z - point.z
            d_sq = dx * dx + dy * dy + dz * dz
            if d_sq < best_sq:
                best_sq = d_sq
        return math.sqrt(best_sq)

    def bounding_box(self) -> Optional[AABB]:
        """The AABB containing every occupied cell, or None when empty."""
        if not self.cells:
            return None
        boxes = self.boxes
        result = boxes[0]
        for box in boxes[1:]:
            result = result.union(box)
        return result


def build_planning_view(
    octree: OccupancyOctree,
    precision: float,
    max_volume: Optional[float] = None,
    focus: Optional[Vec3] = None,
    region_radius: Optional[float] = None,
) -> PlanningView:
    """Build the reduced planner map from the occupancy octree.

    The octree's occupied voxels are aggregated to ``precision`` (a
    power-of-two multiple of the minimum voxel size) and, when ``max_volume``
    is given, only the cells closest to ``focus`` are kept until the volume
    budget is consumed.

    Args:
        octree: the perception-stage occupancy map.
        precision: requested planner map resolution, metres.
        max_volume: perception→planning volume budget, m^3 (``None`` = all).
        focus: prioritisation point for the volume pruning; defaults to the
            origin, but the runtime passes the drone's current position.
        region_radius: when given, cells further than this from ``focus`` are
            dropped before the volume budget is applied (a cheap broad-phase
            bound that keeps the planner's map local to the drone).
    """
    if precision <= 0:
        raise ValueError("planning view precision must be positive")
    anchor = focus if focus is not None else Vec3.zero()

    level = octree.coarsen_level_for(precision)
    resolution = octree.vox_min * (2**level)
    cell_volume = resolution**3

    candidates = list(octree.coarse_occupied_cells(precision).keys())
    if hotpath.enabled() and candidates:
        # Vectorised twin of the region filter + distance sort below: cell
        # centres are (i + 0.5) * resolution exactly as voxel_center computes
        # them, the filter compares the same left-to-right squared sum, and
        # the stable argsort reproduces list.sort's tie order.
        keys = np.array(candidates, dtype=np.int64)
        centres = (keys + 0.5) * resolution
        a = np.array((anchor.x, anchor.y, anchor.z))
        if region_radius is not None:
            d = centres - a
            d_sq = (d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2]
            mask = d_sq <= region_radius * region_radius
            kept = np.flatnonzero(mask)
            candidates = [candidates[i] for i in kept]
            centres = centres[kept]
        d = a - centres
        dist = np.sqrt((d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2])
        order = np.argsort(dist, kind="stable")
        candidates = [candidates[i] for i in order]
    else:
        if region_radius is not None:
            radius_sq = region_radius * region_radius

            def within(key: VoxelKey) -> bool:
                c = voxel_center(key, resolution)
                dx = c.x - anchor.x
                dy = c.y - anchor.y
                dz = c.z - anchor.z
                return dx * dx + dy * dy + dz * dz <= radius_sq

            candidates = [k for k in candidates if within(k)]

        candidates.sort(key=lambda k: anchor.distance_to(voxel_center(k, resolution)))

    selected: List[VoxelKey] = []
    total = 0.0
    for key in candidates:
        if max_volume is not None and total >= max_volume and selected:
            break
        selected.append(key)
        total += cell_volume

    return PlanningView(
        precision=resolution,
        cells=frozenset(selected),
        volume_budget=max_volume,
        total_volume=total,
    )
