"""Incremental spatial index for the occupancy map.

Before this module existed, every hot per-decision map query rescanned the
full occupied-voxel set in pure Python: ``nearest_occupied_distance`` was a
linear scan, ``coarse_occupied_cells`` re-aggregated every voxel for each
decision, and ``build_tree`` re-filtered the whole set once per tree node.
Decision cost therefore grew with total map size, which is exactly what a
runtime built around bounded per-decision budgets must avoid.

:class:`SpatialIndex` replaces those rescans with structures maintained
*incrementally* on every voxel insertion and removal:

* **Per-level coarse occupancy counts** — one dictionary per rung of the
  power-of-two precision ladder, mapping the coarse cell key at
  ``vox_min * 2**level`` to the number of occupied minimum-resolution voxels
  it aggregates.  ``coarse_occupied_cells`` becomes a dictionary copy and
  ``build_tree`` a single bottom-up grouping pass.
* **A coarse bucket grid** — occupied voxel keys grouped into cubic buckets
  (default ``8 × vox_min`` per edge).  Proximity queries run an
  expanding-ring search over buckets and segment probes use the bucket grid
  as a broad phase, so their cost tracks the *local* obstacle density rather
  than the total map size.

The module also provides the grid-cell collision primitives shared by the
:class:`~repro.perception.planning_view.PlanningView` and the RRT* collision
checker (:func:`point_hits_cells`, :func:`segment_hits_cells`): scalar
re-implementations of the sampled ray cast that avoid allocating a ``Vec3``
per probe on the planner's hottest loop.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.geometry.grid import VoxelKey
from repro.geometry.vec3 import Vec3

_EPS = 1e-12

# Packed-key encoding: one int64 per (i, j, k) voxel key.  Components are
# shifted by _PACK_OFF and mixed in base _PACK_BASE, supporting |i| < 2**19
# (±100 km at 0.2 m voxels) without overflowing the 63-bit positive range.
_PACK_OFF = 1 << 19
_PACK_BASE = 1 << 20


def pack_keys(ijk: np.ndarray) -> np.ndarray:
    """Encode an ``(N, 3)`` int voxel-key array into ``(N,)`` int64 scalars."""
    ijk = np.asarray(ijk, dtype=np.int64)
    return (
        (ijk[..., 0] + _PACK_OFF) * _PACK_BASE + (ijk[..., 1] + _PACK_OFF)
    ) * _PACK_BASE + (ijk[..., 2] + _PACK_OFF)


class PackedCellTable:
    """Sorted int64 membership table over a set of voxel keys.

    The batched twin of ``key in cells``: keys are packed into single int64
    scalars and kept sorted, so a batch of probes answers membership with one
    :func:`np.searchsorted` pass instead of a Python hash lookup per probe.
    """

    __slots__ = ("packed", "size")

    def __init__(self, cells: Iterable[VoxelKey]) -> None:
        keys = np.array(sorted(cells), dtype=np.int64).reshape(-1, 3)
        self.packed = np.unique(pack_keys(keys)) if keys.size else np.empty(0, np.int64)
        self.size = int(self.packed.shape[0])

    def contains_packed(self, packed: np.ndarray) -> np.ndarray:
        """Boolean membership per packed probe key."""
        if self.size == 0:
            return np.zeros(packed.shape, dtype=bool)
        pos = np.searchsorted(self.packed, packed)
        pos = np.minimum(pos, self.size - 1)
        return self.packed[pos] == packed

    def contains_batch(self, ijk: np.ndarray, radius: int = 0) -> np.ndarray:
        """Membership per ``(P, 3)`` probe key, inflated by a cube neighbourhood.

        With ``radius > 0`` a probe counts as a hit when *any* key of its
        ``(2r+1)³`` Chebyshev neighbourhood is present — the batched
        equivalent of looping :func:`neighbour_offsets`.
        """
        ijk = np.asarray(ijk, dtype=np.int64)
        if self.size == 0:
            return np.zeros(ijk.shape[0], dtype=bool)
        if radius == 0:
            return self.contains_packed(pack_keys(ijk))
        offsets = np.array(neighbour_offsets(radius), dtype=np.int64)  # (O, 3)
        probe = ijk[:, None, :] + offsets[None, :, :]  # (P, O, 3)
        return self.contains_packed(pack_keys(probe)).any(axis=1)

# Cube neighbourhood offsets by Chebyshev radius, shared by the grid-cell
# collision helpers (margins are capped at two cells by the planning view).
_NEIGHBOUR_OFFSETS: Dict[int, Tuple[VoxelKey, ...]] = {}


def neighbour_offsets(radius: int) -> Tuple[VoxelKey, ...]:
    """The (2r+1)³ integer offsets of the cube neighbourhood of radius ``r``."""
    if radius < 0:
        raise ValueError("neighbourhood radius cannot be negative")
    cached = _NEIGHBOUR_OFFSETS.get(radius)
    if cached is None:
        span = range(-radius, radius + 1)
        cached = tuple((di, dj, dk) for di in span for dj in span for dk in span)
        _NEIGHBOUR_OFFSETS[radius] = cached
    return cached


def cell_margin_radius(margin: float, resolution: float) -> int:
    """Obstacle inflation in whole cells (rounded, capped at two cells).

    The cell quantisation itself already provides roughly half a cell of
    clearance, and ceiling the radius at coarse precisions would close every
    narrow passage the planner needs — hence round-to-nearest and the cap.
    """
    if margin <= 0:
        return 0
    return min(2, int(round(margin / resolution)))


def point_hits_cells(
    cells: FrozenSet[VoxelKey] | Set[VoxelKey] | Mapping[VoxelKey, int],
    resolution: float,
    point: Vec3,
    margin: float = 0.0,
) -> bool:
    """True when ``point`` lies inside (or within ``margin`` of) an occupied cell."""
    if not cells:
        return False
    i = math.floor(point.x / resolution)
    j = math.floor(point.y / resolution)
    k = math.floor(point.z / resolution)
    radius = cell_margin_radius(margin, resolution)
    if radius == 0:
        return (i, j, k) in cells
    for di, dj, dk in neighbour_offsets(radius):
        if (i + di, j + dj, k + dk) in cells:
            return True
    return False


def segment_hits_cells(
    cells: FrozenSet[VoxelKey] | Set[VoxelKey] | Mapping[VoxelKey, int],
    resolution: float,
    start: Vec3,
    end: Vec3,
    step: Optional[float] = None,
    margin: float = 0.0,
) -> bool:
    """Sampled collision test for a straight segment against grid cells.

    Probes the segment at ``step`` intervals (clamped to one cell so thin
    obstacles are never skipped), plus the exact end point.  Semantically
    identical to sampling the ray and testing each point, but runs on raw
    scalars with the neighbourhood offsets precomputed once per call.
    """
    if not cells:
        return False
    effective = step if step is not None else resolution
    if effective <= 0:
        raise ValueError("ray step must be positive")
    effective = min(effective, resolution)

    sx, sy, sz = start.x, start.y, start.z
    dx, dy, dz = end.x - sx, end.y - sy, end.z - sz
    length = math.sqrt(dx * dx + dy * dy + dz * dz)
    radius = cell_margin_radius(margin, resolution)
    offsets = neighbour_offsets(radius) if radius else None
    floor = math.floor

    def probe(px: float, py: float, pz: float) -> bool:
        i = floor(px / resolution)
        j = floor(py / resolution)
        k = floor(pz / resolution)
        if offsets is None:
            return (i, j, k) in cells
        for di, dj, dk in offsets:
            if (i + di, j + dj, k + dk) in cells:
                return True
        return False

    if length <= _EPS:
        return probe(sx, sy, sz)
    ux, uy, uz = dx / length, dy / length, dz / length
    t = 0.0
    while t < length:
        if probe(sx + ux * t, sy + uy * t, sz + uz * t):
            return True
        t += effective
    return probe(end.x, end.y, end.z)


def point_hits_cells_batch(
    table: PackedCellTable,
    resolution: float,
    points: np.ndarray,
    margin: float = 0.0,
) -> np.ndarray:
    """Batched :func:`point_hits_cells`: one boolean per ``(P, 3)`` point."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    if table.size == 0:
        return np.zeros(pts.shape[0], dtype=bool)
    keys = np.floor(pts / resolution).astype(np.int64)
    return table.contains_batch(keys, cell_margin_radius(margin, resolution))


def segment_hits_cells_batch(
    table: PackedCellTable,
    resolution: float,
    starts: np.ndarray,
    ends: np.ndarray,
    step: Optional[float] = None,
    margin: float = 0.0,
) -> np.ndarray:
    """Batched :func:`segment_hits_cells`: one boolean per segment.

    Probe positions reproduce the scalar twin exactly: the along-segment
    parameter is accumulated with :func:`np.cumsum` (a sequential reduction,
    so each ``t`` equals the scalar ``t += step`` float for float) and the
    same strict ``t < length`` cut-off plus explicit end-point probe apply.
    """
    s = np.asarray(starts, dtype=np.float64).reshape(-1, 3)
    e = np.asarray(ends, dtype=np.float64).reshape(-1, 3)
    count = s.shape[0]
    if count == 0:
        return np.zeros(0, dtype=bool)
    if table.size == 0:
        return np.zeros(count, dtype=bool)
    effective = step if step is not None else resolution
    if effective <= 0:
        raise ValueError("ray step must be positive")
    effective = min(effective, resolution)
    radius = cell_margin_radius(margin, resolution)

    d = e - s
    length = np.sqrt((d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2])
    degenerate = length <= _EPS

    hits = np.zeros(count, dtype=bool)
    if degenerate.any():
        keys = np.floor(s[degenerate] / resolution).astype(np.int64)
        hits[degenerate] = table.contains_batch(keys, radius)

    live = np.flatnonzero(~degenerate)
    if live.size:
        live_len = length[live]
        # The scalar accumulation t = 0, e, e+e, ... is a sequential sum, so
        # cumsum reproduces every probe parameter bit for bit.
        max_probes = int(math.ceil(float(live_len.max()) / effective)) + 2
        ts = np.concatenate(
            ([0.0], np.cumsum(np.full(max_probes, effective, dtype=np.float64)))
        )
        probes_per_seg = np.searchsorted(ts, live_len, side="left")
        total = int(probes_per_seg.sum())
        seg = np.repeat(np.arange(live.size), probes_per_seg)
        offsets = np.cumsum(probes_per_seg) - probes_per_seg
        t = ts[np.arange(total) - np.repeat(offsets, probes_per_seg)]
        unit = d[live] / live_len[:, None]
        p = s[live][seg] + unit[seg] * t[:, None]
        keys = np.floor(p / resolution).astype(np.int64)
        probe_hits = table.contains_batch(keys, radius)
        line_hits = np.bincount(seg, weights=probe_hits, minlength=live.size) > 0
        end_keys = np.floor(e[live] / resolution).astype(np.int64)
        end_hits = table.contains_batch(end_keys, radius)
        hits[live] = line_hits | end_hits
    return hits


class SpatialIndex:
    """Multi-resolution voxel-bucket index over occupied minimum-size voxels.

    The index is owned by the occupancy octree and updated on every voxel
    insertion/removal, so queries never rescan the occupied set:

    * ``level_cells(level)`` — the maintained coarse occupancy counts at
      ``vox_min * 2**level`` (level 0 maps every occupied key to 1).
    * ``nearest_occupied_distance`` — expanding-ring search over buckets.
    * ``segment_occupied`` — sampled segment probe with the bucket grid as a
      broad phase.
    * ``keys_outside`` — bucket-pruned enumeration for locality eviction.

    Attributes:
        vox_min: edge length of the indexed (minimum-resolution) voxels.
        levels: number of rungs on the power-of-two coarsening ladder.
        bucket_resolution: edge length of the proximity buckets (an integer
            multiple of ``vox_min``).
    """

    __slots__ = (
        "vox_min",
        "levels",
        "bucket_resolution",
        "_bucket_factor",
        "_levels",
        "_buckets",
        "_array_dirty",
        "_packed",
        "_centres",
    )

    def __init__(
        self,
        vox_min: float,
        levels: int,
        bucket_resolution: Optional[float] = None,
    ) -> None:
        if vox_min <= 0:
            raise ValueError("minimum voxel size must be positive")
        if levels < 1:
            raise ValueError("index needs at least one level")
        self.vox_min = vox_min
        self.levels = levels
        requested = bucket_resolution if bucket_resolution is not None else vox_min * 8.0
        factor = int(round(requested / vox_min))
        if factor < 1:
            raise ValueError("bucket resolution cannot be finer than vox_min")
        self._bucket_factor = factor
        self.bucket_resolution = vox_min * factor
        self._levels: List[Dict[VoxelKey, int]] = [{} for _ in range(levels)]
        self._buckets: Dict[VoxelKey, Set[VoxelKey]] = {}
        # Lazily rebuilt array snapshot for the batch queries: a sorted packed
        # int64 key table plus the matching voxel-centre array.  Mutations
        # only flip the dirty flag, so bursts of insertions (one scan's worth
        # of point-cloud updates) pay a single rebuild at the next batch query.
        self._array_dirty = True
        self._packed = np.empty(0, dtype=np.int64)
        self._centres = np.empty((0, 3), dtype=np.float64)

    # ------------------------------------------------------------------
    # Maintenance (called by the octree on every occupancy change)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._levels[0])

    def __contains__(self, key: VoxelKey) -> bool:
        return key in self._levels[0]

    def add(self, key: VoxelKey) -> bool:
        """Index a newly occupied voxel key; returns False if already present."""
        level0 = self._levels[0]
        if key in level0:
            return False
        level0[key] = 1
        self._array_dirty = True
        i, j, k = key
        for level in range(1, self.levels):
            i //= 2
            j //= 2
            k //= 2
            counts = self._levels[level]
            coarse = (i, j, k)
            counts[coarse] = counts.get(coarse, 0) + 1
        factor = self._bucket_factor
        bucket_key = (key[0] // factor, key[1] // factor, key[2] // factor)
        bucket = self._buckets.get(bucket_key)
        if bucket is None:
            self._buckets[bucket_key] = {key}
        else:
            bucket.add(key)
        return True

    def remove(self, key: VoxelKey) -> bool:
        """Drop a no-longer-occupied voxel key; returns False if absent."""
        level0 = self._levels[0]
        if key not in level0:
            return False
        del level0[key]
        self._array_dirty = True
        i, j, k = key
        for level in range(1, self.levels):
            i //= 2
            j //= 2
            k //= 2
            counts = self._levels[level]
            coarse = (i, j, k)
            remaining = counts[coarse] - 1
            if remaining:
                counts[coarse] = remaining
            else:
                del counts[coarse]
        factor = self._bucket_factor
        bucket_key = (key[0] // factor, key[1] // factor, key[2] // factor)
        bucket = self._buckets[bucket_key]
        bucket.discard(key)
        if not bucket:
            del self._buckets[bucket_key]
        return True

    def clear(self) -> None:
        """Reset the index to empty."""
        for counts in self._levels:
            counts.clear()
        self._buckets.clear()
        self._array_dirty = True

    # ------------------------------------------------------------------
    # Maintained aggregates
    # ------------------------------------------------------------------
    def level_cells(self, level: int) -> Mapping[VoxelKey, int]:
        """Coarse occupancy counts at ladder rung ``level`` (live, read-only).

        Maps each occupied coarse cell at ``vox_min * 2**level`` to the number
        of occupied minimum-resolution voxels it aggregates.  Callers that
        need a mutable or stable snapshot must copy.
        """
        if not 0 <= level < self.levels:
            raise ValueError(f"level must be in [0, {self.levels - 1}]")
        return self._levels[level]

    def bucket_count(self) -> int:
        """Number of non-empty proximity buckets."""
        return len(self._buckets)

    # ------------------------------------------------------------------
    # Proximity queries
    # ------------------------------------------------------------------
    def nearest_occupied_distance(self, point: Vec3, max_radius: float = 100.0) -> float:
        """Distance from ``point`` to the nearest indexed voxel centre.

        Expanding-ring search: buckets are visited in shells of increasing
        Chebyshev radius around the query point's bucket, and the search stops
        as soon as no unvisited shell can contain a closer voxel.  When a
        shell would touch more buckets than the map holds, the search falls
        back to one pruned pass over all buckets, bounding the worst case at
        O(total buckets) instead of O(total voxels).

        Returns ``max_radius`` when no indexed voxel lies within the radius.
        """
        if max_radius <= 0 or not self._buckets:
            return max(max_radius, 0.0)
        vox = self.vox_min
        bres = self.bucket_resolution
        px, py, pz = point.x, point.y, point.z
        bi = math.floor(px / bres)
        bj = math.floor(py / bres)
        bk = math.floor(pz / bres)
        best_sq = max_radius * max_radius
        buckets = self._buckets
        get = buckets.get
        total = len(buckets)

        r = 0
        while True:
            inner = (r - 1) * bres
            if inner > 0 and inner * inner >= best_sq:
                break
            shell_size = 1 if r == 0 else (2 * r + 1) ** 3 - (2 * r - 1) ** 3
            if shell_size > 2 * total + 8:
                best_sq = self._nearest_over_all_buckets(px, py, pz, best_sq)
                break
            for bucket_key in self._shell(bi, bj, bk, r):
                keys = get(bucket_key)
                if not keys:
                    continue
                for (i, j, k) in keys:
                    dx = (i + 0.5) * vox - px
                    dy = (j + 0.5) * vox - py
                    dz = (k + 0.5) * vox - pz
                    d_sq = dx * dx + dy * dy + dz * dz
                    if d_sq < best_sq:
                        best_sq = d_sq
            r += 1
        return math.sqrt(best_sq)

    @staticmethod
    def _shell(bi: int, bj: int, bk: int, r: int) -> Iterator[VoxelKey]:
        """Bucket keys at exactly Chebyshev radius ``r`` from ``(bi, bj, bk)``."""
        if r == 0:
            yield (bi, bj, bk)
            return
        full = range(-r, r + 1)
        inner = range(-r + 1, r)
        for di in (-r, r):
            for dj in full:
                for dk in full:
                    yield (bi + di, bj + dj, bk + dk)
        for dj in (-r, r):
            for di in inner:
                for dk in full:
                    yield (bi + di, bj + dj, bk + dk)
        for dk in (-r, r):
            for di in inner:
                for dj in inner:
                    yield (bi + di, bj + dj, bk + dk)

    def _nearest_over_all_buckets(self, px: float, py: float, pz: float, best_sq: float) -> float:
        """One pruned pass over every bucket; returns the improved ``best_sq``."""
        vox = self.vox_min
        bres = self.bucket_resolution
        for (bi, bj, bk), keys in self._buckets.items():
            lo_x = bi * bres
            lo_y = bj * bres
            lo_z = bk * bres
            dx = lo_x - px if px < lo_x else (px - lo_x - bres if px > lo_x + bres else 0.0)
            dy = lo_y - py if py < lo_y else (py - lo_y - bres if py > lo_y + bres else 0.0)
            dz = lo_z - pz if pz < lo_z else (pz - lo_z - bres if pz > lo_z + bres else 0.0)
            if dx * dx + dy * dy + dz * dz >= best_sq:
                continue
            for (i, j, k) in keys:
                ddx = (i + 0.5) * vox - px
                ddy = (j + 0.5) * vox - py
                ddz = (k + 0.5) * vox - pz
                d_sq = ddx * ddx + ddy * ddy + ddz * ddz
                if d_sq < best_sq:
                    best_sq = d_sq
        return best_sq

    def segment_occupied(
        self,
        start: Vec3,
        end: Vec3,
        step: float,
        lateral: float = 0.0,
        include_start: bool = True,
    ) -> bool:
        """Sampled occupancy probe along a segment, bucket grid as broad phase.

        Probes ``intervals + 1`` evenly spaced points with
        ``intervals = max(1, int(length / step))``, so both endpoints are
        always probed but the spacing between probes can reach up to twice
        ``step`` on segments shorter than ``2 * step`` (the sampling the
        simulator's checks have always used — this is a sampled, not exact,
        traversal).  At each probe the voxel containing it — and, when
        ``lateral > 0``, the four voxels at ``±lateral`` along x and y — is
        tested.  Probes whose bucket is empty (and whose lateral offsets
        cannot reach a neighbouring bucket) skip the per-voxel lookups
        entirely.

        Args:
            start: segment start.
            end: segment end.
            step: probe spacing in metres.
            lateral: half-width of the probed tube (0 probes the centre line
                only); used by the emergency brake's grazing check.
            include_start: when False the probe at ``start`` itself is skipped
                (the brake excludes the drone's own voxel) and the spacing is
                tightened by one extra interval so coverage is preserved.
        """
        if step <= 0:
            raise ValueError("probe step must be positive")
        occupied = self._levels[0]
        if not occupied:
            return False
        sx, sy, sz = start.x, start.y, start.z
        ex, ey, ez = end.x, end.y, end.z
        dx, dy, dz = ex - sx, ey - sy, ez - sz
        length = math.sqrt(dx * dx + dy * dy + dz * dz)
        if include_start:
            intervals = max(1, int(length / step))
            first = 0
        else:
            intervals = max(2, int(length / step) + 1)
            first = 1

        vox = self.vox_min
        bres = self.bucket_resolution
        buckets = self._buckets
        floor = math.floor
        for n in range(first, intervals + 1):
            t = n / intervals
            px = sx + dx * t
            py = sy + dy * t
            pz = sz + dz * t
            bucket_key = (floor(px / bres), floor(py / bres), floor(pz / bres))
            if bucket_key not in buckets:
                if lateral == 0.0:
                    continue
                fx = px - bucket_key[0] * bres
                fy = py - bucket_key[1] * bres
                if lateral < fx < bres - lateral and lateral < fy < bres - lateral:
                    continue
            i = floor(px / vox)
            j = floor(py / vox)
            k = floor(pz / vox)
            if (i, j, k) in occupied:
                return True
            if lateral:
                if (floor((px + lateral) / vox), j, k) in occupied:
                    return True
                if (floor((px - lateral) / vox), j, k) in occupied:
                    return True
                if (i, floor((py + lateral) / vox), k) in occupied:
                    return True
                if (i, floor((py - lateral) / vox), k) in occupied:
                    return True
        return False

    # ------------------------------------------------------------------
    # Batch queries (vectorised twins)
    # ------------------------------------------------------------------
    def _array_snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """The sorted packed-key table and matching ``(N, 3)`` centre array.

        Rebuilt lazily: occupancy mutations only mark the snapshot dirty, so
        one rebuild per decision epoch serves every batch query that follows.
        """
        if self._array_dirty:
            level0 = self._levels[0]
            if level0:
                keys = np.array(list(level0), dtype=np.int64).reshape(-1, 3)
                packed = pack_keys(keys)
                order = np.argsort(packed)
                self._packed = packed[order]
                self._centres = (keys[order].astype(np.float64) + 0.5) * self.vox_min
            else:
                self._packed = np.empty(0, dtype=np.int64)
                self._centres = np.empty((0, 3), dtype=np.float64)
            self._array_dirty = False
        return self._packed, self._centres

    def _contains_packed(self, packed: np.ndarray) -> np.ndarray:
        """Boolean membership per packed probe key against the snapshot."""
        table, _ = self._array_snapshot()
        if table.shape[0] == 0:
            return np.zeros(packed.shape, dtype=bool)
        pos = np.minimum(np.searchsorted(table, packed), table.shape[0] - 1)
        return table[pos] == packed

    def segment_occupied_batch(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        step: float,
        lateral: float = 0.0,
        include_start: bool = True,
    ) -> np.ndarray:
        """Batched :meth:`segment_occupied`: one boolean per segment.

        Probe positions replicate the scalar twin exactly — the parameter of
        probe ``n`` is ``n / intervals`` with the same interval count — so a
        segment reports occupied if and only if the scalar probe would.  The
        scalar's bucket broad phase is replaced by one sorted-table
        membership pass, which cannot change the outcome (a voxel absent from
        every bucket is absent from the table).
        """
        if step <= 0:
            raise ValueError("probe step must be positive")
        s = np.asarray(starts, dtype=np.float64).reshape(-1, 3)
        e = np.asarray(ends, dtype=np.float64).reshape(-1, 3)
        count = s.shape[0]
        if count == 0 or not self._levels[0]:
            return np.zeros(count, dtype=bool)
        d = e - s
        length = np.sqrt(
            (d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2]
        )
        if include_start:
            intervals = np.maximum(1, (length / step).astype(np.int64))
            first = 0
        else:
            intervals = np.maximum(2, (length / step).astype(np.int64) + 1)
            first = 1
        probes_per_seg = intervals - first + 1
        total = int(probes_per_seg.sum())
        seg = np.repeat(np.arange(count), probes_per_seg)
        offsets = np.cumsum(probes_per_seg) - probes_per_seg
        n = np.arange(total) - np.repeat(offsets, probes_per_seg) + first
        t = n / intervals[seg]
        p = s[seg] + d[seg] * t[:, None]

        vox = self.vox_min
        keys = np.floor(p / vox).astype(np.int64)
        hit = self._contains_packed(pack_keys(keys))
        if lateral:
            for axis, delta in ((0, lateral), (0, -lateral), (1, lateral), (1, -lateral)):
                shifted = keys.copy()
                shifted[:, axis] = np.floor((p[:, axis] + delta) / vox).astype(np.int64)
                hit = hit | self._contains_packed(pack_keys(shifted))
        return np.bincount(seg, weights=hit, minlength=count) > 0

    def nearest_occupied_distance_batch(
        self, points: np.ndarray, max_radius: float = 100.0
    ) -> np.ndarray:
        """Batched :meth:`nearest_occupied_distance`: one distance per point.

        Scans the voxel-centre snapshot in one broadcast pass per chunk of
        query points; the scalar twin's expanding-ring search visits a subset
        of voxels but is pruned conservatively, so both return the same
        minimum (saturated at ``max_radius``).
        """
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        _, centres = self._array_snapshot()
        if max_radius <= 0 or centres.shape[0] == 0:
            return np.full(pts.shape[0], max(max_radius, 0.0))
        best_sq = np.full(pts.shape[0], max_radius * max_radius)
        chunk = max(1, 4_000_000 // max(centres.shape[0], 1))
        for lo in range(0, pts.shape[0], chunk):
            block = pts[lo : lo + chunk]
            diff = centres[None, :, :] - block[:, None, :]
            d_sq = (
                diff[..., 0] * diff[..., 0] + diff[..., 1] * diff[..., 1]
            ) + diff[..., 2] * diff[..., 2]
            best_sq[lo : lo + chunk] = np.minimum(
                best_sq[lo : lo + chunk], d_sq.min(axis=1)
            )
        return np.sqrt(best_sq)

    # ------------------------------------------------------------------
    # Locality eviction support
    # ------------------------------------------------------------------
    def keys_outside(self, center: Vec3, radius: float) -> List[VoxelKey]:
        """Indexed keys whose voxel centre lies strictly beyond ``radius``.

        Buckets entirely beyond the radius contribute all their keys without
        per-voxel tests; buckets entirely inside contribute none; only the
        boundary shell is examined voxel by voxel.
        """
        if radius < 0:
            raise ValueError("radius cannot be negative")
        vox = self.vox_min
        bres = self.bucket_resolution
        half = 0.5 * vox
        cx, cy, cz = center.x, center.y, center.z
        radius_sq = radius * radius
        outside: List[VoxelKey] = []
        for (bi, bj, bk), keys in self._buckets.items():
            # Voxel centres within this bucket span [lo + half, hi - half].
            lo_x = bi * bres + half
            hi_x = (bi + 1) * bres - half
            lo_y = bj * bres + half
            hi_y = (bj + 1) * bres - half
            lo_z = bk * bres + half
            hi_z = (bk + 1) * bres - half
            near_x = lo_x - cx if cx < lo_x else (cx - hi_x if cx > hi_x else 0.0)
            near_y = lo_y - cy if cy < lo_y else (cy - hi_y if cy > hi_y else 0.0)
            near_z = lo_z - cz if cz < lo_z else (cz - hi_z if cz > hi_z else 0.0)
            if near_x * near_x + near_y * near_y + near_z * near_z > radius_sq:
                outside.extend(keys)
                continue
            far_x = max(cx - lo_x, hi_x - cx)
            far_y = max(cy - lo_y, hi_y - cy)
            far_z = max(cz - lo_z, hi_z - cz)
            if far_x * far_x + far_y * far_y + far_z * far_z <= radius_sq:
                continue
            for (i, j, k) in keys:
                dx = (i + 0.5) * vox - cx
                dy = (j + 0.5) * vox - cy
                dz = (k + 0.5) * vox - cz
                if dx * dx + dy * dy + dz * dz > radius_sq:
                    outside.append((i, j, k))
        return outside

    # ------------------------------------------------------------------
    # Validation (used by tests)
    # ------------------------------------------------------------------
    def matches(self, occupied: Set[VoxelKey]) -> bool:
        """True when the index is exactly consistent with an occupied set."""
        if set(self._levels[0]) != occupied:
            return False
        for level in range(1, self.levels):
            factor = 2**level
            expected: Dict[VoxelKey, int] = {}
            for (i, j, k) in occupied:
                coarse = (i // factor, j // factor, k // factor)
                expected[coarse] = expected.get(coarse, 0) + 1
            if self._levels[level] != expected:
                return False
        factor = self._bucket_factor
        expected_buckets: Dict[VoxelKey, Set[VoxelKey]] = {}
        for (i, j, k) in occupied:
            expected_buckets.setdefault((i // factor, j // factor, k // factor), set()).add(
                (i, j, k)
            )
        return self._buckets == expected_buckets
