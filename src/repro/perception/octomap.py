"""An occupancy octree — the OctoMap substitute.

"The OctoMap kernel then accumulates these point clouds into a 3D map and
encodes them in a tree data structure where each leaf is a voxel" (§III-A).
This module provides :class:`OccupancyOctree`, a pure-Python occupancy map
with the specific hooks RoboRun's operators require:

* **OctoMap precision operator** — the insertion ray caster's *step size* is a
  parameter of :meth:`OccupancyOctree.insert_point_cloud`; a larger step
  visits fewer cells (cheaper, coarser free-space carving).
* **OctoMap volume operator** — insertion accepts a volume budget: points are
  sorted by distance to the drone's position/trajectory and integrated one by
  one until the newly added volume exceeds the budget ("sorted points are
  integrated one by one until their resulting volume exceeds the desired
  threshold", §III-B).
* **Perception→planning precision/volume operators** — the map can be
  *coarsened* to any power-of-two multiple of the minimum voxel size and
  *pruned* to a bounded volume, producing the reduced view handed to the
  planner (:meth:`coarse_occupied_cells`, :meth:`build_tree`,
  :func:`prune_tree_to_volume`).

Two simulation shortcuts keep pure-Python missions tractable without changing
the behaviour the runtime observes:

* occupied space is stored at the minimum voxel size, but observed-*free*
  space is tracked at a coarser bookkeeping resolution (default
  ``8 × vox_min``); the free set only answers "has this region been observed"
  for the visibility/unknown-space profilers, where coarse granularity is
  sufficient; and
* the number of cells a real ray caster *would* touch at the requested step
  is computed analytically and reported in the insertion statistics, so the
  compute model charges the true precision-dependent cost even though the
  Python-side bookkeeping is coarse.

Every mutation of the occupied set also updates a
:class:`~repro.perception.spatial_index.SpatialIndex`, so the per-decision
queries — nearest obstacle, coarse aggregation, tree construction, segment
probes and locality eviction — run against incrementally maintained
structures instead of rescanning the map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import hotpath
from repro.geometry.aabb import AABB
from repro.geometry.grid import VoxelKey, voxel_center, voxel_key
from repro.geometry.ray import sample_ray
from repro.geometry.vec3 import Vec3
from repro.perception.point_cloud import PointCloud
from repro.perception.spatial_index import SpatialIndex


def allowed_precisions(vox_min: float, levels: int) -> List[float]:
    """The power-of-two precision ladder imposed by the OctoMap framework.

    Equation (3)'s constraint set requires every stage precision to be
    ``vox_min * 2**n`` for ``0 <= n <= d - 1``.
    """
    if vox_min <= 0:
        raise ValueError("minimum voxel size must be positive")
    if levels < 1:
        raise ValueError("need at least one precision level")
    return [vox_min * (2**n) for n in range(levels)]


@dataclass
class OctreeNode:
    """A node of the explicit occupancy octree.

    Attributes:
        center: world-space centre of the cube this node covers.
        size: edge length of the cube, metres.
        depth: 0 for leaves at the minimum resolution, increasing upward.
        occupied_leaves: number of occupied minimum-resolution voxels below
            this node (a leaf contributes 1 when occupied).
        children: child nodes; empty for leaves or pruned subtrees.
    """

    center: Vec3
    size: float
    depth: int
    occupied_leaves: int = 0
    children: List["OctreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def volume(self) -> float:
        """Volume covered by this node, m^3."""
        return self.size**3

    def occupied_volume(self, vox_min: float) -> float:
        """Volume of occupied minimum-resolution voxels under this node."""
        return self.occupied_leaves * vox_min**3

    def count_nodes(self) -> int:
        """Total nodes in the subtree rooted here (including this node)."""
        return 1 + sum(child.count_nodes() for child in self.children)

    def leaves(self) -> List["OctreeNode"]:
        """All leaf nodes of the subtree."""
        if self.is_leaf:
            return [self]
        result: List[OctreeNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result


class OccupancyOctree:
    """A sparse occupancy map with hierarchical (power-of-two) coarsening.

    Occupancy follows the usual ternary convention: a minimum-resolution voxel
    is *occupied* once a point-cloud endpoint lands in it, a (coarse) region is
    *free* once an insertion ray has passed through it without terminating
    there, and space is *unknown* otherwise.  Occupied status wins over free
    status, which is the conservative choice for collision avoidance.
    """

    def __init__(
        self,
        vox_min: float = 0.3,
        levels: int = 6,
        free_resolution: Optional[float] = None,
    ) -> None:
        if vox_min <= 0:
            raise ValueError("minimum voxel size must be positive")
        if levels < 1:
            raise ValueError("octree needs at least one level")
        self.vox_min = vox_min
        self.levels = levels
        self.free_resolution = (
            free_resolution if free_resolution is not None else vox_min * 8.0
        )
        if self.free_resolution < vox_min:
            raise ValueError("free-space resolution cannot be finer than vox_min")
        self._occupied: Set[VoxelKey] = set()
        self._free: Set[VoxelKey] = set()
        self._index = SpatialIndex(self.vox_min, self.levels)
        self._last_insert_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Basic cell operations
    # ------------------------------------------------------------------
    def _add_occupied(self, key: VoxelKey) -> None:
        """Add one occupied voxel, keeping the spatial index in sync."""
        if key not in self._occupied:
            self._occupied.add(key)
            self._index.add(key)

    def _remove_occupied(self, key: VoxelKey) -> None:
        """Remove one occupied voxel, keeping the spatial index in sync."""
        if key in self._occupied:
            self._occupied.remove(key)
            self._index.remove(key)

    def mark_occupied(self, point: Vec3) -> VoxelKey:
        """Mark the minimum-resolution voxel containing ``point`` as occupied."""
        key = voxel_key(point, self.vox_min)
        self._add_occupied(key)
        self._free.discard(voxel_key(point, self.free_resolution))
        return key

    def mark_box(self, box: "AABB") -> List[VoxelKey]:
        """Mark every minimum-resolution voxel overlapping a box as occupied.

        The dynamic-obstacle path: each mover's footprint is stamped into
        the map once per decision epoch.  Every mark flows through the
        incremental spatial index, so downstream probes (nearest obstacle,
        segment occupancy, coarse aggregation) see the box with no rebuild.

        Returns:
            The voxel keys this call *newly* occupied — hand them back to
            :meth:`clear_cells` to un-mark the footprint before re-marking
            it elsewhere.  Voxels that were already occupied (e.g. a static
            wall the box overlaps, integrated from sensor data) are not
            returned, so clearing the footprint later cannot erase them.
        """
        lo = voxel_key(box.min_corner, self.vox_min)
        hi = voxel_key(box.max_corner, self.vox_min)
        keys: List[VoxelKey] = []
        for i in range(lo[0], hi[0] + 1):
            for j in range(lo[1], hi[1] + 1):
                for k in range(lo[2], hi[2] + 1):
                    key = (i, j, k)
                    if key in self._occupied:
                        continue
                    self._add_occupied(key)
                    self._free.discard(
                        voxel_key(voxel_center(key, self.vox_min), self.free_resolution)
                    )
                    keys.append(key)
        return keys

    def clear_cells(self, keys: Iterable[VoxelKey]) -> int:
        """Un-mark the given voxels (index-maintained); returns the count cleared.

        Voxels that are no longer occupied (e.g. already erased by a
        measurement ray passing through) are skipped silently.
        """
        cleared = 0
        for key in keys:
            if key in self._occupied:
                self._remove_occupied(key)
                cleared += 1
        return cleared

    def mark_free(self, point: Vec3) -> VoxelKey:
        """Mark the coarse region containing ``point`` as observed-free.

        A region that already contains an occupied voxel keeps its occupied
        voxels; the free mark only records that the region has been observed.
        """
        key = voxel_key(point, self.free_resolution)
        self._free.add(key)
        return key

    def is_occupied(self, point: Vec3) -> bool:
        """True when the minimum-resolution voxel containing the point is occupied."""
        return voxel_key(point, self.vox_min) in self._occupied

    def is_free(self, point: Vec3) -> bool:
        """True when the point's region has been observed and holds no occupied voxel."""
        if self.is_occupied(point):
            return False
        return voxel_key(point, self.free_resolution) in self._free

    def is_unknown(self, point: Vec3) -> bool:
        """True when the point's region has never been observed."""
        if voxel_key(point, self.vox_min) in self._occupied:
            return False
        return voxel_key(point, self.free_resolution) not in self._free

    # ------------------------------------------------------------------
    # Point-cloud insertion (the OctoMap kernel proper)
    # ------------------------------------------------------------------
    def insert_point_cloud(
        self,
        cloud: PointCloud,
        ray_step: Optional[float] = None,
        max_volume: Optional[float] = None,
        focus: Optional[Vec3] = None,
    ) -> Dict[str, float]:
        """Integrate a point cloud into the map.

        For every point, the space between the sensor origin and the point is
        carved as free and the endpoint voxel is marked occupied.

        Args:
            cloud: the point cloud to integrate.
            ray_step: step size of the free-space ray caster in metres.  When
                ``None`` the minimum voxel size is used; larger steps are the
                OctoMap *precision operator* and touch fewer cells.
            max_volume: volume budget in m^3 for the space integrated this
                insertion (the OctoMap *volume operator*).  Points are
                integrated in order of increasing distance to ``focus`` and
                insertion stops once the volume covered by the integrated rays
                exceeds the budget, so far-away space is dropped first.
            focus: the point insertion priority is measured from; defaults to
                the sensor origin.  The runtime passes the nearest trajectory
                point here, matching "we sort the space based on the distance
                to the MAV's trajectory" (§III-B).

        Returns:
            Statistics of the insertion: points integrated, points skipped,
            cells updated (at the requested ray step — the quantity the
            compute model charges) and the volume integrated under the budget.
        """
        if ray_step is not None and ray_step <= 0:
            raise ValueError("ray-caster step must be positive")
        if max_volume is not None and max_volume < 0:
            raise ValueError("volume budget cannot be negative")

        origin = cloud.origin
        anchor = focus if focus is not None else origin
        ordered = sorted(cloud.points, key=lambda p: anchor.distance_to(p))
        # Endpoints observed in this very cloud are protected from the
        # free-space clearing below: one ray grazing another ray's endpoint
        # must not erase an obstacle we are observing right now.
        protected = {voxel_key(p, self.vox_min) for p in ordered}

        # Precompute every ray's sample keys in one vectorised pass.  Rays
        # past the volume budget simply leave their entry unused; the set
        # mutations themselves are replayed sequentially per ray below, so
        # the resulting map is identical to the scalar integration.
        bulk: Optional[List[Tuple[List[VoxelKey], List[VoxelKey]]]] = None
        if hotpath.enabled() and ordered:
            effective_step = max(
                ray_step if ray_step is not None else self.vox_min, self.vox_min
            )
            bookkeeping_step = max(effective_step, self.free_resolution)
            bulk = self._ray_sample_keys_bulk(origin, ordered, bookkeeping_step)

        new_volume = 0.0
        integrated = 0
        skipped = 0
        cells_updated = 0

        for index, point in enumerate(ordered):
            if max_volume is not None and new_volume >= max_volume:
                # Budget exhausted: the expensive free-space carving is skipped
                # for the remaining (farther) points, but their endpoint voxels
                # are still recorded so the obstacle map stays complete — the
                # volume operator trades away free-space knowledge, not the
                # obstacles themselves.
                endpoint_key = voxel_key(point, self.vox_min)
                self._add_occupied(endpoint_key)
                self._free.discard(voxel_key(point, self.free_resolution))
                cells_updated += 1
                skipped += 1
                continue
            charged, added_volume = self._integrate_single(
                origin,
                point,
                ray_step,
                protected,
                precomputed=bulk[index] if bulk is not None else None,
            )
            cells_updated += charged
            new_volume += added_volume
            integrated += 1

        self._last_insert_stats = {
            "points_integrated": float(integrated),
            "points_skipped": float(skipped),
            "cells_updated": float(cells_updated),
            "integrated_volume": new_volume,
        }
        return dict(self._last_insert_stats)

    def _integrate_single(
        self,
        origin: Vec3,
        point: Vec3,
        ray_step: Optional[float],
        protected: Optional[Set[VoxelKey]] = None,
        precomputed: Optional[Tuple[List[VoxelKey], List[VoxelKey]]] = None,
    ) -> Tuple[int, float]:
        """Integrate one measurement ray.

        Returns:
            ``(charged_cells, integrated_volume)``: the number of cells a real
            ray caster would touch at the requested step, and the volume of
            space covered by this ray's traversal (counted whether or not the
            space had been observed before — re-processing known space is what
            the volume operator exists to bound).
        """
        distance = origin.distance_to(point)
        effective_step = max(ray_step if ray_step is not None else self.vox_min, self.vox_min)
        charged_cells = int(distance / effective_step) + 1

        integrated_volume = self.vox_min**3
        free_cell_volume = self.free_resolution**3
        bookkeeping_step = max(effective_step, self.free_resolution)
        if hotpath.enabled():
            # Batched twin of sampling the ray point by point: the sample
            # coordinates come from the same sequential step accumulation
            # (cumsum) and the same floor quantisation, so the key sequence —
            # and therefore every set mutation below — is identical.  The set
            # updates themselves stay sequential because clearing depends on
            # the occupancy state left by earlier rays of this insertion.
            if precomputed is not None:
                free_keys, occ_keys = precomputed
            else:
                free_keys, occ_keys = self._ray_sample_keys(
                    origin, point, bookkeeping_step
                )
            for key, sample_key in zip(free_keys, occ_keys):
                self._free.add(key)
                integrated_volume += free_cell_volume
                if protected is None or sample_key not in protected:
                    self._remove_occupied(sample_key)
        else:
            for sample in sample_ray(origin, point, bookkeeping_step)[:-1]:
                key = voxel_key(sample, self.free_resolution)
                self._free.add(key)
                integrated_volume += free_cell_volume
                # A measurement ray passing through a voxel previously believed
                # occupied is evidence that the voxel is actually free — the
                # counterpart of OctoMap's probabilistic clearing.  This erases
                # phantom cells created by coarse point-cloud averaging once the
                # drone observes the area again.  Endpoints of the current cloud
                # are protected.
                sample_key = voxel_key(sample, self.vox_min)
                if protected is None or sample_key not in protected:
                    self._remove_occupied(sample_key)

        endpoint_key = voxel_key(point, self.vox_min)
        self._add_occupied(endpoint_key)
        self._free.discard(voxel_key(point, self.free_resolution))
        return charged_cells, integrated_volume

    def _ray_sample_keys(
        self, origin: Vec3, point: Vec3, step: float
    ) -> Tuple[List[VoxelKey], List[VoxelKey]]:
        """Voxel keys of the free-space samples along one measurement ray.

        Returns the keys at the free bookkeeping resolution and at the
        occupied resolution for every sample ``origin + unit * t`` with the
        scalar twin's accumulated ``t < length`` (the end point excluded),
        quantised with the same ``floor(x / resolution)``.
        """
        ox, oy, oz = origin.x, origin.y, origin.z
        dx, dy, dz = point.x - ox, point.y - oy, point.z - oz
        length = math.sqrt(dx * dx + dy * dy + dz * dz)
        if length <= 1e-12:
            return [], []
        max_probes = int(length / step) + 2
        ts = np.concatenate(
            ([0.0], np.cumsum(np.full(max_probes, step, dtype=np.float64)))
        )
        ts = ts[ts < length]
        unit = np.array((dx / length, dy / length, dz / length))
        pts = np.array((ox, oy, oz)) + unit[None, :] * ts[:, None]
        free_keys = np.floor(pts / self.free_resolution).astype(np.int64)
        occ_keys = np.floor(pts / self.vox_min).astype(np.int64)
        return (
            [tuple(row) for row in free_keys.tolist()],
            [tuple(row) for row in occ_keys.tolist()],
        )

    def _ray_sample_keys_bulk(
        self, origin: Vec3, points: List[Vec3], step: float
    ) -> List[Tuple[List[VoxelKey], List[VoxelKey]]]:
        """Per-ray sample keys for a whole cloud insertion, in one array pass.

        Every ray shares the insertion origin and bookkeeping step, so all
        sample coordinates are produced by a single ragged broadcast; the
        per-ray key sequences match :meth:`_ray_sample_keys` exactly.
        """
        o = np.array((origin.x, origin.y, origin.z), dtype=np.float64)
        targets = np.array([(p.x, p.y, p.z) for p in points], dtype=np.float64)
        d = targets - o
        lengths = np.sqrt(
            (d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]) + d[:, 2] * d[:, 2]
        )
        live = lengths > 1e-12
        counts = np.zeros(len(points), dtype=np.int64)
        if live.any():
            max_probes = int(float(lengths[live].max()) / step) + 2
            ts = np.concatenate(
                ([0.0], np.cumsum(np.full(max_probes, step, dtype=np.float64)))
            )
            counts[live] = np.searchsorted(ts, lengths[live], side="left")
        total = int(counts.sum())
        if total == 0:
            return [([], []) for _ in points]
        seg = np.repeat(np.arange(len(points)), counts)
        offsets = np.cumsum(counts) - counts
        t = ts[np.arange(total) - np.repeat(offsets, counts)]
        with np.errstate(divide="ignore", invalid="ignore"):
            unit = np.where(live[:, None], d / lengths[:, None], 0.0)
        pts = o + unit[seg] * t[:, None]
        free_rows = np.floor(pts / self.free_resolution).astype(np.int64).tolist()
        occ_rows = np.floor(pts / self.vox_min).astype(np.int64).tolist()
        results: List[Tuple[List[VoxelKey], List[VoxelKey]]] = []
        for index in range(len(points)):
            a = int(offsets[index])
            b = a + int(counts[index])
            results.append(
                (
                    [tuple(row) for row in free_rows[a:b]],
                    [tuple(row) for row in occ_rows[a:b]],
                )
            )
        return results

    @property
    def last_insert_stats(self) -> Dict[str, float]:
        """Statistics of the most recent insertion (empty before any insert)."""
        return dict(self._last_insert_stats)

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------
    def occupied_keys(self) -> Set[VoxelKey]:
        """Copy of the occupied minimum-resolution voxel keys."""
        return set(self._occupied)

    def occupied_voxel_count(self) -> int:
        """Number of occupied minimum-resolution voxels."""
        return len(self._occupied)

    def free_region_count(self) -> int:
        """Number of observed-free coarse regions."""
        return len(self._free)

    def observed_voxel_count(self) -> int:
        """Number of observed cells (occupied voxels plus free regions)."""
        return len(self._occupied) + len(self._free)

    def occupied_volume(self) -> float:
        """Total occupied volume, m^3."""
        return len(self._occupied) * self.vox_min**3

    def observed_volume(self) -> float:
        """Total observed (occupied + free) volume, m^3 — the paper's v_map."""
        return (
            len(self._occupied) * self.vox_min**3
            + len(self._free) * self.free_resolution**3
        )

    def occupied_centers(self) -> List[Vec3]:
        """World-space centres of every occupied minimum-resolution voxel."""
        return [voxel_center(key, self.vox_min) for key in self._occupied]

    def nearest_occupied_distance(self, point: Vec3, max_radius: float = 100.0) -> float:
        """Distance from ``point`` to the nearest occupied voxel centre.

        An expanding-ring search over the spatial index's bucket grid, so the
        cost tracks the distance to the nearest obstacle rather than the total
        number of occupied voxels.  Returns ``max_radius`` when the map has no
        occupied voxel within the radius (or no occupied voxels at all), which
        the profilers interpret as "no known obstacle nearby".
        """
        return self._index.nearest_occupied_distance(point, max_radius)

    def segment_occupied(
        self,
        start: Vec3,
        end: Vec3,
        step: Optional[float] = None,
        lateral: float = 0.0,
        include_start: bool = True,
    ) -> bool:
        """Sampled occupancy probe along a segment (index-backed).

        Used by the simulator's blocked-trajectory and emergency-brake checks:
        probes the segment at ``step`` spacing (default the minimum voxel
        size), optionally widening the probe by ``±lateral`` along x and y,
        against the occupancy map at its native resolution.  The spatial
        index's bucket grid acts as a broad phase, so probes through empty
        space cost one dictionary lookup each.
        """
        effective = step if step is not None else self.vox_min
        return self._index.segment_occupied(
            start, end, effective, lateral=lateral, include_start=include_start
        )

    def segment_occupied_batch(
        self,
        starts,
        ends,
        step: Optional[float] = None,
        lateral: float = 0.0,
        include_start: bool = True,
    ):
        """Batched :meth:`segment_occupied`: one boolean per ``(S, 3)`` segment."""
        effective = step if step is not None else self.vox_min
        return self._index.segment_occupied_batch(
            starts, ends, effective, lateral=lateral, include_start=include_start
        )

    def nearest_occupied_distance_batch(self, points, max_radius: float = 100.0):
        """Batched :meth:`nearest_occupied_distance`: one distance per point."""
        return self._index.nearest_occupied_distance_batch(points, max_radius)

    def nearest_unknown_distance(
        self, point: Vec3, search_radius: float, step: Optional[float] = None
    ) -> float:
        """Distance to the nearest never-observed region within a radius.

        Unknown space limits visibility: the drone cannot assume unobserved
        space is free.  The search probes the six axis directions at
        increasing radii and returns ``search_radius`` when everything nearby
        has been observed.
        """
        if search_radius <= 0:
            return 0.0
        probe_step = step if step is not None else self.free_resolution
        r = probe_step
        directions = (
            Vec3.unit_x(),
            -Vec3.unit_x(),
            Vec3.unit_y(),
            -Vec3.unit_y(),
            Vec3.unit_z(),
            -Vec3.unit_z(),
        )
        while r <= search_radius:
            for direction in directions:
                if self.is_unknown(point + direction * r):
                    return r
            r += probe_step
        return search_radius

    def forget_beyond(self, center: Vec3, radius: float) -> int:
        """Drop observed cells further than ``radius`` from ``center``.

        Keeps the map local to the drone, bounding memory and query cost over
        long missions (the paper's baseline likewise sizes its map to "an
        average warehouse" rather than the whole mission corridor).

        Returns:
            The number of cells forgotten.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        radius_sq = radius * radius

        before = len(self._occupied) + len(self._free)
        # The index prunes whole buckets against the radius, so only the
        # boundary shell of the occupied set is tested voxel by voxel.
        for key in self._index.keys_outside(center, radius):
            self._remove_occupied(key)

        def keep(key: VoxelKey, resolution: float) -> bool:
            c = voxel_center(key, resolution)
            dx = c.x - center.x
            dy = c.y - center.y
            dz = c.z - center.z
            return dx * dx + dy * dy + dz * dz <= radius_sq

        self._free = {k for k in self._free if keep(k, self.free_resolution)}
        return before - (len(self._occupied) + len(self._free))

    # ------------------------------------------------------------------
    # Coarsening / pruning (perception→planning operators)
    # ------------------------------------------------------------------
    def coarsen_level_for(self, precision: float) -> int:
        """Map a requested precision to the closest allowed coarsening level."""
        if precision < self.vox_min:
            return 0
        level = int(round(math.log2(precision / self.vox_min)))
        return max(0, min(level, self.levels - 1))

    def coarse_occupied_cells(self, precision: float) -> Dict[VoxelKey, int]:
        """Occupied cells aggregated to a coarser, power-of-two resolution.

        Returns a mapping from coarse voxel key (at ``precision``) to the
        number of occupied minimum-resolution voxels it aggregates.  This is
        the sub-sampling precision operator for the map handed to the planner.
        The aggregation is maintained incrementally by the spatial index, so
        this is a snapshot copy rather than a rescan of the occupied set.
        """
        level = self.coarsen_level_for(precision)
        return dict(self._index.level_cells(level))

    def coarse_cell_boxes(self, precision: float) -> List[Tuple[Vec3, float]]:
        """Centres and edge lengths of the coarse occupied cells."""
        level = self.coarsen_level_for(precision)
        resolution = self.vox_min * (2**level)
        return [
            (voxel_center(key, resolution), resolution)
            for key in self.coarse_occupied_cells(precision)
        ]

    def build_tree(self) -> OctreeNode:
        """Materialise the explicit octree over the occupied voxels.

        The root covers the smallest power-of-two region (in units of
        ``vox_min * 2**(levels-1)``) containing every occupied voxel.  Nodes
        subdivide down to the minimum resolution; empty octants are omitted,
        so the tree is sparse.

        Construction is a single bottom-up pass over the spatial index's
        maintained level maps: leaves are created for every occupied voxel and
        grouped into their parent cells level by level, so the cost is
        O(levels × N) total rather than O(levels × N) *per node*.
        """
        if not self._occupied:
            return OctreeNode(center=Vec3.zero(), size=self.vox_min, depth=0)
        vox_min = self.vox_min
        current: Dict[VoxelKey, OctreeNode] = {
            key: OctreeNode(
                center=voxel_center(key, vox_min), size=vox_min, depth=0, occupied_leaves=1
            )
            for key in sorted(self._index.level_cells(0))
        }
        for level in range(1, self.levels):
            resolution = vox_min * (2**level)
            parents: Dict[VoxelKey, OctreeNode] = {}
            for (i, j, k), node in current.items():
                parent_key = (i // 2, j // 2, k // 2)
                parent = parents.get(parent_key)
                if parent is None:
                    parent = OctreeNode(
                        center=voxel_center(parent_key, resolution),
                        size=resolution,
                        depth=level,
                        occupied_leaves=0,
                    )
                    parents[parent_key] = parent
                parent.children.append(node)
                parent.occupied_leaves += node.occupied_leaves
            # Keep deterministic (sorted-key) ordering at every level so the
            # children of each node come out sorted as well.
            current = dict(sorted(parents.items()))

        top_nodes = list(current.values())
        if len(top_nodes) == 1:
            return top_nodes[0]
        # A synthetic super-root ties multiple top-level cubes together.
        top_resolution = vox_min * (2 ** (self.levels - 1))
        center = Vec3(
            sum(c.center.x for c in top_nodes) / len(top_nodes),
            sum(c.center.y for c in top_nodes) / len(top_nodes),
            sum(c.center.z for c in top_nodes) / len(top_nodes),
        )
        return OctreeNode(
            center=center,
            size=top_resolution * 2,
            depth=self.levels,
            occupied_leaves=sum(c.occupied_leaves for c in top_nodes),
            children=top_nodes,
        )


def prune_tree_to_volume(
    root: OctreeNode, max_volume: float, focus: Vec3
) -> List[OctreeNode]:
    """Select subtrees closest to ``focus`` until their volume exceeds a budget.

    Implements the perception→planning volume operator: "we prune the map,
    encoded in a tree, by selecting higher level trees (in the sorted order)
    until the threshold is reached" (§III-B).  The returned nodes are the
    top-level subtrees the planner will see; anything beyond the budget is
    dropped.

    Args:
        root: the materialised octree root.
        max_volume: volume budget in m^3.
        focus: prioritisation point (the drone position or nearest trajectory
            point); closer subtrees are kept first.
    """
    if max_volume < 0:
        raise ValueError("volume budget cannot be negative")
    candidates = list(root.children) if root.children else [root]
    candidates.sort(key=lambda node: focus.distance_to(node.center))
    selected: List[OctreeNode] = []
    used = 0.0
    for node in candidates:
        if used >= max_volume and selected:
            break
        selected.append(node)
        used += node.volume
    return selected
