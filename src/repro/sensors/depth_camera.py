"""A ray-casting depth camera.

The real system converts camera pixels into 3-D points in the Point Cloud
kernel.  Our substitute produces the depth image directly by casting one ray
per pixel against the obstacle world; the point-cloud kernel then performs
the same depth→3-D conversion the paper describes.  The camera also reports
the visibility (distance to the first hit, or max range) per pixel, which the
profilers aggregate into the space-visibility feature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import hotpath
from repro.environment.world import World
from repro.geometry.frustum import Frustum
from repro.geometry.ray import Ray, ray_aabb_intersect, raycast_aabbs_batch
from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class DepthImage:
    """Output of one camera capture.

    Attributes:
        origin: camera optical centre at capture time.
        directions: unit ray direction per pixel (row-major).
        depths: measured depth per pixel; ``math.inf`` where nothing was hit
            within the maximum range.
        max_range: the camera's maximum sensing range.
        width: horizontal pixel count.
        height: vertical pixel count.
    """

    origin: Vec3
    directions: Tuple[Vec3, ...]
    depths: Tuple[float, ...]
    max_range: float
    width: int
    height: int
    _dir_array: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.directions) != len(self.depths):
            raise ValueError("directions and depths must have the same length")
        if len(self.depths) != self.width * self.height:
            raise ValueError("pixel count does not match width * height")

    def hit_points(self) -> List[Vec3]:
        """World-space 3-D points for every pixel that hit an obstacle."""
        if hotpath.enabled() and self._dir_array is not None:
            depths = np.array(self.depths, dtype=np.float64)
            idx = np.flatnonzero(np.isfinite(depths))
            if idx.size == 0:
                return []
            o = np.array((self.origin.x, self.origin.y, self.origin.z))
            pts = o + self._dir_array[idx] * depths[idx][:, None]
            return [Vec3(x, y, z) for x, y, z in pts.tolist()]
        points = []
        for direction, depth in zip(self.directions, self.depths):
            if math.isfinite(depth):
                points.append(self.origin + direction * depth)
        return points

    def hit_count(self) -> int:
        """Number of pixels that measured a finite depth."""
        return sum(1 for d in self.depths if math.isfinite(d))

    def min_depth(self) -> float:
        """The closest measured depth (max range when nothing was hit)."""
        finite = [d for d in self.depths if math.isfinite(d)]
        return min(finite) if finite else self.max_range

    def mean_visibility(self) -> float:
        """Mean unobstructed distance across all pixels.

        Pixels that saw nothing contribute the maximum range, so an empty
        scene reports full visibility.
        """
        if not self.depths:
            return self.max_range
        total = 0.0
        for depth in self.depths:
            total += depth if math.isfinite(depth) else self.max_range
        return total / len(self.depths)


@dataclass
class DepthCamera:
    """A pin-hole depth camera simulated by per-pixel ray casting.

    Attributes:
        horizontal_fov_deg: total horizontal field of view in degrees.
        vertical_fov_deg: total vertical field of view in degrees.
        width: horizontal resolution in pixels (rays).
        height: vertical resolution in pixels (rays).
        max_range: maximum sensing range in metres; beyond it, pixels report
            infinity.
        mount_yaw_deg: yaw offset of the camera relative to the drone body,
            used by the rig to point the six cameras in different directions.
    """

    horizontal_fov_deg: float = 90.0
    vertical_fov_deg: float = 60.0
    width: int = 16
    height: int = 12
    max_range: float = 40.0
    mount_yaw_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("camera resolution must be at least 1x1")
        if self.max_range <= 0:
            raise ValueError("camera max range must be positive")
        # Ray-fan memo: the pixel directions depend only on the total yaw (the
        # fan is position-independent), so repeated captures at the same yaw —
        # the common case, the pipeline flies yaw-locked — reuse one fan.
        self._fan_cache: Dict[float, Tuple[Tuple[Vec3, ...], np.ndarray]] = {}

    def pixel_count(self) -> int:
        """Total rays cast per capture."""
        return self.width * self.height

    def frustum(self, position: Vec3, body_yaw_deg: float = 0.0) -> Frustum:
        """The camera's viewing frustum at the given drone pose."""
        yaw = math.radians(body_yaw_deg + self.mount_yaw_deg)
        forward = Vec3(math.cos(yaw), math.sin(yaw), 0.0)
        return Frustum(
            apex=position,
            forward=forward,
            up=Vec3.unit_z(),
            horizontal_fov_deg=self.horizontal_fov_deg,
            vertical_fov_deg=self.vertical_fov_deg,
            max_range=self.max_range,
        )

    def ray_fan(
        self, position: Vec3, body_yaw_deg: float = 0.0
    ) -> Tuple[Tuple[Vec3, ...], np.ndarray]:
        """The per-pixel ray directions at a pose, as Vec3s and an ``(R, 3)`` array.

        Directions depend only on the yaw, so the fan is memoised per yaw: the
        trigonometric sampling pass runs once per distinct heading instead of
        once per capture.
        """
        yaw = body_yaw_deg + self.mount_yaw_deg
        cached = self._fan_cache.get(yaw)
        if cached is None:
            directions = tuple(
                self.frustum(position, body_yaw_deg).sample_directions(
                    self.width, self.height
                )
            )
            array = np.array(
                [(d.x, d.y, d.z) for d in directions], dtype=np.float64
            ).reshape(len(directions), 3)
            cached = (directions, array)
            self._fan_cache[yaw] = cached
        return cached

    def capture(self, world: World, position: Vec3, body_yaw_deg: float = 0.0) -> DepthImage:
        """Capture a depth image of the world from the given pose.

        The vectorised path runs one batched slab test over every
        ``(ray, obstacle)`` pair; the scalar twin (:meth:`_cast` per ray) is
        kept as the reference implementation and produces bit-identical
        depths.
        """
        if not hotpath.enabled():
            frustum = self.frustum(position, body_yaw_deg)
            directions = tuple(frustum.sample_directions(self.width, self.height))
            nearby = world.obstacles_near(position, self.max_range)
            depths = tuple(
                self._cast(nearby, position, direction) for direction in directions
            )
            return DepthImage(
                origin=position,
                directions=directions,
                depths=depths,
                max_range=self.max_range,
                width=self.width,
                height=self.height,
            )
        directions, dir_array = self.ray_fan(position, body_yaw_deg)
        box_lo, box_hi = world.obstacle_arrays_near(position, self.max_range)
        depths_array = raycast_aabbs_batch(
            position, dir_array, box_lo, box_hi, self.max_range
        )
        image = DepthImage(
            origin=position,
            directions=directions,
            depths=tuple(depths_array.tolist()),
            max_range=self.max_range,
            width=self.width,
            height=self.height,
        )
        object.__setattr__(image, "_dir_array", dir_array)
        return image

    def _cast(self, obstacles, origin: Vec3, direction: Vec3) -> float:
        """Distance to the first obstacle along a ray, or infinity."""
        ray = Ray(origin, direction)
        nearest = math.inf
        for obstacle in obstacles:
            hit = ray_aabb_intersect(ray, obstacle.box)
            if hit is None:
                continue
            t_enter, t_exit = hit
            if t_exit < 0:
                continue
            entry = max(t_enter, 0.0)
            if entry < nearest:
                nearest = entry
        if nearest > self.max_range:
            return math.inf
        return nearest
