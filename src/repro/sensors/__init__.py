"""Simulated sensors.

The paper's quadrotor carries "6 cameras, an IMU, and a GPS" (§III-A).  This
package provides the offline substitutes: a ray-casting depth camera whose
output feeds the point-cloud kernel, a six-camera rig giving near-360 degree
coverage, and simple state sensors (IMU/GPS) that report the drone's pose and
velocity to the profilers.
"""

from repro.sensors.depth_camera import DepthCamera, DepthImage
from repro.sensors.rig import CameraRig, RigScan
from repro.sensors.state_sensors import GPS, IMU, StateEstimate

__all__ = [
    "CameraRig",
    "DepthCamera",
    "DepthImage",
    "GPS",
    "IMU",
    "RigScan",
    "StateEstimate",
]
