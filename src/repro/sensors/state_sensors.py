"""State sensors: IMU and GPS.

The profilers read "velocity, position" from the sensors (Table I).  In the
offline reproduction the true drone state is known exactly, so these sensors
simply expose that state, optionally corrupted with Gaussian noise so tests
can exercise the profilers' robustness to measurement error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.geometry.vec3 import Vec3


@dataclass(frozen=True, slots=True)
class StateEstimate:
    """A timestamped estimate of the drone's kinematic state."""

    timestamp: float
    position: Vec3
    velocity: Vec3

    @property
    def speed(self) -> float:
        """Scalar speed in metres per second."""
        return self.velocity.norm()


@dataclass
class GPS:
    """Position sensor with optional additive Gaussian noise."""

    noise_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ValueError("noise standard deviation cannot be negative")
        self._rng = random.Random(self.seed)

    def measure(self, true_position: Vec3) -> Vec3:
        """Return a (possibly noisy) position measurement."""
        if self.noise_std == 0.0:
            return true_position
        return Vec3(
            true_position.x + self._rng.gauss(0.0, self.noise_std),
            true_position.y + self._rng.gauss(0.0, self.noise_std),
            true_position.z + self._rng.gauss(0.0, self.noise_std),
        )


@dataclass
class IMU:
    """Velocity sensor with optional additive Gaussian noise.

    A real IMU measures accelerations and angular rates; the navigation stack
    integrates them into a velocity estimate.  The reproduction skips the
    integration and reports velocity directly, because velocity is the only
    IMU-derived quantity the RoboRun profilers consume.
    """

    noise_std: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ValueError("noise standard deviation cannot be negative")
        self._rng = random.Random(self.seed)

    def measure(self, true_velocity: Vec3) -> Vec3:
        """Return a (possibly noisy) velocity measurement."""
        if self.noise_std == 0.0:
            return true_velocity
        return Vec3(
            true_velocity.x + self._rng.gauss(0.0, self.noise_std),
            true_velocity.y + self._rng.gauss(0.0, self.noise_std),
            true_velocity.z + self._rng.gauss(0.0, self.noise_std),
        )


@dataclass
class StateSensorSuite:
    """Bundles GPS and IMU into one state-estimate source."""

    gps: GPS
    imu: IMU

    @staticmethod
    def ideal() -> "StateSensorSuite":
        """A noise-free sensor suite (the default for experiments)."""
        return StateSensorSuite(gps=GPS(), imu=IMU())

    def estimate(
        self, timestamp: float, true_position: Vec3, true_velocity: Vec3
    ) -> StateEstimate:
        """Produce a state estimate from the true state."""
        return StateEstimate(
            timestamp=timestamp,
            position=self.gps.measure(true_position),
            velocity=self.imu.measure(true_velocity),
        )
