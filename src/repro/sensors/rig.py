"""The six-camera sensor rig.

The paper's quadrotor uses six cameras to observe its surroundings; the
baseline's knob table sizes the OctoMap volume "to allow the MAV to collect
all 6 camera data" (§IV).  The rig arranges six depth cameras at 60-degree
yaw increments for full horizontal coverage and merges their captures into a
single scan per decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.environment.world import World
from repro.geometry.vec3 import Vec3
from repro.sensors.depth_camera import DepthCamera, DepthImage


@dataclass(frozen=True, slots=True)
class RigScan:
    """The merged output of one capture from every camera on the rig."""

    position: Vec3
    images: tuple[DepthImage, ...]

    def all_hit_points(self) -> List[Vec3]:
        """World-space obstacle points across every camera."""
        points: List[Vec3] = []
        for image in self.images:
            points.extend(image.hit_points())
        return points

    def total_pixels(self) -> int:
        """Total rays cast across every camera in this scan."""
        return sum(img.width * img.height for img in self.images)

    def min_obstacle_distance(self) -> float:
        """Closest measured obstacle distance across every camera."""
        return min(image.min_depth() for image in self.images)

    def mean_visibility(self) -> float:
        """Average visibility over every camera (metres)."""
        if not self.images:
            return 0.0
        return sum(img.mean_visibility() for img in self.images) / len(self.images)

    def forward_visibility(self) -> float:
        """Visibility of the forward-facing camera (index 0)."""
        return self.images[0].mean_visibility() if self.images else 0.0

    def forward_min_depth(self) -> float:
        """Closest measured depth of the forward-facing camera.

        The conservative look-ahead estimate the deadline computation uses:
        the nearest thing in the direction of travel bounds how far the drone
        can safely commit to flying.
        """
        return self.images[0].min_depth() if self.images else 0.0


@dataclass
class CameraRig:
    """Six depth cameras mounted at evenly spaced yaw angles."""

    camera_count: int = 6
    horizontal_fov_deg: float = 90.0
    vertical_fov_deg: float = 60.0
    width: int = 16
    height: int = 12
    max_range: float = 40.0
    cameras: List[DepthCamera] = field(init=False)

    def __post_init__(self) -> None:
        if self.camera_count < 1:
            raise ValueError("the rig needs at least one camera")
        step = 360.0 / self.camera_count
        self.cameras = [
            DepthCamera(
                horizontal_fov_deg=self.horizontal_fov_deg,
                vertical_fov_deg=self.vertical_fov_deg,
                width=self.width,
                height=self.height,
                max_range=self.max_range,
                mount_yaw_deg=i * step,
            )
            for i in range(self.camera_count)
        ]

    def capture(self, world: World, position: Vec3, body_yaw_deg: float = 0.0) -> RigScan:
        """Capture one scan: every camera captures from the same pose."""
        images = tuple(
            camera.capture(world, position, body_yaw_deg) for camera in self.cameras
        )
        return RigScan(position=position, images=images)

    def with_resolution(self, width: int, height: int) -> "CameraRig":
        """A rig identical to this one but capturing at a different resolution.

        The fault-injection layer uses this to model a degraded camera: same
        mounting, field of view and range, fewer pixels per frame.
        """
        return CameraRig(
            camera_count=self.camera_count,
            horizontal_fov_deg=self.horizontal_fov_deg,
            vertical_fov_deg=self.vertical_fov_deg,
            width=width,
            height=height,
            max_range=self.max_range,
        )

    def empty_scan(self, position: Vec3) -> RigScan:
        """The scan a lost frame produces: every camera reports zero pixels.

        Zero-pixel images keep every :class:`RigScan` aggregate well defined
        (no hit points, nominal visibility, ``max_range`` minimum depth)
        while charging no point-cloud conversion work.
        """
        images = tuple(
            DepthImage(
                origin=position,
                directions=(),
                depths=(),
                max_range=camera.max_range,
                width=0,
                height=0,
            )
            for camera in self.cameras
        )
        return RigScan(position=position, images=images)

    def total_pixels(self) -> int:
        """Rays cast per scan (the raw point-cloud size upper bound)."""
        return sum(cam.pixel_count() for cam in self.cameras)

    def max_sensor_volume(self) -> float:
        """Upper bound on the observable volume per scan (the paper's v_sensor)."""
        return sum(
            cam.frustum(Vec3.zero()).volume() for cam in self.cameras
        )
