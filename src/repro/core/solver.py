"""The governor's knob solver (paper Equation 3).

Given the decision's time budget δ_d and the profiled spatial features, the
solver chooses per-stage precision and volume knobs by solving

    min_{p, v}  ( δ_d − Σ_i δ_i(p_i, v_i) )²                       (Eq. 3)

subject to:

* ``g_min ≤ p_0 ≤ min(p_1, g_avg, d_obs)`` — the point-cloud precision is
  bounded below by the smallest gap worth resolving and above by the map
  precision, the average gap and the nearest-obstacle distance;
* ``v_0 ≤ v_1 ≤ min(v_sensor, v_map)`` — the map cannot ingest more volume
  than it passes to the planner, which in turn cannot exceed what the sensors
  and map can provide;
* ``p_i ∈ {vox_min · 2ⁿ : 0 ≤ n ≤ d−1}`` — the OctoMap framework's
  power-of-two precision ladder; and
* the perception→planning and planning precisions are equal (``p_1 = p_2``).

δ_i is the Eq. 4 latency model.  Because δ_i is linear in the volume for a
fixed precision, the solver enumerates the (small) discrete precision ladder
and, for each feasible precision pair, fills the volumes greedily — volume is
poured into the map first, then the planner view, then the planner's search —
until the predicted latency meets the budget.  Among all feasible candidates
the one minimising the squared budget mismatch wins, with ties broken towards
finer precision and larger volume (the paper's objective wants to *use* the
budget, not undershoot it: unused budget is wasted quality).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compute.latency_model import (
    PipelineLatencyModel,
    STAGE_PERCEPTION,
    STAGE_PERCEPTION_TO_PLANNING,
    STAGE_PLANNING,
)
from repro.core.policy import KnobLimits, KnobPolicy
from repro.core.profilers import SpaceProfile


@dataclass(frozen=True, slots=True)
class SolverConfig:
    """Floors and safety factors applied by the solver.

    Attributes:
        min_octomap_volume: smallest useful map-insertion budget, m³ — below
            this the map would not even ingest the space immediately around
            the trajectory.
        min_planner_volume: smallest useful planner exploration budget, m³.
        budget_safety_factor: fraction of the time budget the solver targets
            (keeping a margin for the fixed pipeline costs and jitter).
        volume_steps: resolution of the greedy volume fill (number of steps
            between a volume's floor and its ceiling).
    """

    min_octomap_volume: float = 15_000.0
    min_planner_volume: float = 150_000.0
    budget_safety_factor: float = 0.85
    volume_steps: int = 8

    def __post_init__(self) -> None:
        if self.min_octomap_volume < 0 or self.min_planner_volume < 0:
            raise ValueError("volume floors cannot be negative")
        if not 0 < self.budget_safety_factor <= 1:
            raise ValueError("budget safety factor must be in (0, 1]")
        if self.volume_steps < 1:
            raise ValueError("volume_steps must be at least 1")


@dataclass(frozen=True, slots=True)
class SolverResult:
    """Outcome of one solver invocation.

    Attributes:
        policy: the chosen knob assignment (precisions in metres, volumes
            in cubic metres).
        predicted_latency: Σ_i δ_i at the chosen knobs plus fixed overheads,
            seconds.
        objective: the achieved squared budget mismatch (Eq. 3's objective),
            seconds².
        feasible: False when no knob assignment satisfied every constraint and
            the returned policy is the clamped fallback (finest precision,
            floor volumes).
    """

    policy: KnobPolicy
    predicted_latency: float
    objective: float
    feasible: bool


class KnobSolver:
    """Solves Eq. 3 over the discrete precision ladder and continuous volumes.

    Given a time budget (seconds) and a space profile, the solver picks the
    knob assignment — precisions from the power-of-two ladder (metres),
    volumes from their continuous ranges (cubic metres) — whose predicted
    end-to-end latency (Eq. 4) lands closest to the budget while satisfying
    the space demands (precision no coarser than the observed gaps, volume
    at least the sensed space).  When no assignment fits it falls back to
    the worst-case-safe policy and flags the result infeasible.
    """

    def __init__(
        self,
        latency_model: Optional[PipelineLatencyModel] = None,
        limits: Optional[KnobLimits] = None,
        config: Optional[SolverConfig] = None,
    ) -> None:
        self.latency_model = latency_model or PipelineLatencyModel.default()
        self.limits = limits or KnobLimits()
        self.config = config or SolverConfig()
        # Cumulative observability counters (read by repro.obs, never by the
        # solver itself): how many times solve() ran and how many ladder
        # candidates it evaluated across the mission.
        self.solve_count = 0
        self.candidates_evaluated = 0
        self.infeasible_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, time_budget: float, profile: SpaceProfile) -> SolverResult:
        """Choose knobs for one decision.

        Args:
            time_budget: the governor's decision deadline δ_d, seconds.
            profile: the profiled spatial features for this decision.
        """
        if time_budget < 0:
            raise ValueError("time budget cannot be negative")

        target = max(
            0.0,
            time_budget * self.config.budget_safety_factor
            - self.latency_model.fixed_overhead_s,
        )
        ladder = self.limits.precision_ladder()
        candidates: List[Tuple[float, float, float, KnobPolicy, float]] = []

        for p1 in ladder:
            for p0 in ladder:
                if not self._precision_feasible(p0, p1, profile):
                    continue
                policy, predicted = self._fill_volumes(p0, p1, target, profile)
                objective = (target - predicted) ** 2
                # Sort key: objective first, then finer precision (smaller p0,
                # p1), then larger total volume — implements the tie-breaks.
                total_volume = (
                    policy.octomap_volume
                    + policy.map_to_planner_volume
                    + policy.planner_volume
                )
                candidates.append((objective, p0 + p1, -total_volume, policy, predicted))

        self.solve_count += 1
        self.candidates_evaluated += len(candidates)

        if not candidates:
            self.infeasible_count += 1
            fallback = self._fallback_policy(profile)
            predicted = self._predict(fallback)
            return SolverResult(
                policy=fallback,
                predicted_latency=predicted + self.latency_model.fixed_overhead_s,
                objective=(target - predicted) ** 2,
                feasible=False,
            )

        candidates.sort(key=lambda item: (item[0], item[1], item[2]))
        _, _, _, best_policy, best_predicted = candidates[0]
        return SolverResult(
            policy=best_policy,
            predicted_latency=best_predicted + self.latency_model.fixed_overhead_s,
            objective=candidates[0][0],
            feasible=True,
        )

    # ------------------------------------------------------------------
    # Constraint handling
    # ------------------------------------------------------------------
    def _precision_feasible(self, p0: float, p1: float, profile: SpaceProfile) -> bool:
        """Eq. 3's precision constraints for a (p0, p1) candidate.

        ``g_min ≤ p_0 ≤ min(p_1, g_avg, d_obs)``: the point-cloud precision is
        never finer than the smallest gap worth resolving (g_min; in open
        space the profilers report a large open-space gap, which — clamped to
        the coarsest ladder rung — forces coarse, cheap processing) and never
        coarser than the map precision, the average gap or the distance to the
        nearest obstacle.
        """
        ladder = self.limits.precision_ladder()
        coarsest = ladder[-1]
        finest = ladder[0]
        lower = min(profile.gap_min, coarsest)
        upper = min(p1, max(profile.gap_avg, finest), max(profile.closest_obstacle, finest))
        if upper < lower - 1e-9:
            return False
        if not (lower - 1e-9 <= p0 <= upper + 1e-9):
            return False
        # The planner's map must still resolve the gaps the drone needs to fly
        # through: a p1 much coarser than the average gap closes every passage
        # in the planner's view, so p1 is bounded by the average gap as well
        # (rounded up to the next ladder rung so open space stays coarse).
        p1_ceiling = coarsest
        if profile.gap_avg < coarsest:
            p1_ceiling = next(
                (rung for rung in ladder if rung >= profile.gap_avg), coarsest
            )
        return p1 <= max(p1_ceiling, p0) + 1e-9

    def _volume_ceilings(self, profile: SpaceProfile) -> Tuple[float, float, float]:
        """Upper bounds on (v0, v1, v2).

        Eq. 3 bounds v1 by ``min(v_sensor, v_map)`` — the capacities of the
        sensors and the map.  v_sensor is the occlusion-clipped observable
        volume this decision (from the profile); v_map is the configured map
        capacity (the dynamic range ceiling), not the volume currently stored.
        """
        v1_max = min(
            self.limits.map_to_planner_volume_max,
            max(profile.sensor_volume, self.config.min_octomap_volume),
        )
        v0_max = min(self.limits.octomap_volume_max, v1_max)
        v2_max = self.limits.planner_volume_max
        return v0_max, v1_max, v2_max

    def _fill_volumes(
        self, p0: float, p1: float, target: float, profile: SpaceProfile
    ) -> Tuple[KnobPolicy, float]:
        """Greedy volume fill for a fixed precision pair.

        Volumes start at their floors and are raised stage by stage (map
        insertion first, then planner view, then planner search) while the
        predicted latency stays below the target.
        """
        v0_max, v1_max, v2_max = self._volume_ceilings(profile)
        v0 = min(self.config.min_octomap_volume, v0_max)
        v1 = max(v0, min(self.config.min_octomap_volume, v1_max))
        v2 = min(self.config.min_planner_volume, v2_max)

        def predicted(v0_: float, v1_: float, v2_: float) -> float:
            return (
                self.latency_model.stage_latency(STAGE_PERCEPTION, p0, v0_)
                + self.latency_model.stage_latency(STAGE_PERCEPTION_TO_PLANNING, p1, v1_)
                + self.latency_model.stage_latency(STAGE_PLANNING, p1, v2_)
            )

        current = predicted(v0, v1, v2)
        steps = self.config.volume_steps
        # Raise each volume in turn; stop a stage's growth as soon as the next
        # step would overshoot the target.  Floors are re-read at the start of
        # each stage: stage 0 may already have raised v1 (to keep v0 <= v1),
        # and restarting stage 1 from its original floor would both waste its
        # steps below the raised value and coarsen the fill above it.
        for index in range(3):
            if index == 0:
                floor, ceiling = v0, v0_max
            elif index == 1:
                floor, ceiling = v1, v1_max
            else:
                floor, ceiling = v2, v2_max
            if ceiling <= floor:
                continue
            step = (ceiling - floor) / steps
            value = floor
            for _ in range(steps):
                trial = min(value + step, ceiling)
                trial_v0, trial_v1, trial_v2 = v0, v1, v2
                if index == 0:
                    trial_v0 = trial
                    trial_v1 = max(v1, trial)  # keep v0 <= v1
                elif index == 1:
                    trial_v1 = max(trial, v0)
                else:
                    trial_v2 = trial
                trial_latency = predicted(trial_v0, trial_v1, trial_v2)
                if trial_latency > target:
                    break
                v0, v1, v2 = trial_v0, trial_v1, trial_v2
                current = trial_latency
                value = trial

        policy = KnobPolicy(
            point_cloud_precision=p0,
            map_to_planner_precision=p1,
            octomap_volume=v0,
            map_to_planner_volume=v1,
            planner_volume=v2,
        )
        return policy, current

    def _fallback_policy(self, profile: SpaceProfile) -> KnobPolicy:
        """Worst-case-safe policy used when the constraints admit no candidate."""
        finest = self.limits.precision_ladder()[0]
        v0_max, v1_max, v2_max = self._volume_ceilings(profile)
        v0 = min(self.config.min_octomap_volume, v0_max)
        return KnobPolicy(
            point_cloud_precision=finest,
            map_to_planner_precision=finest,
            octomap_volume=v0,
            map_to_planner_volume=max(v0, min(self.config.min_octomap_volume, v1_max)),
            planner_volume=min(self.config.min_planner_volume, v2_max),
        )

    def _predict(self, policy: KnobPolicy) -> float:
        """Σ_i δ_i for a policy (without fixed overheads)."""
        return (
            self.latency_model.stage_latency(
                STAGE_PERCEPTION, policy.point_cloud_precision, policy.octomap_volume
            )
            + self.latency_model.stage_latency(
                STAGE_PERCEPTION_TO_PLANNING,
                policy.map_to_planner_precision,
                policy.map_to_planner_volume,
            )
            + self.latency_model.stage_latency(
                STAGE_PLANNING, policy.planning_precision, policy.planner_volume
            )
        )
