"""The governor.

"The governor allocates the time budget (deadline) for the end-to-end
navigation pipeline and determines the correct precision and volume settings
per stage to satisfy this budget and space demands" (§III-D).

Per decision the governor:

1. computes the decision deadline with the time-budgeting algorithm
   (Eq. 1–2 / Algorithm 1), using the profiled instantaneous velocity and
   visibility plus the planned velocity/visibility at upcoming waypoints;
2. invokes the knob solver (Eq. 3–4) to pick per-stage precision and volume
   settings that fit the budget and the space demands; and
3. derives the safe velocity cap for the next flight segment — the fastest
   velocity whose budget still covers the latency the chosen knobs are
   predicted to incur.  This is the mechanism by which lower decision latency
   becomes higher flight velocity in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.budget import TimeBudgeter
from repro.core.policy import KnobPolicy
from repro.core.profilers import SpaceProfile
from repro.core.solver import KnobSolver, SolverResult


@dataclass(frozen=True, slots=True)
class GovernorDecision:
    """Everything the governor decided for one pipeline iteration.

    Attributes:
        timestamp: when the decision was made (simulated seconds).
        time_budget: the decision deadline δ_d, seconds.
        policy: the knob assignment the operators must enforce.
        predicted_latency: the solver's end-to-end latency prediction at the
            chosen knobs (including fixed overheads), seconds.
        velocity_cap: safe velocity for the next flight segment, m/s.
        solver_feasible: False when the solver had to fall back to the
            worst-case-safe policy.
        profile: the spatial profile the decision was based on.
    """

    timestamp: float
    time_budget: float
    policy: KnobPolicy
    predicted_latency: float
    velocity_cap: float
    solver_feasible: bool
    profile: SpaceProfile


class Governor:
    """Combines the time budgeter and the knob solver into per-decision policy.

    Attributes:
        budgeter: the Eq. 1 / Algorithm 1 time budgeter.
        solver: the Eq. 3 knob solver.
        max_velocity: mission-level velocity ceiling, m/s — the paper picks
            this "experimentally such that at least 80% of flights are
            collision-free".
        velocity_safety_factor: margin applied to the predicted latency when
            deriving the velocity cap (>1 slows the drone slightly below the
            theoretical maximum to absorb latency jitter).
        waypoint_horizon: how many upcoming trajectory samples Algorithm 1
            considers.
    """

    def __init__(
        self,
        budgeter: Optional[TimeBudgeter] = None,
        solver: Optional[KnobSolver] = None,
        max_velocity: float = 2.5,
        velocity_safety_factor: float = 1.25,
        waypoint_horizon: int = 8,
    ) -> None:
        if max_velocity <= 0:
            raise ValueError("max velocity must be positive")
        if velocity_safety_factor < 1.0:
            raise ValueError("velocity safety factor must be at least 1")
        if waypoint_horizon < 0:
            raise ValueError("waypoint horizon cannot be negative")
        self.budgeter = budgeter or TimeBudgeter()
        self.solver = solver or KnobSolver()
        self.max_velocity = max_velocity
        self.velocity_safety_factor = velocity_safety_factor
        self.waypoint_horizon = waypoint_horizon

    # ------------------------------------------------------------------
    # Per-decision policy
    # ------------------------------------------------------------------
    def decide(
        self, profile: SpaceProfile, budget_scale: float = 1.0
    ) -> GovernorDecision:
        """Produce the policy, deadline and velocity cap for one decision.

        Args:
            profile: the Table I space profile of this decision.
            budget_scale: multiplier on the computed time budget before the
                solver runs — how a platform fault (e.g. a power brownout)
                shrinks the deadline the governor must fit its knobs into.
                Must be positive; 1.0 is the nominal path.
        """
        if budget_scale <= 0:
            raise ValueError("budget scale must be positive")
        time_budget = self._time_budget(profile)
        if budget_scale != 1.0:
            time_budget = time_budget * budget_scale
        solved: SolverResult = self.solver.solve(time_budget, profile)
        velocity_cap = self._velocity_cap(profile, solved.predicted_latency)
        return GovernorDecision(
            timestamp=profile.timestamp,
            time_budget=time_budget,
            policy=solved.policy,
            predicted_latency=solved.predicted_latency,
            velocity_cap=velocity_cap,
            solver_feasible=solved.feasible,
            profile=profile,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _time_budget(self, profile: SpaceProfile) -> float:
        """Algorithm 1 over the upcoming trajectory (Eq. 1 when hovering)."""
        if profile.trajectory is None:
            return self.budgeter.local_budget(profile.velocity, profile.visibility)
        upcoming = profile.trajectory.upcoming_waypoints(
            profile.timestamp, self.waypoint_horizon
        )
        return self.budgeter.budget_from_trajectory(
            current_velocity=profile.velocity,
            current_visibility=profile.visibility,
            upcoming=upcoming,
        )

    def _velocity_cap(self, profile: SpaceProfile, predicted_latency: float) -> float:
        """The fastest velocity whose budget covers the predicted latency.

        On top of the Eq. 1 bound, the cap is limited by the forward clearance:
        the drone flies no faster than a third of its usable look-ahead per
        second (floored at a slow crawl), which reflects the agility limit of
        dodging inside clutter rather than the compute deadline.
        """
        required = predicted_latency * self.velocity_safety_factor
        budget_cap = self.budgeter.max_safe_velocity(
            visibility=profile.visibility,
            required_budget=required,
            velocity_ceiling=self.max_velocity,
        )
        clearance_cap = max(0.6, profile.visibility / 3.0)
        return min(budget_cap, clearance_cap, self.max_velocity)
