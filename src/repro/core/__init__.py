"""RoboRun — the paper's contribution.

The runtime layer sits between the application-layer navigation pipeline and
the hardware (Figure 6) and has three kinds of components:

* **Profilers** (:mod:`repro.core.profilers`) post-process each stage's data
  structures to extract the spatial features of Table I: gaps between
  obstacles, closest obstacle / closest unknown, sensor and map volume,
  velocity, position and the planned trajectory.
* **Governor** (:mod:`repro.core.governor`) — computes the decision deadline
  with the time-budgeting algorithm (Eq. 1–2, Algorithm 1 in
  :mod:`repro.core.budget`) and chooses per-stage precision/volume knobs with
  the constrained solver (Eq. 3–4, :mod:`repro.core.solver`).
* **Operators** (:mod:`repro.core.operators`) — enforce the chosen policy on
  the pipeline: point-cloud grid precision, OctoMap ray-caster step and
  insertion volume budget, perception→planning sub-sampling and pruning, and
  the planner's collision ray step and explored-volume monitor.

:class:`~repro.core.runtime.RoboRunRuntime` wires these together into the
spatial-aware runtime, and :class:`~repro.core.baseline.SpatialObliviousRuntime`
is the static, worst-case baseline (MAVBench-style) it is compared against.
"""

from repro.core.baseline import SpatialObliviousRuntime
from repro.core.budget import TimeBudgeter
from repro.core.governor import Governor, GovernorDecision
from repro.core.operators import OperatorSet
from repro.core.policy import KnobLimits, KnobPolicy, STATIC_BASELINE_POLICY
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.core.runtime import RoboRunRuntime
from repro.core.solver import KnobSolver, SolverResult

__all__ = [
    "Governor",
    "GovernorDecision",
    "KnobLimits",
    "KnobPolicy",
    "KnobSolver",
    "OperatorSet",
    "ProfilerSuite",
    "RoboRunRuntime",
    "STATIC_BASELINE_POLICY",
    "SolverResult",
    "SpaceProfile",
    "SpatialObliviousRuntime",
    "TimeBudgeter",
]
