"""Knob policies.

A :class:`KnobPolicy` is one assignment of RoboRun's six knobs (Table II):

================================  =========  ======================
Knob                              Static     Dynamic range
================================  =========  ======================
Point-cloud precision (m)         0.3        [0.3 … 9.6]
OctoMap→planner precision (m)     0.3        [0.3 … 9.6]
OctoMap volume (m³)               46 000     [0 … 60 000]
OctoMap→planner volume (m³)       150 000    [0 … 1 000 000]
Planner volume (m³)               150 000    [0 … 1 000 000]
================================  =========  ======================

(The sixth knob, planning precision, is constrained by Eq. 3 to equal the
OctoMap→planner precision, so the policy carries it implicitly.)

:data:`STATIC_BASELINE_POLICY` is the spatial-oblivious design's fixed,
worst-case setting; :class:`KnobLimits` captures the dynamic ranges RoboRun's
solver may pick from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

# Table II constants.
STATIC_POINT_CLOUD_PRECISION_M = 0.3
STATIC_MAP_TO_PLANNER_PRECISION_M = 0.3
STATIC_OCTOMAP_VOLUME_M3 = 46_000.0
STATIC_MAP_TO_PLANNER_VOLUME_M3 = 150_000.0
STATIC_PLANNER_VOLUME_M3 = 150_000.0

DYNAMIC_PRECISION_MIN_M = 0.3
DYNAMIC_PRECISION_MAX_M = 9.6
DYNAMIC_OCTOMAP_VOLUME_MAX_M3 = 60_000.0
DYNAMIC_MAP_TO_PLANNER_VOLUME_MAX_M3 = 1_000_000.0
DYNAMIC_PLANNER_VOLUME_MAX_M3 = 1_000_000.0


@dataclass(frozen=True, slots=True)
class KnobPolicy:
    """One concrete assignment of the pipeline's precision and volume knobs.

    Attributes:
        point_cloud_precision: grid cell edge used by the point-cloud
            precision operator, metres (stage-0 precision, p0).
        map_to_planner_precision: resolution of the map handed to the planner,
            metres (p1; the planner precision p2 is constrained equal to it).
        octomap_volume: volume budget for new space added to the map per
            decision, m³ (stage-0 volume, v0).
        map_to_planner_volume: volume budget of the map view given to the
            planner, m³ (v1).
        planner_volume: volume of space the planner may explore, m³ (v2).
    """

    point_cloud_precision: float
    map_to_planner_precision: float
    octomap_volume: float
    map_to_planner_volume: float
    planner_volume: float

    def __post_init__(self) -> None:
        if self.point_cloud_precision <= 0:
            raise ValueError("point-cloud precision must be positive")
        if self.map_to_planner_precision <= 0:
            raise ValueError("map-to-planner precision must be positive")
        if self.point_cloud_precision > self.map_to_planner_precision + 1e-9:
            raise ValueError(
                "Eq. 3 requires p0 <= p1: the point-cloud precision cannot be "
                "coarser than the map handed to the planner"
            )
        for name in ("octomap_volume", "map_to_planner_volume", "planner_volume"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if self.octomap_volume > self.map_to_planner_volume + 1e-9:
            # Eq. 3: v0 <= v1 — the map cannot ingest more than it may pass on.
            raise ValueError("Eq. 3 requires v0 <= v1")

    @property
    def planning_precision(self) -> float:
        """The planner's ray-cast precision; Eq. 3 pins it to p1."""
        return self.map_to_planner_precision

    def as_dict(self) -> Dict[str, float]:
        """The policy as a plain dictionary (used by traces and reports)."""
        return {
            "point_cloud_precision": self.point_cloud_precision,
            "map_to_planner_precision": self.map_to_planner_precision,
            "octomap_volume": self.octomap_volume,
            "map_to_planner_volume": self.map_to_planner_volume,
            "planner_volume": self.planner_volume,
        }

    def with_precision(self, p0: float, p1: float) -> "KnobPolicy":
        """Copy with new precisions (volumes unchanged)."""
        return replace(self, point_cloud_precision=p0, map_to_planner_precision=p1)

    def with_volumes(self, v0: float, v1: float, v2: float) -> "KnobPolicy":
        """Copy with new volumes (precisions unchanged)."""
        return replace(
            self, octomap_volume=v0, map_to_planner_volume=v1, planner_volume=v2
        )


#: The spatial-oblivious baseline's fixed, worst-case policy (Table II "Static").
STATIC_BASELINE_POLICY = KnobPolicy(
    point_cloud_precision=STATIC_POINT_CLOUD_PRECISION_M,
    map_to_planner_precision=STATIC_MAP_TO_PLANNER_PRECISION_M,
    octomap_volume=STATIC_OCTOMAP_VOLUME_M3,
    map_to_planner_volume=STATIC_MAP_TO_PLANNER_VOLUME_M3,
    planner_volume=STATIC_PLANNER_VOLUME_M3,
)


@dataclass(frozen=True, slots=True)
class KnobLimits:
    """The dynamic ranges RoboRun's solver may choose from (Table II "Dynamic").

    Attributes:
        precision_min: finest allowed precision (the minimum voxel size), m.
        precision_max: coarsest allowed precision, m.
        octomap_volume_max: upper bound on the per-decision map volume, m³.
        map_to_planner_volume_max: upper bound on the planner-view volume, m³.
        planner_volume_max: upper bound on the planner's explored volume, m³.
        precision_levels: size of the power-of-two precision ladder (Eq. 3's
            ``p ∈ {vox_min·2ⁿ : 0 ≤ n ≤ d−1}``); 6 levels span 0.3 m → 9.6 m.
    """

    precision_min: float = DYNAMIC_PRECISION_MIN_M
    precision_max: float = DYNAMIC_PRECISION_MAX_M
    octomap_volume_max: float = DYNAMIC_OCTOMAP_VOLUME_MAX_M3
    map_to_planner_volume_max: float = DYNAMIC_MAP_TO_PLANNER_VOLUME_MAX_M3
    planner_volume_max: float = DYNAMIC_PLANNER_VOLUME_MAX_M3
    precision_levels: int = 6

    def __post_init__(self) -> None:
        if self.precision_min <= 0:
            raise ValueError("minimum precision must be positive")
        if self.precision_max < self.precision_min:
            raise ValueError("maximum precision cannot be finer than the minimum")
        if self.precision_levels < 1:
            raise ValueError("need at least one precision level")
        for name in (
            "octomap_volume_max",
            "map_to_planner_volume_max",
            "planner_volume_max",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def precision_ladder(self) -> list[float]:
        """Allowed precisions: power-of-two multiples of the minimum voxel size."""
        ladder = []
        for n in range(self.precision_levels):
            value = self.precision_min * (2**n)
            if value > self.precision_max + 1e-9:
                break
            ladder.append(value)
        return ladder

    def clamp_policy(self, policy: KnobPolicy) -> KnobPolicy:
        """Clamp an arbitrary policy into the dynamic ranges."""
        p0 = min(max(policy.point_cloud_precision, self.precision_min), self.precision_max)
        p1 = min(max(policy.map_to_planner_precision, p0), self.precision_max)
        v0 = min(policy.octomap_volume, self.octomap_volume_max)
        v1 = min(max(policy.map_to_planner_volume, v0), self.map_to_planner_volume_max)
        v2 = min(policy.planner_volume, self.planner_volume_max)
        return KnobPolicy(
            point_cloud_precision=p0,
            map_to_planner_precision=p1,
            octomap_volume=v0,
            map_to_planner_volume=v1,
            planner_volume=v2,
        )
