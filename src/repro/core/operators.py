"""Precision and volume operators.

"Operators enforce the precision and volume policies" (§III-B).  The paper
defines six knobs across three stages; each maps to a concrete parameter of a
pipeline kernel in this reproduction:

===================================  ==========================================
Paper operator                        Enforcement here
===================================  ==========================================
Point-cloud precision                 grid-average cell size of
                                      :class:`~repro.perception.point_cloud.PointCloudKernel`
OctoMap precision                     step size of the free-space ray caster in
                                      :meth:`OccupancyOctree.insert_point_cloud`
Perception→planning precision         coarsening resolution of
                                      :func:`~repro.perception.planning_view.build_planning_view`
Planning precision                    collision ray-cast step of the RRT* planner
OctoMap volume                        insertion volume budget (points sorted by
                                      distance to the trajectory)
Perception→planning volume            volume budget of the planning view (cells
                                      sorted by proximity)
Planner volume                        the RRT* volume monitor that stops search
===================================  ==========================================

:class:`OperatorSet` owns the pipeline kernels, applies a
:class:`~repro.core.policy.KnobPolicy` to each invocation and reports the work
each kernel actually performed so the compute model can charge its latency.

The perception→planning operators are enforced against the occupancy map's
incrementally maintained :class:`~repro.perception.spatial_index.SpatialIndex`:
the coarsening behind :func:`~repro.perception.planning_view.build_planning_view`
reads the maintained level maps, and the per-decision locality eviction
(:meth:`OccupancyOctree.forget_beyond`) prunes whole index buckets, so the
Python-side enforcement cost tracks the *local* map rather than mission
length — only the charged (modelled) cost follows the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.compute.costs import KernelWork
from repro.core.policy import KnobPolicy
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.planning_view import PlanningView, build_planning_view
from repro.perception.point_cloud import PointCloud, PointCloudKernel
from repro.planning.rrt_star import PlanResult, RRTStarConfig, RRTStarPlanner
from repro.planning.smoothing import PathSmoother
from repro.planning.trajectory import Trajectory
from repro.sensors.rig import RigScan


@dataclass
class PerceptionOutput:
    """Result of the perception stage for one decision."""

    cloud: PointCloud
    insert_stats: dict
    work: KernelWork


@dataclass
class PlanningOutput:
    """Result of the planning stage for one decision."""

    view: PlanningView
    plan: Optional[PlanResult]
    trajectory: Optional[Trajectory]
    work: KernelWork


class OperatorSet:
    """Applies knob policies to the navigation pipeline's kernels.

    The operators are the enforcement half of the governor's decisions: per
    decision they run the point-cloud and OctoMap kernels at the policy's
    precisions (voxel edges in metres) and volume budgets (cubic metres),
    build the planner's coarsened map view, and run RRT* + smoothing inside
    the allowed planning volume.  The set owns the long-lived pipeline
    state — the occupancy octree and the planner's RNG — so repeated
    missions over the same operators share one map, and tracks
    ``plan_count`` (the number of piece-wise planner invocations reported
    in the mission metrics).
    """

    def __init__(
        self,
        point_cloud_kernel: Optional[PointCloudKernel] = None,
        octree: Optional[OccupancyOctree] = None,
        planner: Optional[RRTStarPlanner] = None,
        smoother: Optional[PathSmoother] = None,
        planner_seed: int = 0,
        local_map_radius: float = 120.0,
    ) -> None:
        if local_map_radius <= 0:
            raise ValueError("local map radius must be positive")
        self.point_cloud_kernel = point_cloud_kernel or PointCloudKernel()
        self.octree = octree or OccupancyOctree(vox_min=0.3, levels=6)
        self.planner = planner or RRTStarPlanner()
        self.smoother = smoother or PathSmoother()
        self.planner_seed = planner_seed
        self.local_map_radius = local_map_radius
        self._plan_count = 0

    # ------------------------------------------------------------------
    # Perception stage (point cloud + OctoMap)
    # ------------------------------------------------------------------
    def run_perception(
        self,
        scan: RigScan,
        policy: KnobPolicy,
        focus: Optional[Vec3] = None,
    ) -> PerceptionOutput:
        """Run the point-cloud and OctoMap kernels under the given policy.

        Args:
            scan: the raw sensor rig capture.
            policy: the knob assignment for this decision.
            focus: prioritisation point for the OctoMap volume operator
                (the nearest trajectory point, or the drone position).
        """
        cloud = self.point_cloud_kernel.process(
            scan, resolution=policy.point_cloud_precision
        )
        insert_stats = self.octree.insert_point_cloud(
            cloud,
            ray_step=max(policy.point_cloud_precision, self.octree.vox_min),
            max_volume=policy.octomap_volume,
            focus=focus if focus is not None else scan.position,
        )
        # Keep the map local so its cost tracks the volume knob rather than
        # mission length; the eviction itself is bucket-pruned by the spatial
        # index, so this per-decision call stays cheap as the map fills up.
        self.octree.forget_beyond(scan.position, self.local_map_radius)

        work = KernelWork(
            pixels_converted=scan.total_pixels(),
            cloud_points=len(cloud),
            map_cells_updated=int(insert_stats.get("cells_updated", 0)),
            map_occupied_cells=self.octree.occupied_voxel_count(),
            messages_sent=2,
            message_payload_items=len(cloud),
        )
        return PerceptionOutput(cloud=cloud, insert_stats=insert_stats, work=work)

    # ------------------------------------------------------------------
    # Perception→planning and planning stages
    # ------------------------------------------------------------------
    def run_planning(
        self,
        policy: KnobPolicy,
        start: Vec3,
        goal: Vec3,
        bounds: AABB,
        replan: bool,
        previous_trajectory: Optional[Trajectory],
        start_time: float,
        velocity_cap: float,
    ) -> PlanningOutput:
        """Build the planner view and (re)plan/smooth under the given policy.

        Args:
            policy: the knob assignment for this decision.
            start: the drone's current position.
            goal: the mission goal.
            bounds: the planner's sampling region.
            replan: when False and a previous trajectory exists, planning is
                skipped and only the view is rebuilt (the common fast path).
            previous_trajectory: the trajectory currently being tracked.
            start_time: simulated time at which the new trajectory starts.
            velocity_cap: velocity limit the smoother must respect.
        """
        view = build_planning_view(
            self.octree,
            precision=policy.map_to_planner_precision,
            max_volume=policy.map_to_planner_volume,
            focus=start,
            region_radius=self.local_map_radius,
        )
        view_work = KernelWork(
            view_cells=len(view),
            messages_sent=1,
            message_payload_items=len(view),
        )

        if not replan and previous_trajectory is not None:
            return PlanningOutput(
                view=view, plan=None, trajectory=previous_trajectory, work=view_work
            )

        self._plan_count += 1
        plan_config = replace(
            self.planner.config,
            collision_ray_step=policy.planning_precision,
            max_explored_volume=policy.planner_volume,
            seed=self.planner_seed + self._plan_count,
        )
        plan = self.planner.plan(start, goal, view, bounds, config=plan_config)

        trajectory = previous_trajectory
        smoother_waypoints = 0
        if plan.success:
            trajectory = self.smoother.smooth(
                plan.waypoints,
                start_time=start_time,
                view=view,
                max_velocity=velocity_cap,
            )
            smoother_waypoints = len(plan.waypoints)

        work = KernelWork(
            view_cells=view_work.view_cells,
            planner_iterations=plan.iterations,
            planner_nodes=plan.nodes_expanded,
            planner_collision_samples=plan.collision_samples,
            smoother_waypoints=smoother_waypoints,
            messages_sent=view_work.messages_sent + 2,
            message_payload_items=view_work.message_payload_items
            + len(plan.waypoints),
        )
        return PlanningOutput(view=view, plan=plan, trajectory=trajectory, work=work)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan_count(self) -> int:
        """How many times the piece-wise planner has been invoked."""
        return self._plan_count


def merge_work(*parts: KernelWork) -> KernelWork:
    """Sum the work counts of several pipeline fragments into one decision."""
    return KernelWork(
        pixels_converted=sum(p.pixels_converted for p in parts),
        cloud_points=sum(p.cloud_points for p in parts),
        map_cells_updated=sum(p.map_cells_updated for p in parts),
        map_occupied_cells=max((p.map_occupied_cells for p in parts), default=0),
        view_cells=sum(p.view_cells for p in parts),
        planner_iterations=sum(p.planner_iterations for p in parts),
        planner_nodes=sum(p.planner_nodes for p in parts),
        planner_collision_samples=sum(p.planner_collision_samples for p in parts),
        smoother_waypoints=sum(p.smoother_waypoints for p in parts),
        messages_sent=sum(p.messages_sent for p in parts),
        message_payload_items=sum(p.message_payload_items for p in parts),
    )
