"""Profilers (paper Table I).

"To adjust precision and volume knobs, environmental information, e.g., gaps
between obstacles, and internal drone states, e.g., velocity, are profiled
from the sensors and navigation pipeline.  Profilers post-process each stage's
data structures, e.g., point cloud array, tree map, and trajectory to extract
space characteristics" (§III-C).

Table I lists the profiled variables, which pipeline stage each is extracted
from and what it is used for.  :class:`SpaceProfile` is the bundle of all of
them for one decision; :class:`ProfilerSuite` produces it from the live data
structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import hotpath
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloud
from repro.planning.trajectory import Trajectory
from repro.sensors.rig import RigScan
from repro.sensors.state_sensors import StateEstimate


@dataclass(frozen=True, slots=True)
class SpaceProfile:
    """Spatial features extracted for one decision (Table I).

    Attributes:
        timestamp: when the profile was taken (simulated seconds).
        gap_min: smallest gap between nearby obstacles, metres (point cloud).
        gap_avg: average gap between nearby obstacles, metres (point cloud).
        closest_obstacle: distance to the nearest observed obstacle, metres
            (point cloud / OctoMap / smoother).
        closest_unknown: distance to the nearest unobserved space, metres
            (OctoMap); unknown space also bounds how far ahead the drone may
            trust its map.
        visibility: usable look-ahead distance, metres — the smaller of the
            sensed visibility and the distance to unknown space.
        sensor_volume: volume observable by the sensor rig this decision, m³.
        map_volume: volume already present in the map, m³.
        velocity: current speed, m/s (sensors).
        position: current position (sensors).
        trajectory: the currently tracked trajectory, if any (smoother).
    """

    timestamp: float
    gap_min: float
    gap_avg: float
    closest_obstacle: float
    closest_unknown: float
    visibility: float
    sensor_volume: float
    map_volume: float
    velocity: float
    position: Vec3
    trajectory: Optional[Trajectory]

    def __post_init__(self) -> None:
        for name in (
            "gap_min",
            "gap_avg",
            "closest_obstacle",
            "closest_unknown",
            "visibility",
            "sensor_volume",
            "map_volume",
            "velocity",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    def is_near_obstacles(self, threshold: float = 10.0) -> bool:
        """True when the nearest observed obstacle is within ``threshold`` metres."""
        return self.closest_obstacle <= threshold


class ProfilerSuite:
    """Extracts a :class:`SpaceProfile` from the pipeline's data structures.

    Attributes:
        gap_neighbourhood: radius (metres) around the drone inside which point
            pairs contribute to the gap statistics.
        open_space_gap: the gap value reported when fewer than two obstacle
            points are nearby — effectively "no precision constraint".
        unknown_search_radius: how far the map is probed for unknown space.
        max_visibility: cap on the usable visibility, metres (sensor range /
            weather).
    """

    def __init__(
        self,
        gap_neighbourhood: float = 25.0,
        open_space_gap: float = 25.0,
        unknown_search_radius: float = 40.0,
        max_visibility: float = 40.0,
    ) -> None:
        if gap_neighbourhood <= 0:
            raise ValueError("gap neighbourhood must be positive")
        if open_space_gap <= 0:
            raise ValueError("open-space gap must be positive")
        if unknown_search_radius <= 0:
            raise ValueError("unknown search radius must be positive")
        if max_visibility <= 0:
            raise ValueError("maximum visibility must be positive")
        self.gap_neighbourhood = gap_neighbourhood
        self.open_space_gap = open_space_gap
        self.unknown_search_radius = unknown_search_radius
        self.max_visibility = max_visibility

    # ------------------------------------------------------------------
    # Individual profilers (one per Table I row)
    # ------------------------------------------------------------------
    def gap_statistics(self, cloud: PointCloud) -> tuple[float, float]:
        """(min gap, average gap) between obstacle points near the drone.

        Profiled from the point-cloud array.  The gap between two observed
        points approximates the free corridor between the obstacles they lie
        on; the minimum gap lower-bounds the precision needed to see a path
        between them (Eq. 3's ``g_min`` and ``g_avg``).
        """
        nearby = cloud.points_within(self.gap_neighbourhood)
        if len(nearby) < 2:
            return (self.open_space_gap, self.open_space_gap)
        if hotpath.enabled():
            # One pairwise distance matrix instead of the quadratic Python
            # loop.  The elementwise arithmetic matches Vec3.distance_to, the
            # row minimum matches the scalar running minimum, and the mean is
            # summed sequentially (tolist + sum) rather than with numpy's
            # pairwise reduction, so both statistics are bit-identical.
            pts = np.array([(p.x, p.y, p.z) for p in nearby], dtype=np.float64)
            diff = pts[:, None, :] - pts[None, :, :]
            dist = np.sqrt(
                (diff[..., 0] * diff[..., 0] + diff[..., 1] * diff[..., 1])
                + diff[..., 2] * diff[..., 2]
            )
            np.fill_diagonal(dist, np.inf)
            row_min = dist.min(axis=1)
            gaps = row_min[np.isfinite(row_min)].tolist()
            if not gaps:
                return (self.open_space_gap, self.open_space_gap)
            gap_min = max(min(gaps), 1e-3)
            gap_avg = max(sum(gaps) / len(gaps), gap_min)
            return (gap_min, gap_avg)
        # Nearest-neighbour distance per point; the cloud is already grid
        # downsampled so the quadratic pass stays small.
        gaps = []
        for i, a in enumerate(nearby):
            best = math.inf
            for j, b in enumerate(nearby):
                if i == j:
                    continue
                d = a.distance_to(b)
                if d < best:
                    best = d
            if math.isfinite(best):
                gaps.append(best)
        if not gaps:
            return (self.open_space_gap, self.open_space_gap)
        gap_min = max(min(gaps), 1e-3)
        gap_avg = max(sum(gaps) / len(gaps), gap_min)
        return (gap_min, gap_avg)

    def closest_obstacle(
        self,
        cloud: PointCloud,
        octree: Optional[OccupancyOctree],
        position: Vec3,
    ) -> float:
        """Distance to the nearest known obstacle (point cloud, then map).

        The freshest estimate comes from the current point cloud; the map is
        consulted only when the cloud is empty (nothing currently in view),
        capped at the profiler's visibility limit.  The map query is the
        spatial index's expanding-ring search, which already returns the
        visibility cap on an empty map, so no emptiness guard is needed.
        """
        cloud_distance = cloud.nearest_distance()
        if math.isfinite(cloud_distance):
            return min(cloud_distance, self.max_visibility)
        if octree is not None:
            return octree.nearest_occupied_distance(position, self.max_visibility)
        return self.max_visibility

    def closest_unknown(
        self,
        octree: Optional[OccupancyOctree],
        position: Vec3,
        heading: Optional[Vec3] = None,
    ) -> float:
        """Distance to the nearest unobserved space ahead of the drone (OctoMap).

        Unknown space only limits the usable look-ahead along the direction of
        travel, so the probe walks the heading direction (falling back to +x
        when the drone has no meaningful heading) rather than all axes.
        """
        if octree is None or octree.observed_voxel_count() == 0:
            return 0.0
        direction = (
            heading if heading is not None and heading.norm_sq() > 1e-9 else Vec3.unit_x()
        )
        direction = direction.normalized()
        step = max(octree.free_resolution, 1.0)
        r = step
        while r <= self.unknown_search_radius:
            if octree.is_unknown(position + direction * r):
                return r
            r += step
        return self.unknown_search_radius

    def visibility(self, scan: Optional[RigScan], closest_unknown: float) -> float:
        """Usable look-ahead distance.

        Visibility is limited by the closest return of the forward camera (the
        nearest thing in the direction of travel) and by how far the map has
        been observed: space beyond the nearest unknown region cannot be
        trusted to be free.
        """
        sensed = scan.forward_min_depth() if scan is not None else self.max_visibility
        usable = min(sensed, self.max_visibility)
        if closest_unknown > 0:
            usable = min(usable, max(closest_unknown, 1.0))
        return usable

    def sensor_volume(self, scan: Optional[RigScan], rig_max_volume: float) -> float:
        """Observable volume this decision, m³ (the v_sensor bound of Eq. 3).

        Occlusion shrinks the usable frustum: the volume is scaled by the cube
        of the mean visible fraction of the sensing range.
        """
        if scan is None:
            return rig_max_volume
        max_range = scan.images[0].max_range if scan.images else 1.0
        fraction = min(1.0, scan.mean_visibility() / max_range)
        return rig_max_volume * fraction**3

    def map_volume(self, octree: Optional[OccupancyOctree]) -> float:
        """Observed map volume, m³ (the v_map bound of Eq. 3)."""
        if octree is None:
            return 0.0
        return octree.observed_volume()

    # ------------------------------------------------------------------
    # Full profile
    # ------------------------------------------------------------------
    def profile(
        self,
        timestamp: float,
        state: StateEstimate,
        cloud: PointCloud,
        scan: Optional[RigScan],
        octree: Optional[OccupancyOctree],
        trajectory: Optional[Trajectory],
        rig_max_volume: float,
        heading: Optional[Vec3] = None,
    ) -> SpaceProfile:
        """Assemble the full Table I profile for one decision.

        Args:
            heading: direction of travel used for the unknown-space probe;
                defaults to the current velocity direction (or +x when
                hovering).
        """
        travel_direction = heading
        if travel_direction is None and state.velocity.norm_sq() > 1e-9:
            travel_direction = state.velocity
        gap_min, gap_avg = self.gap_statistics(cloud)
        closest_obs = self.closest_obstacle(cloud, octree, state.position)
        closest_unknown = self.closest_unknown(octree, state.position, travel_direction)
        visibility = self.visibility(scan, closest_unknown)
        return SpaceProfile(
            timestamp=timestamp,
            gap_min=gap_min,
            gap_avg=gap_avg,
            closest_obstacle=closest_obs,
            closest_unknown=closest_unknown,
            visibility=visibility,
            sensor_volume=self.sensor_volume(scan, rig_max_volume),
            map_volume=self.map_volume(octree),
            velocity=state.speed,
            position=state.position,
            trajectory=trajectory,
        )
