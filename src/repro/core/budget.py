"""Time budgeting (paper Equation 1 and Algorithm 1).

The time budget (decision deadline) is "the maximum time the MAV can spend
processing a sampled input while ensuring a safe flight":

    budget(v, d) = (d − d_stop(v)) / v                         (Eq. 1)

where ``v`` is the traversal velocity, ``d`` the visibility and ``d_stop`` the
stopping distance (Eq. 2).  Because velocity and visibility change along the
planned path, Algorithm 1 refines the naive local budget into a *global*
budget computed as a running sum over upcoming waypoints: at each waypoint the
remaining budget is reduced by the flight time from the previous waypoint and
clamped by that waypoint's local budget, so a tight spot ahead shortens the
deadline even if the drone currently enjoys open space.

The module also provides the inverse query the runtime needs when choosing a
safe velocity: the largest velocity whose budget still covers an expected
processing latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dynamics.stopping import StoppingDistanceModel
from repro.planning.trajectory import TrajectoryPoint


@dataclass(frozen=True, slots=True)
class WaypointObservation:
    """Velocity and visibility expected at one upcoming waypoint.

    Algorithm 1 consumes a sequence of these (``W``): the first entry is the
    drone's instantaneous state and the rest come from the planned trajectory
    and the map's visibility estimates at those waypoints.
    """

    position_along_path: float
    velocity: float
    visibility: float

    def __post_init__(self) -> None:
        if self.velocity < 0:
            raise ValueError("waypoint velocity cannot be negative")
        if self.visibility < 0:
            raise ValueError("waypoint visibility cannot be negative")


class TimeBudgeter:
    """Computes decision deadlines from velocity and visibility.

    Implements Eq. 1 (and Algorithm 1 over an upcoming trajectory): the
    decision deadline is the time the drone can afford to "fly blind" —
    usable visibility (metres) minus the stopping distance at the current
    velocity (m/s), divided by that velocity — capped at ``max_budget_s``
    seconds so hovering drones get a large but finite budget.  The budget is
    what the knob solver spends and what the governor inverts to derive the
    safe velocity cap.

    Attributes:
        stopping_model: converts velocity (m/s) into stopping distance (m).
        min_velocity: floor applied to the velocity, m/s, so budgets stay
            finite while hovering.
        max_budget_s: deadline ceiling, seconds.
    """

    def __init__(
        self,
        stopping_model: Optional[StoppingDistanceModel] = None,
        min_velocity: float = 0.1,
        max_budget_s: float = 60.0,
    ) -> None:
        if min_velocity <= 0:
            raise ValueError("minimum velocity must be positive")
        if max_budget_s <= 0:
            raise ValueError("maximum budget must be positive")
        self.stopping_model = stopping_model or StoppingDistanceModel()
        self.min_velocity = min_velocity
        self.max_budget_s = max_budget_s

    # ------------------------------------------------------------------
    # Equation 1
    # ------------------------------------------------------------------
    def local_budget(self, velocity: float, visibility: float) -> float:
        """Equation 1 at a single point: ``(d − d_stop(v)) / v``.

        Velocities below ``min_velocity`` are floored so a hovering drone gets
        the (large but finite) budget of a very slow one rather than an
        infinite deadline, and budgets are capped at ``max_budget_s``.
        A non-positive numerator (the drone cannot stop within its visible
        distance) yields a zero budget — the unsafe regime.
        """
        if velocity < 0:
            raise ValueError("velocity cannot be negative")
        if visibility < 0:
            raise ValueError("visibility cannot be negative")
        v = max(velocity, self.min_velocity)
        numerator = visibility - self.stopping_model.distance(v)
        if numerator <= 0:
            return 0.0
        return min(numerator / v, self.max_budget_s)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def global_budget(self, waypoints: Sequence[WaypointObservation]) -> float:
        """Algorithm 1: the running-sum global budget over upcoming waypoints.

        Args:
            waypoints: W_0 … W_n, where W_0 describes the drone's current
                state.  Positions along the path must be non-decreasing.

        Returns:
            The global time budget b_g in seconds.
        """
        if not waypoints:
            raise ValueError("Algorithm 1 needs at least the current waypoint W0")

        b_g = 0.0
        b_r = self.local_budget(waypoints[0].velocity, waypoints[0].visibility)
        for previous, current in zip(waypoints, waypoints[1:]):
            if current.position_along_path < previous.position_along_path - 1e-9:
                raise ValueError("waypoints must be ordered along the path")
            flight_time = self._flight_time(previous, current)
            b_r -= flight_time
            b_l = self.local_budget(current.velocity, current.visibility)
            b_r = min(b_r, b_l)
            if b_r <= 0:
                break
            b_g += flight_time
        # When every waypoint keeps a positive remaining budget, the horizon
        # itself does not constrain the deadline: the budget is the remaining
        # slack plus the flight time already accumulated.
        else:
            b_g += max(b_r, 0.0)
        return min(max(b_g, 0.0), self.max_budget_s)

    def _flight_time(
        self, previous: WaypointObservation, current: WaypointObservation
    ) -> float:
        """Flight time between consecutive waypoints at their mean velocity."""
        distance = current.position_along_path - previous.position_along_path
        mean_velocity = max(
            0.5 * (previous.velocity + current.velocity), self.min_velocity
        )
        return max(distance, 0.0) / mean_velocity

    def budget_from_trajectory(
        self,
        current_velocity: float,
        current_visibility: float,
        upcoming: Sequence[TrajectoryPoint],
        visibility_at: Optional[Sequence[float]] = None,
    ) -> float:
        """Convenience wrapper building Algorithm 1's W from a trajectory tail.

        Args:
            current_velocity: the drone's instantaneous speed.
            current_visibility: visibility at the drone's current position.
            upcoming: upcoming trajectory samples (may be empty).
            visibility_at: optional per-sample visibility estimates; when
                omitted the current visibility is assumed to persist, which is
                the conservative choice only if visibility does not improve —
                callers with map access should supply real estimates.
        """
        observations = [
            WaypointObservation(0.0, current_velocity, current_visibility)
        ]
        cumulative = 0.0
        previous_position = None
        for index, sample in enumerate(upcoming):
            if previous_position is not None:
                cumulative += previous_position.distance_to(sample.position)
            previous_position = sample.position
            visibility = (
                visibility_at[index]
                if visibility_at is not None and index < len(visibility_at)
                else current_visibility
            )
            observations.append(
                WaypointObservation(cumulative, sample.speed, visibility)
            )
        return self.global_budget(observations)

    # ------------------------------------------------------------------
    # Inverse query: safe velocity for a given latency
    # ------------------------------------------------------------------
    def max_safe_velocity(
        self,
        visibility: float,
        required_budget: float,
        velocity_ceiling: float,
        tolerance: float = 1e-3,
    ) -> float:
        """Largest velocity whose Eq. 1 budget still covers ``required_budget``.

        The budget is monotonically decreasing in velocity (faster flight
        both shortens the available distance margin and divides by a larger
        v), so a bisection over [min_velocity, velocity_ceiling] finds the
        crossover.  Returns ``min_velocity`` when even the slowest flight
        cannot cover the required budget.
        """
        if required_budget < 0:
            raise ValueError("required budget cannot be negative")
        if velocity_ceiling < self.min_velocity:
            raise ValueError("velocity ceiling is below the minimum velocity")

        if self.local_budget(velocity_ceiling, visibility) >= required_budget:
            return velocity_ceiling
        lo, hi = self.min_velocity, velocity_ceiling
        if self.local_budget(lo, visibility) < required_budget:
            return self.min_velocity
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self.local_budget(mid, visibility) >= required_budget:
                lo = mid
            else:
                hi = mid
        return lo
