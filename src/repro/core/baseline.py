"""The spatial-oblivious baseline.

The paper compares RoboRun against "the state-of-the-art navigation pipeline
provided in MAVBench as the static, spatial oblivious baseline.  For the
baseline, knobs are set such that the mission can be successfully executed,
i.e., with a precision to allow navigating narrow real-world aisles, and with
volumes to allow the MAV to collect all 6 camera data and generate maps
matching an average warehouse size" (§IV).  Its knobs never change (Table II,
"Static" column) and its maximum velocity is fixed at design time from
worst-case assumptions about visibility and decision latency.

:class:`SpatialObliviousRuntime` exposes the same per-decision interface as
:class:`~repro.core.runtime.RoboRunRuntime` so the mission simulator can run
either design unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compute.latency_model import (
    PipelineLatencyModel,
    STAGE_PERCEPTION,
    STAGE_PERCEPTION_TO_PLANNING,
    STAGE_PLANNING,
)
from repro.core.budget import TimeBudgeter
from repro.core.governor import GovernorDecision
from repro.core.policy import KnobPolicy, STATIC_BASELINE_POLICY
from repro.core.profilers import SpaceProfile


@dataclass(frozen=True, slots=True)
class BaselineDesignPoint:
    """The worst-case assumptions baked into the baseline at design time.

    Attributes:
        worst_case_visibility: visibility the designer assumes is always
            available, metres — deliberately pessimistic (tight aisles, fog).
        velocity_ceiling: the airframe/mission velocity ceiling the designer
            may pick from, m/s.
        latency_margin: multiplicative margin applied to the predicted
            worst-case latency when choosing the fixed velocity.
    """

    worst_case_visibility: float = 6.0
    velocity_ceiling: float = 2.5
    latency_margin: float = 1.25

    def __post_init__(self) -> None:
        if self.worst_case_visibility <= 0:
            raise ValueError("worst-case visibility must be positive")
        if self.velocity_ceiling <= 0:
            raise ValueError("velocity ceiling must be positive")
        if self.latency_margin < 1.0:
            raise ValueError("latency margin must be at least 1")


class SpatialObliviousRuntime:
    """Static worst-case runtime: fixed knobs, fixed deadline, fixed velocity.

    The paper's baseline design point: knob settings (precisions in metres,
    volumes in cubic metres) are chosen once, at design time, for the worst
    case the mission might encounter, so every decision pays the same
    latency (seconds) and flies at the same conservative velocity cap (m/s)
    regardless of how open the space actually is.  It implements the same
    per-decision ``Runtime`` protocol as RoboRun, which is what makes the
    two designs swappable inside one pipeline.
    """

    name = "spatial_oblivious"
    spatial_aware = False

    def __init__(
        self,
        policy: KnobPolicy = STATIC_BASELINE_POLICY,
        design_point: Optional[BaselineDesignPoint] = None,
        latency_model: Optional[PipelineLatencyModel] = None,
        budgeter: Optional[TimeBudgeter] = None,
    ) -> None:
        self.policy = policy
        self.design_point = design_point or BaselineDesignPoint()
        self.latency_model = latency_model or PipelineLatencyModel.default()
        self.budgeter = budgeter or TimeBudgeter()
        self._design_latency = self._predict_static_latency()
        self._design_velocity = self._choose_design_velocity()
        self._design_budget = self.budgeter.local_budget(
            self._design_velocity, self.design_point.worst_case_visibility
        )

    # ------------------------------------------------------------------
    # Design-time calibration
    # ------------------------------------------------------------------
    def _predict_static_latency(self) -> float:
        """End-to-end latency predicted at the static knob setting."""
        p = self.policy
        total = self.latency_model.fixed_overhead_s
        total += self.latency_model.stage_latency(
            STAGE_PERCEPTION, p.point_cloud_precision, p.octomap_volume
        )
        total += self.latency_model.stage_latency(
            STAGE_PERCEPTION_TO_PLANNING,
            p.map_to_planner_precision,
            p.map_to_planner_volume,
        )
        total += self.latency_model.stage_latency(
            STAGE_PLANNING, p.planning_precision, p.planner_volume
        )
        return total

    def _choose_design_velocity(self) -> float:
        """Fixed velocity: fastest speed safe under the worst-case assumptions."""
        required = self._design_latency * self.design_point.latency_margin
        return self.budgeter.max_safe_velocity(
            visibility=self.design_point.worst_case_visibility,
            required_budget=required,
            velocity_ceiling=self.design_point.velocity_ceiling,
        )

    @property
    def design_velocity(self) -> float:
        """The statically chosen maximum velocity, m/s."""
        return self._design_velocity

    @property
    def design_latency(self) -> float:
        """The worst-case latency assumed at design time, seconds."""
        return self._design_latency

    @property
    def design_budget(self) -> float:
        """The fixed decision deadline, seconds."""
        return self._design_budget

    # ------------------------------------------------------------------
    # Per-decision interface (same shape as RoboRunRuntime)
    # ------------------------------------------------------------------
    def decide(
        self, profile: SpaceProfile, budget_scale: float = 1.0
    ) -> GovernorDecision:
        """Return the same static policy, deadline and velocity every decision.

        A faulted ``budget_scale`` (e.g. a power brownout) shrinks the
        deadline the platform grants, but the baseline — static by design —
        keeps its design-time knobs and velocity regardless.  Its predicted
        latency then overruns the shrunken budget, which surfaces as
        infeasible decisions and deadline violations: the brittle half of
        the graceful-degradation comparison.
        """
        if budget_scale <= 0:
            raise ValueError("budget scale must be positive")
        time_budget = self._design_budget
        feasible = True
        if budget_scale != 1.0:
            time_budget = time_budget * budget_scale
            feasible = self._design_latency <= time_budget
        return GovernorDecision(
            timestamp=profile.timestamp,
            time_budget=time_budget,
            policy=self.policy,
            predicted_latency=self._design_latency,
            velocity_cap=self._design_velocity,
            solver_feasible=feasible,
            profile=profile,
        )
