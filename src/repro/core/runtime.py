"""The RoboRun runtime.

Ties the profilers, governor (time budgeter + solver) and operators together
into the spatial-aware runtime of Figure 6.  The mission simulator drives it
through two calls per decision:

* :meth:`RoboRunRuntime.profile` — post-process the pipeline's current data
  structures into a :class:`~repro.core.profilers.SpaceProfile`; and
* :meth:`RoboRunRuntime.decide` — run the governor on that profile to obtain
  the knob policy, decision deadline and safe-velocity cap.

The runtime also keeps a trace of every decision it has made, which the
analysis layer uses to reproduce the precision-over-time and deadline-over-
time figures (Figures 5 and 10c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.governor import Governor, GovernorDecision
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloud
from repro.planning.trajectory import Trajectory
from repro.sensors.rig import RigScan
from repro.sensors.state_sensors import StateEstimate


class RoboRunRuntime:
    """The spatial-aware runtime under test: profilers + governor per decision.

    Each decision it receives a :class:`~repro.core.profilers.SpaceProfile`
    (distances in metres, volumes in cubic metres, velocity in m/s) and
    returns a :class:`~repro.core.governor.GovernorDecision`: the time
    budget in seconds, the knob policy the operators must enforce, and the
    safe velocity cap in m/s.  This is the design whose Figure 7 mission
    metrics the paper credits with the 5× velocity / 4.5× mission-time
    improvements; :class:`~repro.core.baseline.SpatialObliviousRuntime` is
    its static counterpart.
    """

    name = "roborun"
    spatial_aware = True

    def __init__(
        self,
        governor: Optional[Governor] = None,
        profilers: Optional[ProfilerSuite] = None,
    ) -> None:
        self.governor = governor or Governor()
        self.profilers = profilers or ProfilerSuite()
        self._decisions: List[GovernorDecision] = []

    # ------------------------------------------------------------------
    # Per-decision interface
    # ------------------------------------------------------------------
    def profile(
        self,
        timestamp: float,
        state: StateEstimate,
        cloud: PointCloud,
        scan: Optional[RigScan],
        octree: Optional[OccupancyOctree],
        trajectory: Optional[Trajectory],
        rig_max_volume: float,
    ) -> SpaceProfile:
        """Run the profiler suite over the pipeline's current data structures."""
        return self.profilers.profile(
            timestamp=timestamp,
            state=state,
            cloud=cloud,
            scan=scan,
            octree=octree,
            trajectory=trajectory,
            rig_max_volume=rig_max_volume,
        )

    def decide(
        self, profile: SpaceProfile, budget_scale: float = 1.0
    ) -> GovernorDecision:
        """Run the governor and record the decision in the trace.

        ``budget_scale`` shrinks (or stretches) the time budget before the
        solver runs — the spatial-aware runtime *re-solves* its knobs against
        the faulted budget, which is exactly the graceful degradation the
        fault-robustness comparison measures.
        """
        decision = self.governor.decide(profile, budget_scale=budget_scale)
        self._decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> List[GovernorDecision]:
        """Every decision made so far, in order."""
        return list(self._decisions)

    def precision_trace(self) -> List[tuple[float, float]]:
        """(timestamp, point-cloud precision) per decision — Figure 10c's data."""
        return [
            (d.timestamp, d.policy.point_cloud_precision) for d in self._decisions
        ]

    def budget_trace(self) -> List[tuple[float, float]]:
        """(timestamp, time budget) per decision — Figure 5b's data."""
        return [(d.timestamp, d.time_budget) for d in self._decisions]

    def velocity_cap_trace(self) -> List[tuple[float, float]]:
        """(timestamp, velocity cap) per decision."""
        return [(d.timestamp, d.velocity_cap) for d in self._decisions]

    def reset(self) -> None:
        """Clear the decision trace (a new mission)."""
        self._decisions.clear()
