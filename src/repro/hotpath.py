"""Global switch between the vectorised hot path and its scalar twins.

Every vectorised routine in the reproduction keeps its original scalar
implementation as the *reference twin*: the scalar code is what the paper's
semantics were validated against, and the batched numpy code must return
bit-identical results (the golden mission-metric tests enforce this on the
benchmark seed).  This module holds the one flag that selects between them.

The vectorised path is the default.  Tests flip to the scalar twins with
:func:`scalar_mode` to prove equivalence end to end::

    from repro import hotpath

    with hotpath.scalar_mode():
        result = MissionSimulator(...).run()   # pure-Python reference

Setting the environment variable ``REPRO_SCALAR=1`` before import forces the
scalar path for a whole process (useful for A/B profiling runs).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: When True (default), hot-path queries run their batched numpy
#: implementations; when False, every dual-path routine falls back to its
#: scalar reference twin.
VECTORIZED: bool = os.environ.get("REPRO_SCALAR", "") not in ("1", "true", "yes")


def enabled() -> bool:
    """True when the vectorised hot path is active."""
    return VECTORIZED


@contextmanager
def scalar_mode() -> Iterator[None]:
    """Run the body on the scalar reference twins (restores the flag after)."""
    global VECTORIZED
    previous = VECTORIZED
    VECTORIZED = False
    try:
        yield
    finally:
        VECTORIZED = previous


@contextmanager
def vectorized_mode() -> Iterator[None]:
    """Force the vectorised path (used by tests that toggle both ways)."""
    global VECTORIZED
    previous = VECTORIZED
    VECTORIZED = True
    try:
        yield
    finally:
        VECTORIZED = previous
