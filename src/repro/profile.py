"""``python -m repro.profile`` — run one spec fully instrumented.

The profile CLI is the command-line face of :mod:`repro.obs`: it takes the
same grid JSON files as ``python -m repro.report``, picks one spec, flies it
with an :class:`~repro.obs.tap.ObsTap` attached and emits the runtime's
observability artefacts:

* ``<spec>_trace.json`` — Chrome trace-event spans (open in Perfetto or
  ``chrome://tracing``): mission → decision → node, one lane per drone;
* ``<spec>_metrics.json`` — the metrics registry snapshot (JSON);
* ``<spec>_metrics.prom`` — the same registry in Prometheus text format;
* a top-N hotspot table on stdout (wall-clock totals per span name).

Usage::

    # Profile the first spec of a grid
    python -m repro.profile examples/grid_small.json

    # Pick a spec by name, choose the output directory and table size
    python -m repro.profile examples/grid_small.json \
        --spec small_roborun_paper_corridor_nofault_den0.3_spr30_goal60 \
        --out-dir reports/profile --top 15
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.analysis.figures import FigureTable
from repro.obs.log import configure_logging, get_logger
from repro.obs.tap import ObsTap
from repro.report import load_grid_file

log = get_logger("profile")


def hotspot_table(tap: ObsTap, top: int = 10) -> FigureTable:
    """The top-``top`` span names by total wall-clock time.

    Decision spans envelop the node spans, so both levels appear — the
    table answers "where does the wall clock go" at whatever granularity
    dominates.
    """
    durations = tap.tracer.span_durations()
    ranked = sorted(
        durations.items(), key=lambda item: item[1]["total_us"], reverse=True
    )[:top]
    rows: List[List[Any]] = []
    for name, entry in ranked:
        count = int(entry["count"])
        total_ms = entry["total_us"] / 1000.0
        rows.append(
            [
                name,
                count,
                round(total_ms, 3),
                round(total_ms / count, 4) if count else 0.0,
                round(entry["max_us"] / 1000.0, 4),
            ]
        )
    return FigureTable(
        key="hotspots",
        title=f"Top {top} spans by wall-clock time",
        columns=["span", "count", "total_ms", "mean_ms", "max_ms"],
        rows=rows,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description=(
            "Fly one scenario spec with the observability tap attached and "
            "emit a Chrome trace, a metrics snapshot, a Prometheus rendering "
            "and a hotspot table."
        ),
    )
    parser.add_argument(
        "grid",
        type=Path,
        help="JSON grid file (same shapes as python -m repro.report --grid)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="name of the spec to profile (default: the grid's first spec)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="artefact directory (default: reports/profile/<grid name>)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the hotspot table (default: 10)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the grid's spec names and exit without flying anything",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    configure_logging()
    args = build_parser().parse_args(argv)

    specs = load_grid_file(args.grid)
    if not specs:
        log.error("grid %s holds no specs", args.grid)
        return 1
    if args.list:
        for spec in specs:
            log.info("%s", spec.name)
        return 0

    if args.spec is None:
        spec = specs[0]
    else:
        by_name = {s.name: s for s in specs}
        spec = by_name.get(args.spec)
        if spec is None:
            log.error(
                "no spec named %r in %s; choices:\n  %s",
                args.spec,
                args.grid,
                "\n  ".join(sorted(by_name)),
            )
            return 1

    out_dir = args.out_dir or Path("reports") / "profile" / args.grid.stem
    log.info("Profiling %s (design=%s) ...", spec.name, spec.design)

    tap = ObsTap(process_name=spec.name)
    result = spec.run(taps=(tap,))
    tap.finish()

    paths = tap.export(out_dir, stem=spec.name)
    log.info("Chrome trace:      %s", paths["trace"])
    log.info("Metrics snapshot:  %s", paths["metrics"])
    log.info("Prometheus text:   %s", paths["prometheus"])

    metrics = result.metrics.as_dict()
    log.info(
        "Mission: success=%s time=%.1fs decisions=%d",
        bool(metrics.get("success")),
        metrics.get("mission_time_s", 0.0),
        int(metrics.get("decision_count", 0)),
    )
    log.info("")
    log.info("%s", hotspot_table(tap, top=args.top).to_markdown())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
