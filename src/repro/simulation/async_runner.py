"""Asynchronous campaign engine: persistent work-stealing workers.

The sync campaign path (:meth:`~repro.simulation.campaign.CampaignRunner.
_run_pool`) is one ``Pool.map`` barrier: every spec is assigned up front, a
fast worker idles while a slow archetype finishes, and one hard-crashed
worker (SIGKILL, OOM-kill, segfault in an extension) wedges the whole
campaign.  This module is the GenTen-style asynchronous alternative:

* **Work stealing** — N persistent worker processes pull ``(index,
  payload)`` tasks from one shared queue, so mission-length skew between
  archetypes never strands capacity; result rows stream back on a second
  queue as they finish, overlapping the parent's heartbeat draining and
  trace IO with worker compute.
* **Crash containment** — each worker advertises the spec it is flying in
  a shared claims array (a synchronous memory write, so it survives the
  worker being SIGKILLed a microsecond later).  When the parent notices a
  dead worker it requeues the claimed spec with exponential backoff and
  spawns a replacement; after ``max_attempts`` dispatches the spec is
  excluded as poisoned and surfaced as an error outcome — never a hang.
* **Timeouts** — with ``spec_timeout_s`` set, a worker whose claim has
  outlived the budget is killed outright and its spec goes through the
  same retry/exclusion path.

Determinism is unchanged from the sync path: rows are keyed by spec index
and reassembled in spec order, and each trace file depends only on its spec
(a retried attempt truncates and rewrites the identical bytes), so serial,
sync-pool and async runs of the same grid agree byte-for-byte.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.simulation.campaign import (
    _run_payload,
    _telemetry_initializer,
    write_error_trace,
)

#: Claims-array value meaning "this worker holds no spec".
_IDLE = -1

#: Longest the parent sleeps on the result queue between housekeeping
#: passes (liveness checks, timeout enforcement, retry release).
_MAX_POLL_S = 0.5


def _async_worker_main(
    worker_id: int,
    claims: Any,
    task_queue: Any,
    result_queue: Any,
    telemetry_queue: Optional[Any],
) -> None:
    """Persistent worker loop: pull specs until the ``None`` sentinel.

    The claim is written into shared memory *before* the payload runs and
    cleared only *after* the result row is enqueued, so the parent can
    always attribute a dead worker to the spec it was flying.
    """
    if telemetry_queue is not None:
        _telemetry_initializer(telemetry_queue)
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, payload = item
        claims[worker_id] = index
        row = _run_payload(payload)
        result_queue.put((index, row))
        claims[worker_id] = _IDLE


@dataclass
class _Claim:
    """Parent-side view of one worker's current spec."""

    index: int
    since: float  # perf_counter when the parent first observed the claim


class AsyncCampaignEngine:
    """Runs campaign payloads on persistent work-stealing workers.

    Created per campaign by :meth:`CampaignRunner._run_async`; see the
    module docstring for the execution model and
    :class:`~repro.simulation.campaign.CampaignRunner` for the knobs.
    """

    def __init__(
        self,
        workers: int,
        spec_timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("the async engine needs at least one worker")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.workers = workers
        self.spec_timeout_s = spec_timeout_s
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        payloads: List[Dict[str, Any]],
        telemetry: bool = False,
        progress: Optional[Any] = None,
        heartbeats: Optional[List[Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        """Fly every payload; returns one result row per payload, in order."""
        total = len(payloads)
        if total == 0:
            return []
        if heartbeats is None:
            heartbeats = []
        self._telemetry = telemetry
        self._progress = progress
        self._heartbeats = heartbeats
        self._payloads = payloads

        context = multiprocessing.get_context()
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._telemetry_queue = context.Queue() if telemetry else None
        # lock=False: each slot has exactly one writer (its worker); the
        # parent only reads.
        self._claims = context.Array("q", [_IDLE] * self.workers, lock=False)
        self._context = context

        self._rows: Dict[int, Dict[str, Any]] = {}
        self._attempts: Dict[int, int] = {}
        self._queued: Set[int] = set()
        self._delayed: List[tuple] = []  # (ready_time, index)
        self._active: Dict[int, _Claim] = {}
        self._death_seen = False
        self._starved_passes = 0

        for index, _ in enumerate(payloads):
            self._dispatch(index)
        self._procs: List[Any] = [self._spawn(wid) for wid in range(self.workers)]

        try:
            while len(self._rows) < total:
                self._collect_result()
                self._drain_telemetry()
                self._observe_claims()
                self._reap_dead_workers()
                self._enforce_timeouts()
                self._release_retries()
                self._recover_starvation()
        finally:
            self._shutdown()
        return [self._rows[index] for index in range(total)]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> Any:
        self._claims[worker_id] = _IDLE
        proc = self._context.Process(
            target=_async_worker_main,
            args=(
                worker_id,
                self._claims,
                self._task_queue,
                self._result_queue,
                self._telemetry_queue,
            ),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        proc.start()
        return proc

    def _reap_dead_workers(self) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc is None or proc.is_alive():
                continue
            exitcode = proc.exitcode
            proc.join()
            self._procs[worker_id] = None
            self._death_seen = True
            claim = self._active.pop(worker_id, None)
            if claim is not None and claim.index not in self._rows:
                self._retry_or_exclude(
                    claim.index,
                    reason=(
                        f"worker pid={proc.pid} died with exit code "
                        f"{exitcode} while flying this spec"
                    ),
                    error_type="WorkerCrashError",
                    elapsed=time.perf_counter() - claim.since,
                )
            if len(self._rows) < len(self._payloads):
                self._procs[worker_id] = self._spawn(worker_id)

    def _enforce_timeouts(self) -> None:
        if self.spec_timeout_s is None:
            return
        now = time.perf_counter()
        for worker_id, claim in list(self._active.items()):
            if claim.index in self._rows:
                continue  # stale slot: the result already landed
            elapsed = now - claim.since
            if elapsed < self.spec_timeout_s:
                continue
            proc = self._procs[worker_id]
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join()
                self._procs[worker_id] = None
            self._active.pop(worker_id, None)
            self._death_seen = True
            spec_name = self._spec_name(claim.index)
            self._emit(
                claim.index,
                "timeout",
                elapsed,
                error=(
                    f"spec {spec_name!r} exceeded the "
                    f"{self.spec_timeout_s:g}s wall-clock budget"
                ),
            )
            self._retry_or_exclude(
                claim.index,
                reason=(
                    f"spec exceeded its {self.spec_timeout_s:g}s wall-clock "
                    f"budget ({elapsed:.1f}s elapsed); worker was killed"
                ),
                error_type="SpecTimeoutError",
                elapsed=elapsed,
            )
            if len(self._rows) < len(self._payloads):
                self._procs[worker_id] = self._spawn(worker_id)

    # ------------------------------------------------------------------
    # Task accounting
    # ------------------------------------------------------------------
    def _dispatch(self, index: int) -> None:
        self._attempts[index] = self._attempts.get(index, 0) + 1
        self._queued.add(index)
        self._task_queue.put((index, self._payloads[index]))

    def _retry_or_exclude(
        self, index: int, reason: str, error_type: str, elapsed: float
    ) -> None:
        """A dispatched attempt was lost; back off and requeue, or give up."""
        if self._attempts.get(index, 0) >= self.max_attempts:
            self._exclude(index, reason, error_type, elapsed)
            return
        backoff = self.retry_backoff_s * (2 ** (self._attempts[index] - 1))
        self._delayed.append((time.perf_counter() + backoff, index))
        self._emit(
            index,
            "retry",
            elapsed,
            error=f"{reason}; retrying (attempt "
            f"{self._attempts[index] + 1}/{self.max_attempts})",
        )

    def _exclude(
        self, index: int, reason: str, error_type: str, elapsed: float
    ) -> None:
        """Poisoned spec: stop retrying and surface an error outcome."""
        payload = self._payloads[index]
        spec_dict = payload["spec"]
        message = (
            f"{reason}; excluded after "
            f"{self._attempts.get(index, 0)}/{self.max_attempts} attempt(s)"
        )
        error = {
            "type": error_type,
            "message": message,
            "traceback": "",
            "spec_json": json.dumps(spec_dict, sort_keys=True),
        }
        self._rows[index] = {"spec": spec_dict, "error": error}
        if payload.get("trace_dir"):
            write_error_trace(payload["trace_dir"], spec_dict, error)
        self._emit(index, "error", elapsed, error=f"{error_type}: {message}")

    def _release_retries(self) -> None:
        if not self._delayed:
            return
        now = time.perf_counter()
        ready = [entry for entry in self._delayed if entry[0] <= now]
        if not ready:
            return
        self._delayed = [entry for entry in self._delayed if entry[0] > now]
        for _, index in ready:
            if index not in self._rows:
                self._dispatch(index)

    def _recover_starvation(self) -> None:
        """Requeue tasks lost in the get→claim window of a killed worker.

        A worker SIGKILLed after pulling a task but before writing its claim
        takes the task to its grave without the parent ever learning which
        one.  The signature is: a death happened, no claims are live, no
        retries are pending, the task queue is empty — yet rows are missing.
        Two consecutive starved passes (so a worker merely between ``get``
        and the claim write isn't mistaken for a loss) requeue the missing
        indices.  A spurious requeue is harmless: rows are keyed by index
        and a duplicate result carries identical bytes.
        """
        missing = [
            index
            for index in self._queued
            if index not in self._rows
        ]
        if (
            not self._death_seen
            or not missing
            or self._active
            or self._delayed
            or not self._task_queue.empty()
        ):
            self._starved_passes = 0
            return
        self._starved_passes += 1
        if self._starved_passes < 2:
            return
        self._starved_passes = 0
        for index in missing:
            self._dispatch(index)

    # ------------------------------------------------------------------
    # Event collection
    # ------------------------------------------------------------------
    def _poll_timeout(self) -> float:
        timeout = _MAX_POLL_S
        now = time.perf_counter()
        if self.spec_timeout_s is not None:
            for claim in self._active.values():
                timeout = min(
                    timeout, claim.since + self.spec_timeout_s - now
                )
        for ready_time, _ in self._delayed:
            timeout = min(timeout, ready_time - now)
        return max(timeout, 0.02)

    def _collect_result(self) -> None:
        try:
            index, row = self._result_queue.get(True, self._poll_timeout())
        except queue_mod.Empty:
            return
        if index not in self._rows:
            self._rows[index] = row
        self._queued.discard(index)
        # Drop stale claims for this index so the timeout sweep never kills
        # a worker over a spec that already finished.
        for worker_id, claim in list(self._active.items()):
            if claim.index == index:
                del self._active[worker_id]

    def _observe_claims(self) -> None:
        now = time.perf_counter()
        for worker_id in range(self.workers):
            value = self._claims[worker_id]
            if value == _IDLE:
                self._active.pop(worker_id, None)
                continue
            current = self._active.get(worker_id)
            if current is None or current.index != value:
                self._active[worker_id] = _Claim(index=value, since=now)
            self._queued.discard(value)

    def _drain_telemetry(self) -> None:
        if self._telemetry_queue is None:
            return
        while True:
            try:
                record = self._telemetry_queue.get_nowait()
            except queue_mod.Empty:
                return
            self._heartbeats.append(record)
            if self._progress is not None:
                self._progress(record)

    def _spec_name(self, index: int) -> str:
        return str(self._payloads[index]["spec"].get("name", "unnamed"))

    def _emit(
        self, index: int, status: str, elapsed: float, error: str = ""
    ) -> None:
        """Parent-synthesised heartbeat for retry/timeout/exclusion events."""
        if not self._telemetry:
            return
        from repro.obs.heartbeat import HeartbeatRecord

        record = HeartbeatRecord(
            spec=self._spec_name(index),
            status=status,
            seq=0,
            epoch=-1,
            decisions=0,
            wall_elapsed_s=elapsed,
            rss_mb=0.0,
            pid=os.getpid(),
            error=error,
        ).to_dict()
        self._heartbeats.append(record)
        if self._progress is not None:
            self._progress(record)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        alive = [proc for proc in self._procs if proc is not None]
        for _ in alive:
            try:
                self._task_queue.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue closed
                break
        deadline = time.monotonic() + 2.0
        for proc in alive:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join()
        self._drain_telemetry()
        # Unconsumed sentinels (a worker died before its sentinel) must not
        # block interpreter shutdown on the queue's feeder thread.
        self._task_queue.cancel_join_thread()
        self._task_queue.close()
        self._result_queue.cancel_join_thread()
        self._result_queue.close()
        if self._telemetry_queue is not None:
            self._telemetry_queue.cancel_join_thread()
            self._telemetry_queue.close()
