"""Mission metrics and per-decision traces.

The mission-level metrics mirror Figure 7 (flight velocity, flight time,
flight energy, CPU utilisation); the per-decision traces carry everything the
analysis layer needs to rebuild the representative-mission figures: policy
knobs over time (Figure 10c), velocity over time (Figure 10b), deadlines
(Figure 5b) and the per-stage latency breakdown (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry.vec3 import Vec3
from repro.middleware.latency import compute_seconds


@dataclass(frozen=True, slots=True)
class DecisionTrace:
    """Everything recorded about a single decision of a mission.

    The pipeline's always-on, in-memory record (the streamable counterpart
    with identity and energy attached is
    :class:`repro.analysis.trace.DecisionRecord`).

    Attributes:
        index: decision index within the mission, starting at 0.
        timestamp: simulated time when the decision completed, seconds.
        position: drone position at decision time, metres.
        zone: congestion zone name at that position ("A"/"B"/"C").
        speed: drone speed entering the decision, m/s.
        velocity_cap: the governor's safe-velocity cap, m/s.
        time_budget: the decision deadline δ_d, seconds.
        policy: the chosen knob assignment (precisions in metres, volumes
            in cubic metres).
        stage_latencies: seconds charged per pipeline stage (``comm_*``
            keys are the communication hops).
        end_to_end_latency: sum of all stage latencies, seconds.
        visibility: usable look-ahead distance, metres.
        closest_obstacle: distance to the nearest observed obstacle, metres.
        replanned: True when the piece-wise planner ran this decision.
    """

    index: int
    timestamp: float
    position: Vec3
    zone: str
    speed: float
    velocity_cap: float
    time_budget: float
    policy: Dict[str, float]
    stage_latencies: Dict[str, float]
    end_to_end_latency: float
    visibility: float
    closest_obstacle: float
    replanned: bool

    @property
    def compute_latency(self) -> float:
        """Computation (non-communication) part of the decision latency, seconds."""
        return compute_seconds(self.stage_latencies)

    @property
    def deadline_met(self) -> bool:
        """True when the decision finished within its time budget."""
        return self.end_to_end_latency <= self.time_budget + 1e-9


@dataclass
class MissionMetrics:
    """Mission-level summary (the Figure 7 quantities plus bookkeeping).

    Attributes:
        design: name of the runtime evaluated ("roborun" / "spatial_oblivious").
        success: True when the drone reached the goal without colliding.
        collided: True when the drone hit an obstacle.
        mission_time_s: total simulated time from launch until goal/termination.
        distance_travelled_m: integrated path length actually flown.
        mean_velocity_mps: distance travelled divided by mission time.
        energy_j: total mission energy (flight plus compute), joules.
        mean_cpu_utilization: average per-decision CPU utilisation in [0, 1].
        decision_count: number of pipeline decisions executed.
        median_latency_s: median end-to-end decision latency.
        max_latency_s: worst-case end-to-end decision latency.
        deadline_miss_rate: fraction of decisions whose latency exceeded their
            budget.
        replan_count: number of piece-wise planner invocations.
    """

    design: str
    success: bool
    collided: bool
    mission_time_s: float
    distance_travelled_m: float
    mean_velocity_mps: float
    energy_j: float
    mean_cpu_utilization: float
    decision_count: int
    median_latency_s: float
    max_latency_s: float
    deadline_miss_rate: float
    replan_count: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the benchmark tables."""
        return {
            "success": float(self.success),
            "collided": float(self.collided),
            "mission_time_s": self.mission_time_s,
            "distance_travelled_m": self.distance_travelled_m,
            "mean_velocity_mps": self.mean_velocity_mps,
            "energy_kj": self.energy_j / 1000.0,
            "mean_cpu_utilization": self.mean_cpu_utilization,
            "decision_count": float(self.decision_count),
            "median_latency_s": self.median_latency_s,
            "max_latency_s": self.max_latency_s,
            "deadline_miss_rate": self.deadline_miss_rate,
            "replan_count": float(self.replan_count),
        }


def summarise_zone_latency_variation(
    traces: List[DecisionTrace],
) -> Dict[str, float]:
    """Max-minus-min end-to-end latency per zone (the §V-C variation numbers)."""
    by_zone: Dict[str, List[float]] = {}
    for trace in traces:
        by_zone.setdefault(trace.zone, []).append(trace.end_to_end_latency)
    return {
        zone: (max(values) - min(values)) if values else 0.0
        for zone, values in by_zone.items()
    }


def summarise_zone_velocity(traces: List[DecisionTrace]) -> Dict[str, float]:
    """Mean flown speed per zone (zone B should be fastest for RoboRun)."""
    by_zone: Dict[str, List[float]] = {}
    for trace in traces:
        by_zone.setdefault(trace.zone, []).append(trace.speed)
    return {
        zone: (sum(values) / len(values)) if values else 0.0
        for zone, values in by_zone.items()
    }
