"""Campaigns: many scenarios, one process pool, one aggregated result.

The paper's evaluation flies 27 environments per design; the ROADMAP's north
star is "as many scenarios as you can imagine".  A :class:`CampaignRunner`
fans a list of :class:`~repro.simulation.scenario.ScenarioSpec`s across a
``multiprocessing`` pool — one worker per mission, following the synchronous
fan-out/fan-in parallelism GenTen-style sweep drivers use — and folds the
per-mission metrics into a :class:`CampaignResult`.

Determinism: specs carry their own seeds, workers receive plain dictionaries
(no shared state), and results are collected in spec order regardless of
which worker finishes first, so a campaign's aggregate is identical whether
it runs serially or across any number of workers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.mission import MissionResult
from repro.simulation.scenario import ScenarioSpec


def _error_record(spec_dict: Dict[str, Any], exc: BaseException) -> Dict[str, str]:
    """The per-spec failure description shipped back to the campaign parent."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": _traceback.format_exc(),
        "spec_json": json.dumps(spec_dict, sort_keys=True),
    }


#: Worker-side heartbeat sink.  ``None`` (the default) means telemetry is
#: off and the worker touches none of the heartbeat code.  Pool workers get
#: theirs installed by :func:`_telemetry_initializer`; serial campaigns set
#: it around the inline loop.
_worker_telemetry_sink: Optional[Any] = None


def _telemetry_initializer(queue: Any) -> None:
    """Pool initializer: point this worker's heartbeats at the parent queue."""
    global _worker_telemetry_sink
    _worker_telemetry_sink = queue


def _run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: fly one scenario described as plain data.

    Runs in a pool worker (or inline for serial campaigns); everything that
    crosses the process boundary is a dictionary, so no live object graph is
    pickled.  When the caller asked to keep full results, the heavyweight
    pipeline (bus, executor, node callbacks) is stripped first.

    A spec that raises does not kill the campaign: the worker returns an
    ``error`` row carrying the exception, its traceback and the failing
    spec's JSON, so campaign reports can show partial failures.  When the
    payload names a ``trace_dir``, the mission streams one JSONL trace file
    (decision records plus the final mission record — or an error record for
    a failed spec) into it.
    """
    spec_dict = payload["spec"]
    row: Dict[str, Any] = {"spec": spec_dict}
    writer = None
    recorder = None
    emitter = None
    sink = _worker_telemetry_sink if payload.get("telemetry") else None
    try:
        # The writer is opened before the spec is parsed (from the raw dict's
        # name) so that even a spec that fails to *parse* leaves an error
        # record in the trace stream; imports are lazy so workers without
        # tracing never load the analysis package.
        if payload.get("trace_dir"):
            from repro.analysis.io import TraceWriter, trace_path

            writer = TraceWriter(
                trace_path(payload["trace_dir"], str(spec_dict.get("name", "unnamed")))
            )
        if sink is not None:
            # Lazy import for the same reason as the analysis layer: workers
            # without telemetry never load the obs package.
            from repro.obs.heartbeat import HeartbeatEmitter

            emitter = HeartbeatEmitter(str(spec_dict.get("name", "unnamed")), sink)
            emitter.emit("start")
        spec = ScenarioSpec.from_dict(spec_dict)
        if writer is not None:
            from repro.analysis.recorder import TraceRecorder

            recorder = TraceRecorder(writer=writer, spec=spec, keep_records=False)
        # taps is only passed when telemetry is live, so campaigns without
        # telemetry exercise exactly the pre-obs call (and keep working with
        # callers that stub ScenarioSpec.run with the old signature).
        if emitter is not None:
            result = spec.run(recorder=recorder, taps=(emitter,))
        else:
            result = spec.run(recorder=recorder)
        row["metrics"] = result.metrics.as_dict()
        if payload.get("keep_results"):
            result.pipeline = None
            # Fleet results additionally carry one MissionResult per drone,
            # each with its own live pipeline to strip.
            for drone_result in getattr(result, "drones", ()):  # FleetResult
                drone_result.pipeline = None
            row["result"] = result
        if emitter is not None:
            emitter.emit("done")
    except Exception as exc:  # noqa: BLE001 - the whole point is to surface it
        error = _error_record(spec_dict, exc)
        row["error"] = error
        if emitter is not None:
            emitter.emit("error", error=f"{type(exc).__name__}: {exc}")
        if writer is not None:
            from repro.analysis.trace import MissionRecord

            environment = dict(spec_dict.get("environment", {}))
            writer.write(
                MissionRecord(
                    spec_name=spec_dict.get("name", "?"),
                    design=spec_dict.get("design", "?"),
                    seed=int(environment.get("seed", 0)),
                    environment=environment,
                    metrics={},
                    error=error,
                    spec=spec_dict,
                )
            )
    finally:
        if writer is not None:
            writer.close()
    return row


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """One scenario's spec and what its mission produced.

    Attributes:
        spec: the scenario that was flown.
        metrics: the mission's flat metric dictionary (times in seconds,
            distances in metres, energy in kilojoules); ``None`` when the
            spec errored instead of flying.
        result: the full :class:`~repro.simulation.mission.MissionResult`
            when the campaign was run with ``keep_results=True``.
        error: ``None`` on success; otherwise the per-spec failure record
            (``type`` / ``message`` / ``traceback`` / ``spec_json``).
    """

    spec: ScenarioSpec
    metrics: Optional[Dict[str, float]]
    result: Optional[MissionResult] = None
    error: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        """True when the mission ran to completion (possibly unsuccessfully)."""
        return self.error is None

    @property
    def success(self) -> bool:
        """True when the drone reached the goal without colliding."""
        return self.ok and bool((self.metrics or {}).get("success"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics) if self.metrics is not None else None,
            "error": dict(self.error) if self.error is not None else None,
        }


@dataclass
class CampaignResult:
    """Aggregated outcomes of one campaign, in spec order.

    Attributes:
        outcomes: one :class:`ScenarioOutcome` per spec, in spec order
            (including error outcomes for specs that failed to run).
        trace_dir: the directory the campaign streamed JSONL traces into,
            when it was run with one.
    """

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    trace_dir: Optional[str] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def by_design(self) -> Dict[str, List[ScenarioOutcome]]:
        """Outcomes grouped by runtime design, preserving spec order."""
        groups: Dict[str, List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.spec.design, []).append(outcome)
        return groups

    def failures(self) -> List[ScenarioOutcome]:
        """Outcomes whose spec raised instead of flying, in spec order."""
        return [o for o in self.outcomes if not o.ok]

    def success_rate(self, design: Optional[str] = None) -> float:
        """Fraction of specs that reached the goal without colliding.

        Failed specs count against the rate: a campaign where half the specs
        crashed did not succeed on those specs.
        """
        selected = self._select(design)
        if not selected:
            return 0.0
        return sum(1 for o in selected if o.success) / len(selected)

    def mean_metric(self, key: str, design: Optional[str] = None) -> float:
        """Mean of one mission metric over the missions that actually flew."""
        selected = [o for o in self._select(design) if o.ok]
        if not selected:
            return 0.0
        return sum(o.metrics[key] for o in selected) / len(selected)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-design mission-level summary (the Figure 7 quantities)."""
        table: Dict[str, Dict[str, float]] = {}
        for design, outcomes in self.by_design().items():
            table[design] = {
                "missions": float(len(outcomes)),
                "failed": float(sum(1 for o in outcomes if not o.ok)),
                "success_rate": self.success_rate(design),
                "mean_mission_time_s": self.mean_metric("mission_time_s", design),
                "mean_velocity_mps": self.mean_metric("mean_velocity_mps", design),
                "mean_energy_kj": self.mean_metric("energy_kj", design),
                "mean_cpu_utilization": self.mean_metric(
                    "mean_cpu_utilization", design
                ),
                "mean_median_latency_s": self.mean_metric(
                    "median_latency_s", design
                ),
            }
        return table

    def _select(self, design: Optional[str]) -> List[ScenarioOutcome]:
        if design is None:
            return self.outcomes
        return [o for o in self.outcomes if o.spec.design == design]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outcomes": [o.to_dict() for o in self.outcomes],
            "summary": self.summary(),
        }


class CampaignRunner:
    """Fans scenario specs across a process pool and aggregates the metrics.

    Attributes:
        max_workers: pool size; ``None`` sizes the pool to the machine
            (capped by the campaign size), while 0 or 1 runs serially in
            process — useful for debugging and for determinism checks
            against a parallel run.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers cannot be negative")
        self.max_workers = max_workers

    def _pool_size(self, job_count: int) -> int:
        if self.max_workers is not None:
            return min(self.max_workers, job_count)
        return min(os.cpu_count() or 1, job_count)

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        keep_results: bool = False,
        trace_dir: Optional[Any] = None,
        telemetry_dir: Optional[Any] = None,
        progress: Optional[Any] = None,
    ) -> CampaignResult:
        """Fly every scenario and fold the outcomes, in spec order.

        A spec that raises does not abort the campaign: its outcome carries
        an error record (exception type, message, traceback and the failing
        spec's JSON) and the aggregates are computed over the missions that
        completed.

        Args:
            specs: the campaign's scenarios; names should be unique.
            keep_results: also return each mission's full
                :class:`MissionResult` (traces, ledger, environment) on the
                outcome — heavier to transfer, needed by trace-level figures.
            trace_dir: when given, every worker streams its mission's
                structured trace to ``<trace_dir>/<spec name>.jsonl`` (one
                decision record per decision plus the mission record).  The
                directory is swept of stale ``*.jsonl`` files first, so
                after the campaign it holds exactly this campaign's traces;
                the files depend only on the specs, so serial and parallel
                runs of the same campaign produce byte-identical traces.
            telemetry_dir: when given, workers emit heartbeat/progress
                records (spec, status, epoch, wall elapsed, rss) which the
                parent appends to ``<telemetry_dir>/heartbeats.jsonl``.
                ``None`` (the default) disables telemetry entirely — no
                queue, no emitters, no extra work in the workers.
            progress: optional callable invoked in the parent with each
                heartbeat dictionary as it arrives (live progress lines).
                Supplying only ``progress`` enables telemetry without
                writing a file.
        """
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scenario names within a campaign must be unique")
        if trace_dir is not None:
            from repro.analysis.io import clear_traces, trace_path

            stems = [trace_path(trace_dir, name).name for name in names]
            if len(set(stems)) != len(stems):
                # Distinct names can collide once path separators are
                # flattened ("a/b" and "a_b" share a trace file).
                raise ValueError(
                    "scenario names map to colliding trace files; rename the "
                    "specs so their sanitised names are unique"
                )
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            clear_traces(trace_dir)
        telemetry = telemetry_dir is not None or progress is not None
        payloads = [
            {
                "spec": spec.to_dict(),
                "keep_results": keep_results,
                "trace_dir": str(trace_dir) if trace_dir is not None else None,
                "telemetry": telemetry,
            }
            for spec in specs
        ]
        workers = self._pool_size(len(payloads))
        heartbeats: List[Dict[str, Any]] = []
        if workers <= 1 or len(payloads) <= 1:
            rows = self._run_serial(payloads, telemetry, progress, heartbeats)
        else:
            rows = self._run_pool(
                payloads, workers, telemetry, progress, heartbeats
            )

        if telemetry_dir is not None and heartbeats:
            from repro.obs.heartbeat import HEARTBEAT_FILE, write_heartbeats

            write_heartbeats(
                heartbeats, Path(telemetry_dir) / HEARTBEAT_FILE
            )

        outcomes = [
            ScenarioOutcome(
                spec=spec,
                metrics=row.get("metrics"),
                result=row.get("result"),
                error=row.get("error"),
            )
            for spec, row in zip(specs, rows)
        ]
        return CampaignResult(
            outcomes=outcomes,
            trace_dir=str(trace_dir) if trace_dir is not None else None,
        )

    @staticmethod
    def _run_serial(
        payloads: List[Dict[str, Any]],
        telemetry: bool,
        progress: Optional[Any],
        heartbeats: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run every payload inline, with an in-process heartbeat sink."""
        global _worker_telemetry_sink
        if not telemetry:
            return [_run_payload(payload) for payload in payloads]
        sink = _InlineSink(heartbeats, progress)
        previous = _worker_telemetry_sink
        _worker_telemetry_sink = sink
        try:
            return [_run_payload(payload) for payload in payloads]
        finally:
            _worker_telemetry_sink = previous

    def _run_pool(
        self,
        payloads: List[Dict[str, Any]],
        workers: int,
        telemetry: bool,
        progress: Optional[Any],
        heartbeats: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Fan payloads across a pool, draining heartbeats while it runs."""
        # The platform-default start method: fork on Linux, spawn on
        # macOS/Windows (forcing fork there crashes under framework
        # threads).  Spawn works because workers receive plain
        # dictionaries, the worker function is module-level and the
        # parent's sys.path is propagated to the children.
        context = multiprocessing.get_context()
        if not telemetry:
            with context.Pool(processes=workers) as pool:
                return pool.map(_run_payload, payloads)
        # A manager queue (not a raw mp.Queue) because it survives pickling
        # into pool initializers under every start method.
        with multiprocessing.Manager() as manager:
            queue = manager.Queue()
            with context.Pool(
                processes=workers,
                initializer=_telemetry_initializer,
                initargs=(queue,),
            ) as pool:
                pending = pool.map_async(_run_payload, payloads)
                while not pending.ready():
                    self._drain_queue(queue, heartbeats, progress, timeout=0.1)
                rows = pending.get()
            self._drain_queue(queue, heartbeats, progress, timeout=None)
        return rows

    @staticmethod
    def _drain_queue(
        queue: Any,
        heartbeats: List[Dict[str, Any]],
        progress: Optional[Any],
        timeout: Optional[float],
    ) -> None:
        """Move queued heartbeat dicts into ``heartbeats`` (and progress).

        ``timeout`` is the blocking budget for the *first* get; once the
        queue turns up empty the drain returns immediately.
        """
        import queue as _queue_mod

        block = timeout is not None
        while True:
            try:
                record = queue.get(block=block, timeout=timeout)
            except _queue_mod.Empty:
                return
            block = False
            heartbeats.append(record)
            if progress is not None:
                progress(record)


class _InlineSink:
    """Serial-campaign heartbeat sink: collect + forward to the progress hook."""

    def __init__(
        self, collected: List[Dict[str, Any]], progress: Optional[Any]
    ) -> None:
        self._collected = collected
        self._progress = progress

    def put(self, record: Dict[str, Any]) -> None:
        self._collected.append(record)
        if self._progress is not None:
            self._progress(record)
