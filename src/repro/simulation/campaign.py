"""Campaigns: many scenarios, one worker fleet, one aggregated result.

The paper's evaluation flies 27 environments per design; the ROADMAP's north
star is "as many scenarios as you can imagine".  A :class:`CampaignRunner`
fans a list of :class:`~repro.simulation.scenario.ScenarioSpec`s across
worker processes and folds the per-mission metrics into a
:class:`CampaignResult`.  Three execution modes share the one ``run()``
API (selected by ``mode=`` or the ``REPRO_CAMPAIGN_MODE`` environment
variable):

* ``serial`` — every spec inline in this process (debugging, determinism
  checks);
* ``sync`` — a ``multiprocessing.Pool.map`` barrier, the synchronous
  fan-out/fan-in parallelism GenTen-style sweep drivers use (the default);
* ``async`` — persistent work-stealing workers pulling specs from a shared
  queue and streaming rows back as they finish
  (:mod:`repro.simulation.async_runner`), with per-spec wall-clock
  timeouts, bounded retry for specs whose worker died, and poisoned-spec
  exclusion.

Determinism: specs carry their own seeds, workers receive plain dictionaries
(no shared state), and results are collected in spec order regardless of
which worker finishes first, so a campaign's aggregate — and every per-spec
JSONL trace — is identical whichever mode runs it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.mission import MissionResult
from repro.simulation.scenario import ScenarioSpec


#: The execution modes :class:`CampaignRunner` understands.
CAMPAIGN_MODES = ("serial", "sync", "async")

#: Environment variable consulted when no explicit ``mode=`` is given.
CAMPAIGN_MODE_ENV = "REPRO_CAMPAIGN_MODE"


def _error_record(spec_dict: Dict[str, Any], exc: BaseException) -> Dict[str, str]:
    """The per-spec failure description shipped back to the campaign parent."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": _traceback.format_exc(),
        "spec_json": json.dumps(spec_dict, sort_keys=True),
    }


def write_error_trace(
    trace_dir: Any, spec_dict: Dict[str, Any], error: Dict[str, str]
) -> None:
    """Replace a spec's trace file with a single error mission record.

    Workers write their own error records when the spec *raises*; this is
    the parent-side twin for specs whose worker never got to — crashed
    processes and killed-on-timeout workers leave a partial (or absent)
    trace file, which this overwrites so the report still shows the spec in
    its partial-failures section.
    """
    from repro.analysis.io import TraceWriter, trace_path
    from repro.analysis.trace import MissionRecord

    environment = dict(spec_dict.get("environment", {}))
    with TraceWriter(trace_path(trace_dir, str(spec_dict.get("name", "unnamed")))) as writer:
        writer.write(
            MissionRecord(
                spec_name=spec_dict.get("name", "?"),
                design=spec_dict.get("design", "?"),
                seed=int(environment.get("seed", 0)),
                environment=environment,
                metrics={},
                error=error,
                spec=spec_dict,
            )
        )


def _row_from_trace(path: Any, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a worker result row from a completed spec's trace file.

    ``--resume`` skips specs whose traces pass
    :func:`repro.analysis.io.is_complete_trace`; their outcomes are
    reconstructed from the mission record already on disk instead of being
    re-flown, so the aggregate still covers every spec in spec order.
    """
    from repro.analysis.io import TraceReader

    mission = None
    for record in TraceReader(path):
        mission = record
    # The probe guaranteed the file ends with an error-free MissionRecord.
    return {"spec": spec_dict, "metrics": dict(mission.metrics)}


#: Worker-side heartbeat sink.  ``None`` (the default) means telemetry is
#: off and the worker touches none of the heartbeat code.  Pool workers get
#: theirs installed by :func:`_telemetry_initializer`; serial campaigns set
#: it around the inline loop.
_worker_telemetry_sink: Optional[Any] = None


def _telemetry_initializer(queue: Any) -> None:
    """Pool initializer: point this worker's heartbeats at the parent queue."""
    global _worker_telemetry_sink
    _worker_telemetry_sink = queue


#: Queue marker the sync pool's completion callback emits so the parent's
#: heartbeat drain can block on the queue instead of busy-polling the map.
_DRAIN_SENTINEL = {"__campaign__": "drain-stop"}


def _run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: fly one scenario described as plain data.

    Runs in a pool worker (or inline for serial campaigns); everything that
    crosses the process boundary is a dictionary, so no live object graph is
    pickled.  When the caller asked to keep full results, the heavyweight
    pipeline (bus, executor, node callbacks) is stripped first.

    A spec that raises does not kill the campaign: the worker returns an
    ``error`` row carrying the exception, its traceback and the failing
    spec's JSON, so campaign reports can show partial failures.  When the
    payload names a ``trace_dir``, the mission streams one JSONL trace file
    (decision records plus the final mission record — or an error record for
    a failed spec) into it.
    """
    spec_dict = payload["spec"]
    row: Dict[str, Any] = {"spec": spec_dict}
    writer = None
    recorder = None
    emitter = None
    sink = _worker_telemetry_sink if payload.get("telemetry") else None
    try:
        # The writer is opened before the spec is parsed (from the raw dict's
        # name) so that even a spec that fails to *parse* leaves an error
        # record in the trace stream; imports are lazy so workers without
        # tracing never load the analysis package.
        if payload.get("trace_dir"):
            from repro.analysis.io import TraceWriter, trace_path

            writer = TraceWriter(
                trace_path(payload["trace_dir"], str(spec_dict.get("name", "unnamed")))
            )
        if sink is not None:
            # Lazy import for the same reason as the analysis layer: workers
            # without telemetry never load the obs package.
            from repro.obs.heartbeat import HeartbeatEmitter

            emitter = HeartbeatEmitter(str(spec_dict.get("name", "unnamed")), sink)
            emitter.emit("start")
        spec = ScenarioSpec.from_dict(spec_dict)
        if writer is not None:
            from repro.analysis.recorder import TraceRecorder

            recorder = TraceRecorder(writer=writer, spec=spec, keep_records=False)
        # taps is only passed when telemetry is live, so campaigns without
        # telemetry exercise exactly the pre-obs call (and keep working with
        # callers that stub ScenarioSpec.run with the old signature).
        if emitter is not None:
            result = spec.run(recorder=recorder, taps=(emitter,))
        else:
            result = spec.run(recorder=recorder)
        row["metrics"] = result.metrics.as_dict()
        if payload.get("keep_results"):
            result.pipeline = None
            # Fleet results additionally carry one MissionResult per drone,
            # each with its own live pipeline to strip.
            for drone_result in getattr(result, "drones", ()):  # FleetResult
                drone_result.pipeline = None
            row["result"] = result
        if emitter is not None:
            emitter.emit("done")
    except Exception as exc:  # noqa: BLE001 - the whole point is to surface it
        error = _error_record(spec_dict, exc)
        row["error"] = error
        if emitter is not None:
            emitter.emit("error", error=f"{type(exc).__name__}: {exc}")
        if writer is not None:
            from repro.analysis.trace import MissionRecord

            environment = dict(spec_dict.get("environment", {}))
            writer.write(
                MissionRecord(
                    spec_name=spec_dict.get("name", "?"),
                    design=spec_dict.get("design", "?"),
                    seed=int(environment.get("seed", 0)),
                    environment=environment,
                    metrics={},
                    error=error,
                    spec=spec_dict,
                )
            )
    finally:
        if writer is not None:
            writer.close()
    return row


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """One scenario's spec and what its mission produced.

    Attributes:
        spec: the scenario that was flown.
        metrics: the mission's flat metric dictionary (times in seconds,
            distances in metres, energy in kilojoules); ``None`` when the
            spec errored instead of flying.
        result: the full :class:`~repro.simulation.mission.MissionResult`
            when the campaign was run with ``keep_results=True``.
        error: ``None`` on success; otherwise the per-spec failure record
            (``type`` / ``message`` / ``traceback`` / ``spec_json``).
    """

    spec: ScenarioSpec
    metrics: Optional[Dict[str, float]]
    result: Optional[MissionResult] = None
    error: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        """True when the mission ran to completion (possibly unsuccessfully)."""
        return self.error is None

    @property
    def success(self) -> bool:
        """True when the drone reached the goal without colliding."""
        return self.ok and bool((self.metrics or {}).get("success"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics) if self.metrics is not None else None,
            "error": dict(self.error) if self.error is not None else None,
        }


@dataclass
class CampaignResult:
    """Aggregated outcomes of one campaign, in spec order.

    Attributes:
        outcomes: one :class:`ScenarioOutcome` per spec, in spec order
            (including error outcomes for specs that failed to run).
        trace_dir: the directory the campaign streamed JSONL traces into,
            when it was run with one.
    """

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    trace_dir: Optional[str] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def by_design(self) -> Dict[str, List[ScenarioOutcome]]:
        """Outcomes grouped by runtime design, preserving spec order."""
        groups: Dict[str, List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.spec.design, []).append(outcome)
        return groups

    def failures(self) -> List[ScenarioOutcome]:
        """Outcomes whose spec raised instead of flying, in spec order."""
        return [o for o in self.outcomes if not o.ok]

    def success_rate(self, design: Optional[str] = None) -> float:
        """Fraction of specs that reached the goal without colliding.

        Failed specs count against the rate: a campaign where half the specs
        crashed did not succeed on those specs.
        """
        selected = self._select(design)
        if not selected:
            return 0.0
        return sum(1 for o in selected if o.success) / len(selected)

    def mean_metric(self, key: str, design: Optional[str] = None) -> float:
        """Mean of one mission metric over the missions that carry it.

        Campaigns can mix outcomes with heterogeneous metric dictionaries
        (a fleet-only metric is absent from single-drone missions), so the
        mean is taken over exactly the outcomes where the key is present —
        the honest denominator, exposed as :meth:`metric_count` — rather
        than raising ``KeyError`` on the first outcome without it.  Returns
        0.0 when no outcome carries the key.
        """
        values = [
            (o.metrics or {})[key]
            for o in self._select(design)
            if o.ok and key in (o.metrics or {})
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def metric_count(self, key: str, design: Optional[str] = None) -> int:
        """How many outcomes :meth:`mean_metric` averaged for this key."""
        return sum(
            1 for o in self._select(design) if o.ok and key in (o.metrics or {})
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-design mission-level summary (the Figure 7 quantities)."""
        table: Dict[str, Dict[str, float]] = {}
        for design, outcomes in self.by_design().items():
            table[design] = {
                "missions": float(len(outcomes)),
                "failed": float(sum(1 for o in outcomes if not o.ok)),
                "success_rate": self.success_rate(design),
                "mean_mission_time_s": self.mean_metric("mission_time_s", design),
                "mean_velocity_mps": self.mean_metric("mean_velocity_mps", design),
                "mean_energy_kj": self.mean_metric("energy_kj", design),
                "mean_cpu_utilization": self.mean_metric(
                    "mean_cpu_utilization", design
                ),
                "mean_median_latency_s": self.mean_metric(
                    "median_latency_s", design
                ),
            }
        return table

    def _select(self, design: Optional[str]) -> List[ScenarioOutcome]:
        if design is None:
            return self.outcomes
        return [o for o in self.outcomes if o.spec.design == design]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outcomes": [o.to_dict() for o in self.outcomes],
            "summary": self.summary(),
        }


class CampaignRunner:
    """Fans scenario specs across worker processes and aggregates the metrics.

    Attributes:
        max_workers: worker count; ``None`` sizes the fleet to the machine
            (capped by the campaign size), while 0 or 1 runs serially in
            process — useful for debugging and for determinism checks
            against a parallel run.
        mode: one of :data:`CAMPAIGN_MODES` — ``serial`` forces the inline
            path, ``sync`` is the classic ``Pool.map`` barrier, ``async``
            is the persistent work-stealing engine
            (:mod:`repro.simulation.async_runner`).  ``None`` reads
            ``REPRO_CAMPAIGN_MODE`` and falls back to ``sync``.
        spec_timeout_s: async mode only — wall-clock budget per spec
            attempt; a worker over budget is killed and the spec retried.
            ``None`` (the default) disables the timeout.
        max_attempts: async mode only — dispatch attempts per spec before
            it is excluded as poisoned and surfaced as an error outcome.
        retry_backoff_s: async mode only — base of the exponential backoff
            (``base * 2**(attempt-1)``) between attempts of one spec.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: Optional[str] = None,
        spec_timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.1,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers cannot be negative")
        if mode is None:
            mode = os.environ.get(CAMPAIGN_MODE_ENV) or "sync"
        mode = mode.lower()
        if mode not in CAMPAIGN_MODES:
            raise ValueError(
                f"unknown campaign mode {mode!r}; choose from {CAMPAIGN_MODES}"
            )
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise ValueError("spec_timeout_s must be positive (or None)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s cannot be negative")
        self.max_workers = max_workers
        self.mode = mode
        self.spec_timeout_s = spec_timeout_s
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s

    def _pool_size(self, job_count: int) -> int:
        if self.max_workers is not None:
            return min(self.max_workers, job_count)
        return min(os.cpu_count() or 1, job_count)

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        keep_results: bool = False,
        trace_dir: Optional[Any] = None,
        telemetry_dir: Optional[Any] = None,
        progress: Optional[Any] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Fly every scenario and fold the outcomes, in spec order.

        A spec that raises does not abort the campaign: its outcome carries
        an error record (exception type, message, traceback and the failing
        spec's JSON) and the aggregates are computed over the missions that
        completed.

        Args:
            specs: the campaign's scenarios; names should be unique.
            keep_results: also return each mission's full
                :class:`MissionResult` (traces, ledger, environment) on the
                outcome — heavier to transfer, needed by trace-level figures.
            trace_dir: when given, every worker streams its mission's
                structured trace to ``<trace_dir>/<spec name>.jsonl`` (one
                decision record per decision plus the mission record).  The
                directory is swept of stale ``*.jsonl`` files first, so
                after the campaign it holds exactly this campaign's traces;
                the files depend only on the specs, so serial and parallel
                runs of the same campaign produce byte-identical traces.
            telemetry_dir: when given, workers emit heartbeat/progress
                records (spec, status, epoch, wall elapsed, rss) which the
                parent appends to ``<telemetry_dir>/heartbeats.jsonl``.
                ``None`` (the default) disables telemetry entirely — no
                queue, no emitters, no extra work in the workers.
            progress: optional callable invoked in the parent with each
                heartbeat dictionary as it arrives (live progress lines).
                Supplying only ``progress`` enables telemetry without
                writing a file.
            resume: skip every spec whose trace file already exists in
                ``trace_dir`` and parses cleanly to a completed mission
                (:func:`repro.analysis.io.is_complete_trace`); their
                outcomes are rebuilt from the traces on disk, only the
                remaining specs are flown, and stale files belonging to no
                completed spec are still swept.  Requires ``trace_dir``;
                skipped specs never carry a live ``result`` even under
                ``keep_results=True``.
        """
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scenario names within a campaign must be unique")
        if resume and trace_dir is None:
            raise ValueError("resume=True requires a trace_dir")
        spec_dicts = [spec.to_dict() for spec in specs]
        resumed_rows: Dict[int, Dict[str, Any]] = {}
        if trace_dir is not None:
            from repro.analysis.io import (
                clear_traces,
                is_complete_trace,
                list_trace_files,
                trace_path,
            )

            paths = [trace_path(trace_dir, name) for name in names]
            stems = [path.name for path in paths]
            if len(set(stems)) != len(stems):
                # Distinct names can collide once path separators are
                # flattened ("a/b" and "a_b" share a trace file).
                raise ValueError(
                    "scenario names map to colliding trace files; rename the "
                    "specs so their sanitised names are unique"
                )
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            if resume:
                for index, path in enumerate(paths):
                    if is_complete_trace(path):
                        resumed_rows[index] = _row_from_trace(
                            path, spec_dicts[index]
                        )
                kept = {paths[index] for index in resumed_rows}
                # Sweep everything that is not a completed trace of this
                # campaign: other campaigns' files, partial traces, error
                # records — exactly what clear_traces does on a cold run.
                for stale in list_trace_files(trace_dir):
                    if stale not in kept:
                        stale.unlink()
            else:
                clear_traces(trace_dir)
        telemetry = telemetry_dir is not None or progress is not None
        if telemetry_dir is not None:
            from repro.obs.heartbeat import HEARTBEAT_FILE, clear_heartbeats

            # write_heartbeats appends; without this sweep a campaign re-run
            # into the same telemetry_dir would fold the previous run's
            # records into runtime_summary.
            clear_heartbeats(Path(telemetry_dir) / HEARTBEAT_FILE)
        pending = [i for i in range(len(specs)) if i not in resumed_rows]
        payloads = [
            {
                "spec": spec_dicts[i],
                "keep_results": keep_results,
                "trace_dir": str(trace_dir) if trace_dir is not None else None,
                "telemetry": telemetry,
            }
            for i in pending
        ]
        workers = 1 if self.mode == "serial" else self._pool_size(len(payloads))
        heartbeats: List[Dict[str, Any]] = []
        if workers <= 1 or len(payloads) <= 1:
            flown = self._run_serial(payloads, telemetry, progress, heartbeats)
        elif self.mode == "async":
            flown = self._run_async(
                payloads, workers, telemetry, progress, heartbeats
            )
        else:
            flown = self._run_pool(
                payloads, workers, telemetry, progress, heartbeats
            )

        if telemetry_dir is not None and heartbeats:
            from repro.obs.heartbeat import HEARTBEAT_FILE, write_heartbeats

            write_heartbeats(
                heartbeats, Path(telemetry_dir) / HEARTBEAT_FILE
            )

        rows = dict(resumed_rows)
        rows.update(zip(pending, flown))
        outcomes = [
            ScenarioOutcome(
                spec=spec,
                metrics=rows[i].get("metrics"),
                result=rows[i].get("result"),
                error=rows[i].get("error"),
            )
            for i, spec in enumerate(specs)
        ]
        return CampaignResult(
            outcomes=outcomes,
            trace_dir=str(trace_dir) if trace_dir is not None else None,
        )

    @staticmethod
    def _run_serial(
        payloads: List[Dict[str, Any]],
        telemetry: bool,
        progress: Optional[Any],
        heartbeats: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run every payload inline, with an in-process heartbeat sink."""
        global _worker_telemetry_sink
        if not telemetry:
            return [_run_payload(payload) for payload in payloads]
        sink = _InlineSink(heartbeats, progress)
        previous = _worker_telemetry_sink
        _worker_telemetry_sink = sink
        try:
            return [_run_payload(payload) for payload in payloads]
        finally:
            _worker_telemetry_sink = previous

    def _run_pool(
        self,
        payloads: List[Dict[str, Any]],
        workers: int,
        telemetry: bool,
        progress: Optional[Any],
        heartbeats: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Fan payloads across a pool, draining heartbeats while it runs."""
        # The platform-default start method: fork on Linux, spawn on
        # macOS/Windows (forcing fork there crashes under framework
        # threads).  Spawn works because workers receive plain
        # dictionaries, the worker function is module-level and the
        # parent's sys.path is propagated to the children.
        context = multiprocessing.get_context()
        if not telemetry:
            with context.Pool(processes=workers) as pool:
                return pool.map(_run_payload, payloads)
        # A manager queue (not a raw mp.Queue) because it survives pickling
        # into pool initializers under every start method.
        with multiprocessing.Manager() as manager:
            queue = manager.Queue()
            with context.Pool(
                processes=workers,
                initializer=_telemetry_initializer,
                initargs=(queue,),
            ) as pool:
                # The map's completion callback drops a sentinel onto the
                # heartbeat queue, so the parent blocks on one queue instead
                # of busy-polling pending.ready() every 100 ms; the 1 s
                # fallback timeout only matters if the callback is lost
                # (e.g. the pool broke before it could fire).
                pending = pool.map_async(
                    _run_payload,
                    payloads,
                    callback=lambda _: queue.put(_DRAIN_SENTINEL),
                    error_callback=lambda _: queue.put(_DRAIN_SENTINEL),
                )
                import queue as _queue_mod

                while not pending.ready():
                    try:
                        record = queue.get(block=True, timeout=1.0)
                    except _queue_mod.Empty:
                        continue
                    if record == _DRAIN_SENTINEL:
                        break
                    heartbeats.append(record)
                    if progress is not None:
                        progress(record)
                rows = pending.get()
            self._drain_queue(queue, heartbeats, progress, timeout=None)
        return rows

    def _run_async(
        self,
        payloads: List[Dict[str, Any]],
        workers: int,
        telemetry: bool,
        progress: Optional[Any],
        heartbeats: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run payloads on the persistent work-stealing engine."""
        from repro.simulation.async_runner import AsyncCampaignEngine

        engine = AsyncCampaignEngine(
            workers,
            spec_timeout_s=self.spec_timeout_s,
            max_attempts=self.max_attempts,
            retry_backoff_s=self.retry_backoff_s,
        )
        return engine.run(
            payloads, telemetry=telemetry, progress=progress, heartbeats=heartbeats
        )

    @staticmethod
    def _drain_queue(
        queue: Any,
        heartbeats: List[Dict[str, Any]],
        progress: Optional[Any],
        timeout: Optional[float],
    ) -> None:
        """Move queued heartbeat dicts into ``heartbeats`` (and progress).

        ``timeout`` is the blocking budget for the *first* get; once the
        queue turns up empty the drain returns immediately.
        """
        import queue as _queue_mod

        block = timeout is not None
        while True:
            try:
                record = queue.get(block=block, timeout=timeout)
            except _queue_mod.Empty:
                return
            block = False
            if record == _DRAIN_SENTINEL:
                # The map's completion callback can race the ready() check;
                # a leftover sentinel is drain plumbing, not telemetry.
                continue
            heartbeats.append(record)
            if progress is not None:
                progress(record)


class _InlineSink:
    """Serial-campaign heartbeat sink: collect + forward to the progress hook."""

    def __init__(
        self, collected: List[Dict[str, Any]], progress: Optional[Any]
    ) -> None:
        self._collected = collected
        self._progress = progress

    def put(self, record: Dict[str, Any]) -> None:
        self._collected.append(record)
        if self._progress is not None:
            self._progress(record)
