"""Campaigns: many scenarios, one process pool, one aggregated result.

The paper's evaluation flies 27 environments per design; the ROADMAP's north
star is "as many scenarios as you can imagine".  A :class:`CampaignRunner`
fans a list of :class:`~repro.simulation.scenario.ScenarioSpec`s across a
``multiprocessing`` pool — one worker per mission, following the synchronous
fan-out/fan-in parallelism GenTen-style sweep drivers use — and folds the
per-mission metrics into a :class:`CampaignResult`.

Determinism: specs carry their own seeds, workers receive plain dictionaries
(no shared state), and results are collected in spec order regardless of
which worker finishes first, so a campaign's aggregate is identical whether
it runs serially or across any number of workers.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.mission import MissionResult
from repro.simulation.scenario import ScenarioSpec


def _run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: fly one scenario described as plain data.

    Runs in a pool worker (or inline for serial campaigns); everything that
    crosses the process boundary is a dictionary, so no live object graph is
    pickled.  When the caller asked to keep full results, the heavyweight
    pipeline (bus, executor, node callbacks) is stripped first.
    """
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = spec.run()
    row: Dict[str, Any] = {
        "spec": payload["spec"],
        "metrics": result.metrics.as_dict(),
    }
    if payload.get("keep_results"):
        result.pipeline = None
        row["result"] = result
    return row


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """One scenario's spec and the metrics its mission produced."""

    spec: ScenarioSpec
    metrics: Dict[str, float]
    result: Optional[MissionResult] = None

    @property
    def success(self) -> bool:
        return bool(self.metrics.get("success"))

    def to_dict(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "metrics": dict(self.metrics)}


@dataclass
class CampaignResult:
    """Aggregated outcomes of one campaign, in spec order."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def by_design(self) -> Dict[str, List[ScenarioOutcome]]:
        """Outcomes grouped by runtime design, preserving spec order."""
        groups: Dict[str, List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.spec.design, []).append(outcome)
        return groups

    def success_rate(self, design: Optional[str] = None) -> float:
        """Fraction of missions that reached the goal without colliding."""
        selected = self._select(design)
        if not selected:
            return 0.0
        return sum(1 for o in selected if o.success) / len(selected)

    def mean_metric(self, key: str, design: Optional[str] = None) -> float:
        """Mean of one mission metric over the (optionally filtered) campaign."""
        selected = self._select(design)
        if not selected:
            return 0.0
        return sum(o.metrics[key] for o in selected) / len(selected)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-design mission-level summary (the Figure 7 quantities)."""
        table: Dict[str, Dict[str, float]] = {}
        for design, outcomes in self.by_design().items():
            table[design] = {
                "missions": float(len(outcomes)),
                "success_rate": self.success_rate(design),
                "mean_mission_time_s": self.mean_metric("mission_time_s", design),
                "mean_velocity_mps": self.mean_metric("mean_velocity_mps", design),
                "mean_energy_kj": self.mean_metric("energy_kj", design),
                "mean_cpu_utilization": self.mean_metric(
                    "mean_cpu_utilization", design
                ),
                "mean_median_latency_s": self.mean_metric(
                    "median_latency_s", design
                ),
            }
        return table

    def _select(self, design: Optional[str]) -> List[ScenarioOutcome]:
        if design is None:
            return self.outcomes
        return [o for o in self.outcomes if o.spec.design == design]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outcomes": [o.to_dict() for o in self.outcomes],
            "summary": self.summary(),
        }


class CampaignRunner:
    """Fans scenario specs across a process pool and aggregates the metrics.

    Attributes:
        max_workers: pool size; ``None`` sizes the pool to the machine
            (capped by the campaign size), while 0 or 1 runs serially in
            process — useful for debugging and for determinism checks
            against a parallel run.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers cannot be negative")
        self.max_workers = max_workers

    def _pool_size(self, job_count: int) -> int:
        if self.max_workers is not None:
            return min(self.max_workers, job_count)
        return min(os.cpu_count() or 1, job_count)

    def run(
        self, specs: Sequence[ScenarioSpec], keep_results: bool = False
    ) -> CampaignResult:
        """Fly every scenario and fold the outcomes, in spec order.

        Args:
            specs: the campaign's scenarios; names should be unique.
            keep_results: also return each mission's full
                :class:`MissionResult` (traces, ledger, environment) on the
                outcome — heavier to transfer, needed by trace-level figures.
        """
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scenario names within a campaign must be unique")
        payloads = [
            {"spec": spec.to_dict(), "keep_results": keep_results} for spec in specs
        ]
        workers = self._pool_size(len(payloads))
        if workers <= 1 or len(payloads) <= 1:
            rows = [_run_payload(payload) for payload in payloads]
        else:
            # The platform-default start method: fork on Linux, spawn on
            # macOS/Windows (forcing fork there crashes under framework
            # threads).  Spawn works because workers receive plain
            # dictionaries, the worker function is module-level and the
            # parent's sys.path is propagated to the children.
            context = multiprocessing.get_context()
            with context.Pool(processes=workers) as pool:
                rows = pool.map(_run_payload, payloads)

        outcomes = [
            ScenarioOutcome(
                spec=spec,
                metrics=row["metrics"],
                result=row.get("result"),
            )
            for spec, row in zip(specs, rows)
        ]
        return CampaignResult(outcomes=outcomes)
