"""The scenario orchestrator: resolves fault windows and answers per-decision queries.

:class:`FaultOrchestrator` is the engine between the declarative
:class:`~repro.simulation.faults.FaultSet` (data: which faults, which
windows) and the pipeline nodes (mechanism: what changes this decision).
It is built once per mission from the scenario's fault set and seed:

* legacy always-on fields (``sensor_dropout`` / ``camera_degradation``)
  become ``[0, ∞)`` windows, preserving their original semantics exactly;
* each :class:`~repro.simulation.faults.FaultSchedule` entry is resolved
  against the mission seed — jitter applied deterministically — into a
  concrete half-open ``[start, end)`` decision window.

Nodes then ask one question per decision through a layer-specific query
(:meth:`sensor_dropped`, :meth:`camera_resolution`, :meth:`budget_scale`,
:meth:`apply_stage_latencies`, :meth:`frozen_epoch`).  Every query is an
exact no-op when no fault's window covers the decision, so a fault-free
mission takes the same code path — and produces byte-identical traces —
whether or not the orchestrator exists.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.middleware.latency import is_comm_stage
from repro.simulation.faults import Fault, FaultSet

__all__ = ["FaultOrchestrator", "FaultWindow"]


class FaultWindow:
    """One resolved fault window: a fault plus its ``[start, end)`` bounds."""

    __slots__ = ("fault", "start", "end")

    def __init__(self, fault: Fault, start: int, end: Optional[int]) -> None:
        self.fault = fault
        self.start = start
        self.end = end

    def covers(self, index: int) -> bool:
        """True when ``index`` falls inside the window."""
        if index < self.start:
            return False
        return self.end is None or index < self.end

    def active_for(self, index: int) -> int:
        """Decisions elapsed since activation (0 on the activation decision)."""
        return index - self.start


class FaultOrchestrator:
    """Per-mission fault engine: resolved windows + per-decision queries.

    Args:
        faults: the scenario's fault set (``None`` ≡ empty).
        seed: the mission seed; schedule jitter resolves deterministically
            from it, so serial and multiprocessing campaign runs agree.
    """

    def __init__(self, faults: Optional[FaultSet], seed: int = 0) -> None:
        self.faults = faults if faults is not None else FaultSet()
        self.seed = seed
        self._windows: List[FaultWindow] = []
        if self.faults.sensor_dropout is not None:
            self._windows.append(FaultWindow(self.faults.sensor_dropout, 0, None))
        if self.faults.camera_degradation is not None:
            self._windows.append(FaultWindow(self.faults.camera_degradation, 0, None))
        for ordinal, entry in enumerate(self.faults.schedule):
            start, end = entry.resolve(seed, ordinal)
            self._windows.append(FaultWindow(entry.fault, start, end))
        #: False for the no-fault case: callers skip their fault branch
        #: entirely, keeping the nominal path untouched.
        self.enabled = bool(self._windows)

    @property
    def windows(self) -> Tuple[FaultWindow, ...]:
        """The resolved windows, in fault-set order."""
        return tuple(self._windows)

    def active(self, index: int) -> List[Tuple[Fault, int]]:
        """Every fault covering ``index``, as ``(fault, active_for)`` pairs."""
        return [
            (window.fault, window.active_for(index))
            for window in self._windows
            if window.covers(index)
        ]

    def active_fault_names(self, index: int) -> Tuple[str, ...]:
        """Sorted unique registry names of the faults active at ``index``."""
        return tuple(
            sorted(
                {
                    type(window.fault).fault_name
                    for window in self._windows
                    if window.covers(index)
                }
            )
        )

    # -- per-layer queries ----------------------------------------------
    def sensor_dropped(self, index: int) -> bool:
        """True when any active fault drops this decision's sensor frame."""
        return any(
            fault.sensor_dropped(index, active_for)
            for fault, active_for in self.active(index)
        )

    def camera_resolution(self, index: int) -> Optional[Tuple[int, int]]:
        """The degraded capture resolution, or ``None`` for nominal."""
        for fault, active_for in self.active(index):
            resolution = fault.camera_resolution(index, active_for)
            if resolution is not None:
                return resolution
        return None

    def budget_scale(self, index: int) -> float:
        """Product of every active fault's time-budget multiplier."""
        scale = 1.0
        for fault, active_for in self.active(index):
            scale *= fault.budget_scale(index, active_for)
        return scale

    def compute_factor(self, index: int) -> float:
        """Product of every active fault's compute-latency multiplier."""
        factor = 1.0
        for fault, active_for in self.active(index):
            factor *= fault.compute_factor(index, active_for)
        return factor

    def apply_stage_latencies(
        self, index: int, stage_latencies: Mapping[str, float]
    ) -> Dict[str, float]:
        """Fold the active faults into one decision's stage latencies.

        Comm stages pass through each active fault's
        :meth:`~repro.simulation.faults.Fault.comm_seconds` hook in window
        order; compute stages are multiplied by :meth:`compute_factor`.
        Returns the mapping unchanged (same object semantics: a fresh dict
        with identical float bits) when no fault covers the decision.
        """
        active = self.active(index)
        if not active:
            return dict(stage_latencies)
        factor = 1.0
        for fault, active_for in active:
            factor *= fault.compute_factor(index, active_for)
        adjusted: Dict[str, float] = {}
        for stage, seconds in stage_latencies.items():
            if is_comm_stage(stage):
                for fault, active_for in active:
                    seconds = fault.comm_seconds(stage, seconds, index, active_for)
                adjusted[stage] = seconds
            else:
                adjusted[stage] = seconds * factor if factor != 1.0 else seconds
        return adjusted

    def frozen_epoch(self, mover_name: str, index: int) -> Optional[int]:
        """The epoch a stuck mover is pinned to, or ``None`` when it moves.

        A frozen mover holds the position it had at its window's activation
        decision, so the pinned epoch is the earliest covering window's
        ``start``.
        """
        starts = [
            window.start
            for window in self._windows
            if window.covers(index) and window.fault.freezes_mover(mover_name)
        ]
        return min(starts) if starts else None
