"""The mission simulator — the decision-loop substitute for the paper's HIL setup.

:class:`MissionSimulator` flies one mission (package delivery or search &
rescue) through a generated environment under a given runtime (RoboRun or the
spatial-oblivious baseline) and returns the mission-level metrics plus the
per-decision traces the analysis layer turns into the paper's figures.

The simulator is a thin façade over the node-based decision pipeline
(:mod:`repro.simulation.pipeline`): it wires the six pipeline nodes —
sense, profile, governor, perception, planning, flight — over the middleware
bus, drives one sensor tick per decision, drains the executor until the
cascade completes, and owns only the mission-level policy: termination
(goal, collision, plan-failure and time limits), distance integration and
metric assembly.  Stage logic, latency charging and the comm hops all live
in the nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence

from repro.compute.costs import WorkloadCostModel
from repro.control.follower import PurePursuitFollower
from repro.core.governor import GovernorDecision
from repro.core.operators import OperatorSet
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.dynamics.drone import QuadrotorKinematics
from repro.dynamics.energy import EnergyModel
from repro.environment.generator import GeneratedEnvironment
from repro.middleware.latency import LatencyLedger
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloudKernel
from repro.planning.rrt_star import RRTStarConfig, RRTStarPlanner
from repro.planning.smoothing import PathSmoother, SmoothingConfig
from repro.sensors.rig import CameraRig
from repro.sensors.state_sensors import StateSensorSuite
from repro.simulation.faults import FaultSet
from repro.simulation.metrics import DecisionTrace, MissionMetrics
from repro.simulation.pipeline import DecisionPipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.recorder import TraceRecorder
    from repro.middleware.executor import Executor
    from repro.middleware.topic import TopicNamespace


class Runtime(Protocol):
    """The per-decision interface both designs implement."""

    name: str
    spatial_aware: bool

    def decide(
        self, profile: SpaceProfile, budget_scale: float = 1.0
    ) -> GovernorDecision:
        """Produce the policy, deadline and velocity cap for one decision.

        ``budget_scale`` multiplies the decision time budget before knobs are
        chosen — platform faults (power brownouts) shrink it below 1; the
        nominal path always passes 1.0 (and the pipeline only forwards a
        non-unit scale, so stubs with the narrow signature keep working on
        fault-free missions).
        """


@dataclass(frozen=True, slots=True)
class MissionConfig:
    """Simulation parameters for one mission.

    Attributes:
        sensor_period_s: minimum interval between decisions (fresh sensor data
            arrives at this rate), seconds.
        control_dt_s: integration step of the flight sub-loop, seconds.
        goal_tolerance_m: the mission succeeds once the drone is within this
            distance of the goal.
        collision_margin_m: the drone's collision radius against ground truth.
        planner_margin_m: obstacle inflation used by the planner's collision
            checks.
        planning_horizon_m: piece-wise planning targets a local goal at most
            this far ahead along the straight line to the mission goal.
        replan_remaining_m: replan when less than this much of the current
            trajectory remains ahead of the drone.
        replan_interval_decisions: periodic replanning cadence.
        block_check_distance_m: how far ahead the current trajectory is checked
            against the fresh map for blockage.
        flight_band_m: (low, high) altitude band the planner may use; keeps
            paths in the band real warehouse missions fly in instead of
            climbing over obstacles.
        emergency_brake_lookahead_s: the flight sub-loop brakes when the map
            shows an obstacle within this many seconds of flight ahead.
        max_decisions: hard cap on pipeline decisions (guards wall-clock time).
        max_mission_time_s: hard cap on simulated mission time.
        max_consecutive_plan_failures: abort after this many failed plans in a
            row.
        camera_width / camera_height: per-camera depth image resolution.
        camera_range_m: camera maximum sensing range.
        local_map_radius_m: radius of the map kept around the drone.
        planner_iterations: RRT* iteration cap per plan.
        planner_step_m: RRT* extension step.
        rng_seed: seed shared by the planner for reproducibility.
    """

    sensor_period_s: float = 0.5
    control_dt_s: float = 0.25
    goal_tolerance_m: float = 10.0
    collision_margin_m: float = 0.2
    planner_margin_m: float = 1.0
    planning_horizon_m: float = 70.0
    replan_remaining_m: float = 15.0
    replan_interval_decisions: int = 40
    block_check_distance_m: float = 25.0
    flight_band_m: tuple[float, float] = (2.0, 12.0)
    emergency_brake_lookahead_s: float = 0.8
    max_decisions: int = 3000
    max_mission_time_s: float = 6000.0
    max_consecutive_plan_failures: int = 8
    camera_width: int = 12
    camera_height: int = 9
    camera_range_m: float = 40.0
    local_map_radius_m: float = 120.0
    planner_iterations: int = 500
    planner_step_m: float = 4.0
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.sensor_period_s <= 0 or self.control_dt_s <= 0:
            raise ValueError("periods must be positive")
        if self.goal_tolerance_m <= 0:
            raise ValueError("goal tolerance must be positive")
        if self.max_decisions < 1:
            raise ValueError("max_decisions must be at least 1")
        if self.planning_horizon_m <= 0:
            raise ValueError("planning horizon must be positive")
        band = self.flight_band_m
        if not isinstance(band, Sequence) or len(band) != 2:
            raise ValueError("flight_band_m must be a (low, high) pair")
        low, high = float(band[0]), float(band[1])
        if not low < high:
            raise ValueError(
                f"flight_band_m must satisfy low < high, got ({band[0]}, {band[1]})"
            )
        # Normalise lists (e.g. from JSON round-trips) to a typed tuple.
        object.__setattr__(self, "flight_band_m", (low, high))


@dataclass
class MissionResult:
    """Everything one flown mission produced.

    Attributes:
        metrics: the mission-level summary (times in seconds, distances in
            metres, energy in joules).
        traces: one :class:`~repro.simulation.metrics.DecisionTrace` per
            decision, in decision order.
        ledger: the per-stage latency ledger (seconds per stage per
            decision).
        environment: the generated world the mission flew through.
        design: name of the runtime evaluated.
        pipeline: the live node graph (``None`` once a result has crossed a
            campaign process boundary).
    """

    metrics: MissionMetrics
    traces: List[DecisionTrace]
    ledger: LatencyLedger
    environment: GeneratedEnvironment
    design: str
    pipeline: Optional[DecisionPipeline] = None

    def trace_values(self, attribute: str) -> List[float]:
        """Convenience accessor: one scalar per decision (e.g. 'speed')."""
        return [getattr(trace, attribute) for trace in self.traces]


class MissionSimulator:
    """Runs one mission of one design through one generated environment.

    Wires the six-node decision pipeline over the simulator's kernels and
    models, drives one decision cascade per sensor tick
    (``sensor_period_s`` seconds apart, or slower when the decision latency
    exceeds the period) and assembles the
    :class:`~repro.simulation.metrics.MissionMetrics` at termination (goal
    reached, collision, plan-failure streak, or the time/decision caps).
    Repeated ``run()`` calls share the operator set, so the occupancy map
    persists across runs of the same simulator.
    """

    def __init__(
        self,
        environment: GeneratedEnvironment,
        runtime: Runtime,
        config: Optional[MissionConfig] = None,
        cost_model: Optional[WorkloadCostModel] = None,
        energy_model: Optional[EnergyModel] = None,
        kinematics: Optional[QuadrotorKinematics] = None,
        profilers: Optional[ProfilerSuite] = None,
        faults: Optional[FaultSet] = None,
    ) -> None:
        self.environment = environment
        self.runtime = runtime
        self.config = config or MissionConfig()
        self.cost_model = cost_model or WorkloadCostModel()
        self.energy_model = energy_model or EnergyModel()
        self.kinematics = kinematics or QuadrotorKinematics()
        self.profilers = profilers or ProfilerSuite(
            max_visibility=self.config.camera_range_m
        )
        self.faults = faults or FaultSet()

        cfg = self.config
        self.rig = CameraRig(
            width=cfg.camera_width,
            height=cfg.camera_height,
            max_range=cfg.camera_range_m,
        )
        self.sensors = StateSensorSuite.ideal()
        self.operators = OperatorSet(
            point_cloud_kernel=PointCloudKernel(),
            octree=OccupancyOctree(vox_min=0.3, levels=6),
            planner=RRTStarPlanner(
                RRTStarConfig(
                    max_iterations=cfg.planner_iterations,
                    step_size=cfg.planner_step_m,
                    collision_margin=cfg.planner_margin_m,
                    seed=cfg.rng_seed,
                )
            ),
            smoother=PathSmoother(SmoothingConfig()),
            planner_seed=cfg.rng_seed,
            local_map_radius=cfg.local_map_radius_m,
        )
        self.follower = PurePursuitFollower()

    # ------------------------------------------------------------------
    # Graph wiring
    # ------------------------------------------------------------------
    def build_pipeline(
        self,
        *,
        namespace: Optional["TopicNamespace"] = None,
        executor: Optional["Executor"] = None,
        drone_id: int = 0,
    ) -> DecisionPipeline:
        """Wire a fresh node graph over the simulator's kernels and models.

        Without arguments each call creates a new bus, executor, clock and
        accounting; the pipeline shares the simulator's operator set, so the
        occupancy map carries over between pipelines built by the same
        simulator (exactly as repeated ``run()`` calls shared it before the
        node refactor).  The fleet simulator passes a shared ``executor``
        plus a per-drone ``namespace``/``drone_id`` so N graphs coexist on
        one bus.
        """
        return DecisionPipeline(
            environment=self.environment,
            runtime=self.runtime,
            config=self.config,
            cost_model=self.cost_model,
            kinematics=self.kinematics,
            profilers=self.profilers,
            operators=self.operators,
            rig=self.rig,
            sensors=self.sensors,
            follower=self.follower,
            faults=self.faults,
            namespace=namespace,
            executor=executor,
            drone_id=drone_id,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        recorder: Optional["TraceRecorder"] = None,
        taps: Sequence = (),
    ) -> MissionResult:
        """Fly the mission and return its metrics and traces.

        Args:
            recorder: optional :class:`~repro.analysis.recorder.
                TraceRecorder`; when given it is attached to the pipeline as
                a passive topic tap and receives one structured record per
                decision plus the final mission record.  ``None`` (the
                default) adds no tracing work at all.
            taps: additional passive observers (``repro.obs`` taps such as
                :class:`~repro.obs.tap.ObsTap`), attached the same way.
                Empty (the default) adds no instrumentation work at all.
        """
        cfg = self.config
        env = self.environment
        pipeline = self.build_pipeline()
        if recorder is not None:
            pipeline.add_tap(recorder, energy_model=self.energy_model)
        for tap in taps:
            pipeline.add_tap(tap, energy_model=self.energy_model)
        clock = pipeline.clock

        distance_travelled = 0.0
        collided = False
        reached_goal = False

        for decision_index in range(cfg.max_decisions):
            if clock.now > cfg.max_mission_time_s:
                break

            outcome = pipeline.step(decision_index)
            distance_travelled += outcome.flown
            clock.advance(outcome.interval)

            if outcome.hit:
                collided = True
                break
            if outcome.state.position.distance_to(env.goal) <= cfg.goal_tolerance_m:
                reached_goal = True
                break
            if (
                pipeline.planning.consecutive_plan_failures
                >= cfg.max_consecutive_plan_failures
            ):
                break

        traces = pipeline.traces
        ledger = pipeline.ledger
        mission_time = clock.now
        mean_velocity = distance_travelled / mission_time if mission_time > 0 else 0.0
        energy = self.energy_model.mission_energy(
            flight_time_s=mission_time,
            mean_speed=mean_velocity,
            compute_busy_s=pipeline.cpu.total_busy_seconds(),
        )
        latencies = ledger.end_to_end_latencies()
        deadline_misses = sum(1 for t in traces if not t.deadline_met)
        metrics = MissionMetrics(
            design=self.runtime.name,
            success=reached_goal and not collided,
            collided=collided,
            mission_time_s=mission_time,
            distance_travelled_m=distance_travelled,
            mean_velocity_mps=mean_velocity,
            energy_j=energy,
            mean_cpu_utilization=pipeline.cpu.mean_utilization(),
            decision_count=len(traces),
            median_latency_s=ledger.median_latency(),
            max_latency_s=max(latencies) if latencies else 0.0,
            deadline_miss_rate=deadline_misses / len(traces) if traces else 0.0,
            replan_count=self.operators.plan_count,
        )
        if recorder is not None:
            recorder.on_mission_end(metrics)
        return MissionResult(
            metrics=metrics,
            traces=traces,
            ledger=ledger,
            environment=env,
            design=self.runtime.name,
            pipeline=pipeline,
        )
