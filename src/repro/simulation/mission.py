"""The mission simulator — the decision-loop substitute for the paper's HIL setup.

:class:`MissionSimulator` flies one mission (package delivery or search &
rescue) through a generated environment under a given runtime (RoboRun or the
spatial-oblivious baseline) and returns the mission-level metrics plus the
per-decision traces the analysis layer turns into the paper's figures.

The loop per decision:

1. **Sense** — the six-camera rig captures the ground-truth world; the state
   sensors report position and velocity.
2. **Profile** — the profiler suite extracts the Table I spatial features
   from the point cloud, the map, the trajectory and the state.
3. **Decide** — the runtime produces the knob policy, the decision deadline
   and the velocity cap (RoboRun runs its governor; the baseline returns its
   fixed design point).
4. **Enforce** — the operators run the perception and planning kernels under
   the policy; piece-wise planning runs only when needed (no trajectory, the
   current one is blocked or nearly consumed, or a periodic refresh).
5. **Charge compute** — the workload cost model converts the kernels' work
   into per-stage latencies, recorded in the latency ledger and charged
   against the simulated clock.
6. **Fly** — the drone follows its trajectory with a pure-pursuit follower at
   the allowed velocity for the duration of the decision, checked against the
   ground-truth world for collisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from repro.compute.costs import KernelWork, WorkloadCostModel
from repro.compute.utilization import CpuUtilizationTracker
from repro.control.follower import PurePursuitFollower
from repro.core.governor import GovernorDecision
from repro.core.operators import OperatorSet, merge_work
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.dynamics.drone import DroneState, QuadrotorKinematics
from repro.dynamics.energy import EnergyModel
from repro.environment.generator import GeneratedEnvironment
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.middleware.clock import SimClock
from repro.middleware.latency import LatencyLedger
from repro.perception.octomap import OccupancyOctree
from repro.perception.point_cloud import PointCloudKernel
from repro.planning.rrt_star import RRTStarConfig, RRTStarPlanner
from repro.planning.smoothing import PathSmoother, SmoothingConfig
from repro.planning.trajectory import Trajectory
from repro.sensors.rig import CameraRig
from repro.sensors.state_sensors import StateSensorSuite
from repro.simulation.metrics import DecisionTrace, MissionMetrics


class Runtime(Protocol):
    """The per-decision interface both designs implement."""

    name: str
    spatial_aware: bool

    def decide(self, profile: SpaceProfile) -> GovernorDecision:
        """Produce the policy, deadline and velocity cap for one decision."""


@dataclass(frozen=True, slots=True)
class MissionConfig:
    """Simulation parameters for one mission.

    Attributes:
        sensor_period_s: minimum interval between decisions (fresh sensor data
            arrives at this rate), seconds.
        control_dt_s: integration step of the flight sub-loop, seconds.
        goal_tolerance_m: the mission succeeds once the drone is within this
            distance of the goal.
        collision_margin_m: the drone's collision radius against ground truth.
        planner_margin_m: obstacle inflation used by the planner's collision
            checks.
        planning_horizon_m: piece-wise planning targets a local goal at most
            this far ahead along the straight line to the mission goal.
        replan_remaining_m: replan when less than this much of the current
            trajectory remains ahead of the drone.
        replan_interval_decisions: periodic replanning cadence.
        block_check_distance_m: how far ahead the current trajectory is checked
            against the fresh map for blockage.
        flight_band_m: (low, high) altitude band the planner may use; keeps
            paths in the band real warehouse missions fly in instead of
            climbing over obstacles.
        emergency_brake_lookahead_s: the flight sub-loop brakes when the map
            shows an obstacle within this many seconds of flight ahead.
        max_decisions: hard cap on pipeline decisions (guards wall-clock time).
        max_mission_time_s: hard cap on simulated mission time.
        max_consecutive_plan_failures: abort after this many failed plans in a
            row.
        camera_width / camera_height: per-camera depth image resolution.
        camera_range_m: camera maximum sensing range.
        local_map_radius_m: radius of the map kept around the drone.
        planner_iterations: RRT* iteration cap per plan.
        planner_step_m: RRT* extension step.
        rng_seed: seed shared by the planner for reproducibility.
    """

    sensor_period_s: float = 0.5
    control_dt_s: float = 0.25
    goal_tolerance_m: float = 10.0
    collision_margin_m: float = 0.2
    planner_margin_m: float = 1.0
    planning_horizon_m: float = 70.0
    replan_remaining_m: float = 15.0
    replan_interval_decisions: int = 40
    block_check_distance_m: float = 25.0
    flight_band_m: tuple = (2.0, 12.0)
    emergency_brake_lookahead_s: float = 0.8
    max_decisions: int = 3000
    max_mission_time_s: float = 6000.0
    max_consecutive_plan_failures: int = 8
    camera_width: int = 12
    camera_height: int = 9
    camera_range_m: float = 40.0
    local_map_radius_m: float = 120.0
    planner_iterations: int = 500
    planner_step_m: float = 4.0
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.sensor_period_s <= 0 or self.control_dt_s <= 0:
            raise ValueError("periods must be positive")
        if self.goal_tolerance_m <= 0:
            raise ValueError("goal tolerance must be positive")
        if self.max_decisions < 1:
            raise ValueError("max_decisions must be at least 1")
        if self.planning_horizon_m <= 0:
            raise ValueError("planning horizon must be positive")


@dataclass
class MissionResult:
    """Metrics plus per-decision traces for one mission."""

    metrics: MissionMetrics
    traces: List[DecisionTrace]
    ledger: LatencyLedger
    environment: GeneratedEnvironment
    design: str

    def trace_values(self, attribute: str) -> List[float]:
        """Convenience accessor: one scalar per decision (e.g. 'speed')."""
        return [getattr(trace, attribute) for trace in self.traces]


class MissionSimulator:
    """Runs one mission of one design through one generated environment."""

    def __init__(
        self,
        environment: GeneratedEnvironment,
        runtime: Runtime,
        config: Optional[MissionConfig] = None,
        cost_model: Optional[WorkloadCostModel] = None,
        energy_model: Optional[EnergyModel] = None,
        kinematics: Optional[QuadrotorKinematics] = None,
        profilers: Optional[ProfilerSuite] = None,
    ) -> None:
        self.environment = environment
        self.runtime = runtime
        self.config = config or MissionConfig()
        self.cost_model = cost_model or WorkloadCostModel()
        self.energy_model = energy_model or EnergyModel()
        self.kinematics = kinematics or QuadrotorKinematics()
        self.profilers = profilers or ProfilerSuite(
            max_visibility=self.config.camera_range_m
        )

        cfg = self.config
        self.rig = CameraRig(
            width=cfg.camera_width,
            height=cfg.camera_height,
            max_range=cfg.camera_range_m,
        )
        self.sensors = StateSensorSuite.ideal()
        self.operators = OperatorSet(
            point_cloud_kernel=PointCloudKernel(),
            octree=OccupancyOctree(vox_min=0.3, levels=6),
            planner=RRTStarPlanner(
                RRTStarConfig(
                    max_iterations=cfg.planner_iterations,
                    step_size=cfg.planner_step_m,
                    collision_margin=cfg.planner_margin_m,
                    seed=cfg.rng_seed,
                )
            ),
            smoother=PathSmoother(SmoothingConfig()),
            planner_seed=cfg.rng_seed,
            local_map_radius=cfg.local_map_radius_m,
        )
        self.follower = PurePursuitFollower()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> MissionResult:
        """Fly the mission and return its metrics and traces."""
        cfg = self.config
        env = self.environment
        clock = SimClock()
        ledger = LatencyLedger()
        cpu = CpuUtilizationTracker(sensor_period_s=cfg.sensor_period_s)

        state = DroneState(time=0.0, position=env.start, velocity=Vec3.zero())
        trajectory: Optional[Trajectory] = None
        traces: List[DecisionTrace] = []
        distance_travelled = 0.0
        collided = False
        reached_goal = False
        consecutive_plan_failures = 0
        decisions_since_plan = 0
        stalled_decisions = 0

        for decision_index in range(cfg.max_decisions):
            if clock.now > cfg.max_mission_time_s:
                break

            # 1. Sense.
            scan = self.rig.capture(env.world, state.position)
            estimate = self.sensors.estimate(clock.now, state.position, state.velocity)

            # 2. Profile.  The profiling cloud uses a fixed, modest resolution:
            # profiling happens before the policy exists and its cost is part
            # of the runtime overhead already charged by the cost model.
            profiling_cloud = self.operators.point_cloud_kernel.process(
                scan, resolution=0.6
            )
            profile = self.profilers.profile(
                timestamp=clock.now,
                state=estimate,
                cloud=profiling_cloud,
                scan=scan,
                octree=self.operators.octree,
                trajectory=trajectory,
                rig_max_volume=self.rig.max_sensor_volume(),
                heading=env.goal - state.position,
            )

            # 3. Decide.
            decision = self.runtime.decide(profile)

            # 4. Enforce the policy on the pipeline.
            focus = (
                trajectory.nearest_point_to(state.position).position
                if trajectory is not None
                else state.position
            )
            perception = self.operators.run_perception(scan, decision.policy, focus=focus)

            replan, reason = self._should_replan(
                trajectory, state.position, decisions_since_plan
            )
            local_goal = self._local_goal(state.position, env.goal)
            planning = self.operators.run_planning(
                policy=decision.policy,
                start=self._escape_start(state.position),
                goal=local_goal,
                bounds=self._planning_bounds(),
                replan=replan,
                previous_trajectory=trajectory,
                start_time=clock.now,
                velocity_cap=decision.velocity_cap,
            )
            replanned = planning.plan is not None
            if replanned:
                decisions_since_plan = 0
                if planning.plan is not None and not planning.plan.success:
                    consecutive_plan_failures += 1
                else:
                    consecutive_plan_failures = 0
            else:
                decisions_since_plan += 1
            trajectory = planning.trajectory

            # Blocked-trajectory safety: if the updated map says the path ahead
            # is blocked, drop the trajectory so the next decision replans.
            if trajectory is not None and self._trajectory_blocked(
                trajectory, state.position
            ):
                trajectory = None

            # 5. Charge compute.
            work = merge_work(perception.work, planning.work)
            stage_latencies = self.cost_model.stage_latencies(
                work, self.runtime.spatial_aware
            )
            end_to_end = sum(stage_latencies.values())
            ledger.record_many(decision_index, stage_latencies, clock.now)
            busy = sum(
                seconds
                for stage, seconds in stage_latencies.items()
                if not stage.startswith("comm_")
            )
            cpu.record_decision(decision_index, busy)

            zone = env.zone_map.zone_at(state.position).name
            traces.append(
                DecisionTrace(
                    index=decision_index,
                    timestamp=clock.now,
                    position=state.position,
                    zone=zone,
                    speed=state.speed,
                    velocity_cap=decision.velocity_cap,
                    time_budget=decision.time_budget,
                    policy=decision.policy.as_dict(),
                    stage_latencies=stage_latencies,
                    end_to_end_latency=end_to_end,
                    visibility=profile.visibility,
                    closest_obstacle=profile.closest_obstacle,
                    replanned=replanned,
                )
            )

            # 6. Fly for the duration of the decision.
            interval = max(end_to_end, cfg.sensor_period_s)
            state, flown, hit = self._fly(
                state, trajectory, decision.velocity_cap, interval, planning.view
            )
            distance_travelled += flown
            clock.advance(interval)

            # Stall detection: a drone pinned by its emergency brake (or a
            # trajectory it cannot make progress on) needs a fresh plan.
            if trajectory is not None and flown < 0.05:
                stalled_decisions += 1
                if stalled_decisions >= 3:
                    trajectory = None
                    stalled_decisions = 0
            else:
                stalled_decisions = 0

            if hit:
                collided = True
                break
            if state.position.distance_to(env.goal) <= cfg.goal_tolerance_m:
                reached_goal = True
                break
            if consecutive_plan_failures >= cfg.max_consecutive_plan_failures:
                break

        mission_time = clock.now
        mean_velocity = distance_travelled / mission_time if mission_time > 0 else 0.0
        energy = self.energy_model.mission_energy(
            flight_time_s=mission_time,
            mean_speed=mean_velocity,
            compute_busy_s=cpu.total_busy_seconds(),
        )
        latencies = ledger.end_to_end_latencies()
        deadline_misses = sum(1 for t in traces if not t.deadline_met)
        metrics = MissionMetrics(
            design=self.runtime.name,
            success=reached_goal and not collided,
            collided=collided,
            mission_time_s=mission_time,
            distance_travelled_m=distance_travelled,
            mean_velocity_mps=mean_velocity,
            energy_j=energy,
            mean_cpu_utilization=cpu.mean_utilization(),
            decision_count=len(traces),
            median_latency_s=ledger.median_latency(),
            max_latency_s=max(latencies) if latencies else 0.0,
            deadline_miss_rate=deadline_misses / len(traces) if traces else 0.0,
            replan_count=self.operators.plan_count,
        )
        return MissionResult(
            metrics=metrics,
            traces=traces,
            ledger=ledger,
            environment=env,
            design=self.runtime.name,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _should_replan(
        self,
        trajectory: Optional[Trajectory],
        position: Vec3,
        decisions_since_plan: int,
    ) -> tuple[bool, str]:
        """Decide whether the piece-wise planner must run this decision."""
        cfg = self.config
        if trajectory is None:
            return True, "no_trajectory"
        nearest = trajectory.nearest_point_to(position)
        remaining = trajectory.remaining_length(nearest.time)
        if remaining <= cfg.replan_remaining_m:
            return True, "trajectory_consumed"
        if decisions_since_plan >= cfg.replan_interval_decisions:
            return True, "periodic_refresh"
        return False, "tracking"

    def _trajectory_blocked(self, trajectory: Trajectory, position: Vec3) -> bool:
        """Check the path ahead of the drone against the updated occupancy map.

        The check deliberately uses the octree at its native resolution rather
        than the policy-dependent planning view: the per-decision precision
        knob changes cell sizes from decision to decision, and re-validating
        yesterday's path against today's coarser cells would invalidate
        perfectly good trajectories and cause replanning thrash.

        The walk starts at the nearest sample's own index (paths that revisit
        a waypoint used to re-find it by position equality, anchoring at the
        first visit and spending the whole check budget on segments already
        behind the drone) and each segment probe runs through the octree's
        index-backed segment query.
        """
        cfg = self.config
        octree = self.operators.octree
        start_index = trajectory.nearest_point_to(position).index
        points = trajectory.waypoint_positions()
        travelled = 0.0
        step = max(octree.vox_min, 0.5)
        for a, b in zip(points[start_index:], points[start_index + 1 :]):
            if octree.segment_occupied(a, b, step=step):
                return True
            travelled += a.distance_to(b)
            if travelled >= cfg.block_check_distance_m:
                break
        return False

    def _escape_start(self, position: Vec3) -> Vec3:
        """A planning start near the drone that is clear of mapped obstacles.

        When braking leaves the drone hugging (or, through map noise, inside)
        an occupied cell, planning from the exact drone position fails every
        time.  Planning from the nearest clear spot a voxel or two away lets
        the pipeline recover; the path follower pulls the drone onto the new
        path from wherever it actually is.
        """
        octree = self.operators.octree
        clearance = octree.vox_min * 2.0

        def is_clear(candidate: Vec3) -> bool:
            offsets = (
                Vec3.zero(),
                Vec3(clearance, 0.0, 0.0),
                Vec3(-clearance, 0.0, 0.0),
                Vec3(0.0, clearance, 0.0),
                Vec3(0.0, -clearance, 0.0),
            )
            return not any(octree.is_occupied(candidate + o) for o in offsets)

        if is_clear(position):
            return position
        for radius in (0.6, 1.2, 2.0, 3.0):
            for k in range(8):
                angle = math.pi * k / 4.0
                candidate = position + Vec3(
                    radius * math.cos(angle), radius * math.sin(angle), 0.0
                )
                if is_clear(candidate):
                    return candidate
        return position

    def _local_goal(self, position: Vec3, goal: Vec3) -> Vec3:
        """The receding-horizon goal for piece-wise planning."""
        to_goal = goal - position
        distance = to_goal.norm()
        if distance <= self.config.planning_horizon_m:
            return goal
        return position + to_goal * (self.config.planning_horizon_m / distance)

    def _planning_bounds(self) -> AABB:
        """The planner's sampling region: world bounds clamped to the flight band."""
        bounds = self.environment.world.bounds
        low, high = self.config.flight_band_m
        return AABB(
            Vec3(bounds.min_corner.x, bounds.min_corner.y, low),
            Vec3(bounds.max_corner.x, bounds.max_corner.y, high),
        )

    def _motion_blocked(self, position: Vec3, motion: Vec3) -> bool:
        """True when mapped obstacles lie within a small tube around the motion.

        The probe walks the expected displacement over the brake look-ahead
        horizon and checks a one-voxel-wide neighbourhood laterally, so the
        drone also brakes when it is about to *graze* a mapped obstacle rather
        than only when it would fly squarely into one.
        """
        cfg = self.config
        octree = self.operators.octree
        horizon = motion * cfg.emergency_brake_lookahead_s
        if horizon.norm() < 1e-6:
            return False
        # The drone's own voxel is excluded (include_start=False): map noise
        # can mark the cell the drone currently sits in, and braking on it
        # would pin the drone in place forever.
        return octree.segment_occupied(
            position,
            position + horizon,
            step=octree.vox_min,
            lateral=octree.vox_min,
            include_start=False,
        )

    def _fly(
        self,
        state: DroneState,
        trajectory: Optional[Trajectory],
        velocity_cap: float,
        duration: float,
        view,
    ) -> tuple[DroneState, float, bool]:
        """Advance flight for ``duration`` seconds; returns (state, distance, hit)."""
        cfg = self.config
        flown = 0.0
        remaining = duration
        current = state
        while remaining > 1e-9:
            dt = min(cfg.control_dt_s, remaining)
            if trajectory is None:
                command = Vec3.zero()
            else:
                command = self.follower.velocity_command(
                    trajectory, current.position, velocity_cap
                )
                # Emergency brake: if the occupancy map shows an obstacle
                # within a short flight-time horizon of the commanded motion
                # (or of the drone's current momentum), stop instead of
                # continuing at speed.
                if self._motion_blocked(current.position, command) or self._motion_blocked(
                    current.position, current.velocity
                ):
                    command = Vec3.zero()
            next_state = self.kinematics.step(current, command, dt)
            flown += next_state.position.distance_to(current.position)
            current = next_state
            if self.environment.world.is_occupied(
                current.position, margin=cfg.collision_margin_m
            ):
                return current, flown, True
            remaining -= dt
        return current, flown, False
