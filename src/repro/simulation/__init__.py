"""Mission simulation — the HIL-evaluation substitute.

The paper evaluates RoboRun with a hardware-in-the-loop setup: Unreal/AirSim
simulates the world and the drone while the navigation workload runs on a
separate machine.  This package replaces that loop with a deterministic,
simulated-clock decision pipeline built on the in-process middleware:

* :mod:`repro.simulation.pipeline` — the six pipeline nodes (sense, profile,
  governor, perception, planning, flight) exchanging typed messages over the
  executor; one decision is one message cascade, and the ``comm_*`` latency
  entries are hop records anchored to the messages that actually crossed the
  bus.
* :mod:`repro.simulation.mission` — the thin façade that wires the graph,
  drives one sensor tick per decision and owns mission-level termination and
  metric assembly.
* :mod:`repro.simulation.scenario` / :mod:`repro.simulation.campaign` — the
  declarative scenario layer: serialisable :class:`ScenarioSpec`s (with fault
  injection from :mod:`repro.simulation.faults`) fanned across worker
  processes by :class:`CampaignRunner` into an aggregated
  :class:`CampaignResult`; :mod:`repro.simulation.async_runner` is the
  persistent work-stealing engine behind ``mode="async"`` (per-spec
  timeouts, bounded retry, poisoned-spec exclusion).
* :mod:`repro.simulation.faults` / :mod:`repro.simulation.orchestrator` —
  the open fault library (registered fault classes acting at the sense
  boundary, the bus hops, the compute platform and the world's movers) and
  the per-mission :class:`FaultOrchestrator` that resolves timed
  :class:`FaultSchedule` activation/recovery windows against the mission
  seed.
"""

from repro.simulation.campaign import (
    CAMPAIGN_MODES,
    CampaignResult,
    CampaignRunner,
    ScenarioOutcome,
)
from repro.simulation.faults import (
    CameraDegradation,
    CommsDropout,
    CommsLatencySpike,
    Fault,
    FaultSchedule,
    FaultSet,
    PowerBrownout,
    SensorDropout,
    StuckMover,
    ThermalThrottle,
    fault_names,
    get_fault,
    is_registered_fault,
    register_fault,
)
from repro.simulation.orchestrator import FaultOrchestrator
from repro.simulation.metrics import DecisionTrace, MissionMetrics
from repro.simulation.mission import MissionConfig, MissionResult, MissionSimulator
from repro.simulation.pipeline import (
    DecisionPipeline,
    FlightNode,
    GovernorNode,
    PerceptionNode,
    PipelineHop,
    PlanningNode,
    ProfileNode,
    SenseNode,
)
from repro.simulation.scenario import ScenarioSpec, scenario_grid

__all__ = [
    "CAMPAIGN_MODES",
    "CameraDegradation",
    "CampaignResult",
    "CampaignRunner",
    "CommsDropout",
    "CommsLatencySpike",
    "DecisionPipeline",
    "DecisionTrace",
    "Fault",
    "FaultOrchestrator",
    "FaultSchedule",
    "FaultSet",
    "FlightNode",
    "GovernorNode",
    "MissionConfig",
    "MissionMetrics",
    "MissionResult",
    "MissionSimulator",
    "PerceptionNode",
    "PipelineHop",
    "PlanningNode",
    "PowerBrownout",
    "ProfileNode",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SenseNode",
    "SensorDropout",
    "StuckMover",
    "ThermalThrottle",
    "fault_names",
    "get_fault",
    "is_registered_fault",
    "register_fault",
    "scenario_grid",
]
