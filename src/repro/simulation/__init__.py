"""Mission simulation — the HIL-evaluation substitute.

The paper evaluates RoboRun with a hardware-in-the-loop setup: Unreal/AirSim
simulates the world and the drone while the navigation workload runs on a
separate machine.  This package replaces that loop with a deterministic,
simulated-clock decision loop:

1. the sensor rig captures the synthetic world from the drone's pose;
2. the runtime under test (RoboRun or the static baseline) produces a knob
   policy, a decision deadline and a velocity cap;
3. the operators run the perception/planning pipeline under that policy and
   report the work performed;
4. the compute-cost model converts the work into per-stage latencies, which
   are charged against the simulated clock; and
5. the drone flies along its current trajectory for the duration of the
   decision at the allowed velocity, with collisions checked against the
   ground-truth world.

:class:`~repro.simulation.mission.MissionSimulator` runs that loop;
:class:`~repro.simulation.metrics.MissionMetrics` aggregates the mission-level
metrics of Figure 7 and the traces behind Figures 10 and 11.
"""

from repro.simulation.metrics import DecisionTrace, MissionMetrics
from repro.simulation.mission import MissionConfig, MissionResult, MissionSimulator

__all__ = [
    "DecisionTrace",
    "MissionConfig",
    "MissionMetrics",
    "MissionResult",
    "MissionSimulator",
]
