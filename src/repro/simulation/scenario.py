"""Declarative mission scenarios.

A :class:`ScenarioSpec` names everything one mission needs — the environment
difficulty knobs, the mission configuration, the runtime design under test
and any injected faults — as one serialisable value.  Benchmarks, examples
and campaigns build specs instead of hand-wiring simulators, which makes a
sweep a plain list of values: easy to grid, to ship across a process pool
(:mod:`repro.simulation.campaign`) and to record next to its results.

Seeding: :meth:`ScenarioSpec.seeded` stamps one integer into both the
environment generator seed and the planner seed, so every mission of a
campaign is independently reproducible from its spec alone.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.environment.generator import EnvironmentConfig
from repro.simulation.faults import FAULT_SET_KEYS, FaultSet
from repro.simulation.fleet import FleetResult, FleetSimulator
from repro.simulation.mission import MissionConfig, MissionResult, MissionSimulator
from repro.worlds import WorldSpec, archetype_names, build_environment, is_registered

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.recorder import TraceRecorder

DESIGNS = ("roborun", "spatial_oblivious")


def _build_runtime(design: str):
    # Imported lazily: core.runtime pulls in the full governor stack, which
    # worker processes only need when they actually fly a mission.
    from repro.core.baseline import SpatialObliviousRuntime
    from repro.core.runtime import RoboRunRuntime

    return RoboRunRuntime() if design == "roborun" else SpatialObliviousRuntime()


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One fully specified mission: environment + mission + design + faults.

    Attributes:
        name: human-readable identifier, unique within a campaign.
        design: the runtime under test (``roborun`` / ``spatial_oblivious``).
        environment: difficulty knobs for the generated world.
        mission: the decision-loop configuration.
        faults: the fault set injected into the mission — legacy always-on
            sensor faults plus timed :class:`~repro.simulation.faults.
            FaultSchedule` windows resolved by the fault orchestrator.
        world: which procedural world archetype to fly through (defaults to
            the paper corridor, so pre-worlds specs behave identically).
        n_drones: fleet size; 1 (the default, and what every saved pre-fleet
            spec deserialises to) flies the single-drone simulator.
    """

    name: str
    design: str = "roborun"
    environment: EnvironmentConfig = field(default_factory=EnvironmentConfig)
    mission: MissionConfig = field(default_factory=MissionConfig)
    faults: FaultSet = field(default_factory=FaultSet)
    world: WorldSpec = field(default_factory=WorldSpec)
    n_drones: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.design not in DESIGNS:
            raise ValueError(
                f"unknown design {self.design!r}; expected one of {DESIGNS}"
            )
        if not is_registered(self.world.archetype):
            raise ValueError(
                f"unknown world archetype {self.world.archetype!r}; "
                f"registered: {archetype_names()}"
            )
        if self.n_drones < 1:
            raise ValueError("n_drones must be at least 1")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def seeded(self, seed: int) -> "ScenarioSpec":
        """A copy with the given seed stamped into environment and planner."""
        return replace(
            self,
            environment=replace(self.environment, seed=seed),
            mission=replace(self.mission, rng_seed=seed),
        )

    @property
    def seed(self) -> int:
        """The environment seed (the campaign's per-mission seed)."""
        return self.environment.seed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_simulator(self) -> Union[MissionSimulator, FleetSimulator]:
        """Generate the world and wire a simulator for this scenario.

        The environment is built through the worlds registry: for the
        default :class:`~repro.worlds.spec.WorldSpec` this is the paper
        corridor with a bit-identical obstacle list to the pre-worlds
        generator, plus the heterogeneity field the trace recorder samples.
        Specs with ``n_drones > 1`` get a
        :class:`~repro.simulation.fleet.FleetSimulator` over the same
        environment; both simulators share the ``run(recorder=...)`` shape.
        """
        environment = build_environment(self.environment, self.world)
        if self.n_drones > 1:
            return FleetSimulator(
                environment,
                lambda: _build_runtime(self.design),
                self.mission,
                n_drones=self.n_drones,
                faults=self.faults,
            )
        return MissionSimulator(
            environment,
            _build_runtime(self.design),
            self.mission,
            faults=self.faults,
        )

    def run(
        self,
        recorder: Optional["TraceRecorder"] = None,
        taps: Sequence = (),
    ) -> Union[MissionResult, FleetResult]:
        """Fly the scenario once and return the full mission result.

        Args:
            recorder: optional :class:`~repro.analysis.recorder.
                TraceRecorder` to stream structured per-decision records to;
                a recorder without a spec of its own is stamped with this
                spec so its records carry the scenario's identity.
            taps: additional passive observers (``repro.obs`` taps), passed
                through to the simulator untouched.
        """
        if recorder is not None and recorder.spec is None:
            recorder.spec = self
        return self.build_simulator().run(recorder=recorder, taps=taps)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe, crosses process boundaries)."""
        return {
            "name": self.name,
            "design": self.design,
            "environment": dataclasses.asdict(self.environment),
            "mission": dataclasses.asdict(self.mission),
            "faults": self.faults.to_dict(),
            "world": self.world.to_dict(),
            "n_drones": self.n_drones,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        mission_data = dict(data.get("mission", {}))
        band = mission_data.get("flight_band_m")
        if band is not None:
            mission_data["flight_band_m"] = tuple(band)
        return cls(
            name=data["name"],
            design=data.get("design", "roborun"),
            environment=EnvironmentConfig(**data.get("environment", {})),
            mission=MissionConfig(**mission_data),
            faults=FaultSet.from_dict(data.get("faults")),
            # Pre-worlds spec dictionaries have no "world" key; they get the
            # default paper corridor, exactly what they meant.  Pre-fleet
            # dictionaries likewise have no "n_drones": a single drone.
            world=WorldSpec.from_dict(data.get("world")),
            n_drones=int(data.get("n_drones", 1)),
        )

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(payload))


def _coerce_world(value: Any) -> WorldSpec:
    """Accept a WorldSpec, an archetype name or a spec dictionary."""
    if isinstance(value, WorldSpec):
        return value
    if isinstance(value, str):
        return WorldSpec(archetype=value)
    if isinstance(value, dict):
        return WorldSpec.from_dict(value)
    raise TypeError(
        f"world entries must be WorldSpec, archetype name or dict, got {value!r}"
    )


def _coerce_fault_set(value: Any) -> FaultSet:
    """Accept a FaultSet, a fault-set dictionary or None (no faults)."""
    if value is None:
        return FaultSet()
    if isinstance(value, FaultSet):
        return value
    if isinstance(value, dict):
        return FaultSet.from_dict(value)
    raise TypeError(
        f"fault entries must be FaultSet, fault-set dict or None, got {value!r}"
    )


def _fault_axis(faults: Any) -> tuple:
    """Normalise ``scenario_grid``'s ``faults`` argument into a sweep axis.

    Returns ``(configs, named)`` where ``configs`` is a list of
    ``(FaultSet, tag)`` pairs and ``named`` says whether the axis was swept
    (tags then appear in spec names).  Two shapes are accepted:

    * a single configuration — ``None``, a :class:`FaultSet`, or a fault-set
      dictionary (keys from ``FAULT_SET_KEYS``): applied to *every* spec,
      names unchanged (the pre-orchestrator behaviour);
    * a named mapping ``{config_name: FaultSet | dict | None}`` — any dict
      whose keys are not fault-set keys: one grid axis entry per name.
      Typo'd fault names inside a config still fail loudly, because every
      inner dict goes through the strict :meth:`FaultSet.from_dict`.
    """
    if faults is None or isinstance(faults, FaultSet):
        return [(_coerce_fault_set(faults), "")], False
    if isinstance(faults, dict):
        if not faults or set(faults) <= set(FAULT_SET_KEYS):
            return [(FaultSet.from_dict(faults), "")], False
        configs = []
        for tag, value in faults.items():
            if not tag or not isinstance(tag, str):
                raise ValueError(
                    f"fault config names must be non-empty strings, got {tag!r}"
                )
            configs.append((_coerce_fault_set(value), tag))
        return configs, True
    raise TypeError(
        "faults must be None, a FaultSet, a fault-set dict or a "
        f"{{name: fault set}} mapping, got {faults!r}"
    )


def _ordinal_tags(labels: Sequence[str]) -> List[str]:
    """Spec-name tags for one grid axis: repeated labels get 0-based ordinals.

    ``["forest", "corridor", "forest"]`` → ``["forest0", "corridor",
    "forest1"]``.  Unique labels are used as-is, so names stay stable when an
    axis has no duplicates.  This is the one naming rule every swept axis
    (worlds, fleet sizes, …) shares; spec names double as trace-file stems,
    so tags must be unique and deterministic.
    """
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    seen: Dict[str, int] = {}
    tags: List[str] = []
    for label in labels:
        if counts[label] > 1:
            ordinal = seen.get(label, 0)
            seen[label] = ordinal + 1
            tags.append(f"{label}{ordinal}")
        else:
            tags.append(label)
    return tags


def scenario_grid(
    name_prefix: str,
    designs: Sequence[str] = DESIGNS,
    densities: Sequence[float] = (),
    spreads: Sequence[float] = (),
    goal_distances: Sequence[float] = (),
    worlds: Sequence[Any] = (),
    n_drones: Sequence[int] = (),
    base_environment: Optional[EnvironmentConfig] = None,
    mission: Optional[MissionConfig] = None,
    faults: Any = None,
    base_seed: int = 0,
) -> List[ScenarioSpec]:
    """Build the cartesian sweep of designs × worlds × fleets × faults × knobs.

    Empty knob lists fall back to the base environment's value, so a caller
    can sweep any subset of the three paper knobs (density, spread, goal
    distance).  ``worlds`` adds the archetype axis: each entry is a
    :class:`~repro.worlds.spec.WorldSpec`, an archetype name or a spec
    dictionary; an empty list means the default paper corridor, and spec
    names then stay identical to the pre-worlds grid.  ``n_drones`` adds the
    fleet axis the same way: an empty list means single-drone missions with
    unchanged names.  ``faults`` is either one configuration (``None``, a
    :class:`~repro.simulation.faults.FaultSet` or a fault-set dictionary)
    applied to every spec with unchanged names, or a named mapping
    ``{config_name: fault set}`` that becomes a swept axis whose config
    names are tagged into the spec names (``..._nofault_...``,
    ``..._brownout_...``).  Every spec receives a distinct, deterministic
    seed (``base_seed + index``), so the grid is reproducible mission by
    mission.
    """
    base_env = base_environment or EnvironmentConfig()
    density_values = tuple(densities) or (base_env.obstacle_density,)
    spread_values = tuple(spreads) or (base_env.obstacle_spread,)
    goal_values = tuple(goal_distances) or (base_env.goal_distance,)
    world_values = tuple(_coerce_world(w) for w in worlds) or (WorldSpec(),)
    fleet_values = tuple(int(n) for n in n_drones) or (1,)
    # Axis labels appear in spec names only when the axis is swept, so the
    # default grid's names (and trace-file names) are unchanged.  When the
    # same label appears more than once on an axis (e.g. two forest variants
    # with different params, or a repeated fleet size), _ordinal_tags keeps
    # the names — and therefore the per-spec trace files — distinct.
    name_worlds = bool(worlds)
    name_fleets = bool(n_drones)
    tagged_worlds = list(
        zip(world_values, _ordinal_tags([w.archetype for w in world_values]))
    )
    tagged_fleets = list(
        zip(fleet_values, _ordinal_tags([f"fleet{n}" for n in fleet_values]))
    )
    tagged_faults, name_faults = _fault_axis(faults)

    specs: List[ScenarioSpec] = []
    combos = itertools.product(
        designs, tagged_worlds, tagged_fleets, tagged_faults, density_values,
        spread_values, goal_values,
    )
    for index, (
        design, (world, tag), (fleet, fleet_label), (fault_set, fault_label),
        density, spread, goal,
    ) in enumerate(combos):
        environment = replace(
            base_env,
            obstacle_density=density,
            obstacle_spread=spread,
            goal_distance=goal,
        )
        world_tag = f"_{tag}" if name_worlds else ""
        fleet_tag = f"_{fleet_label}" if name_fleets else ""
        fault_tag = f"_{fault_label}" if name_faults else ""
        spec = ScenarioSpec(
            name=(
                f"{name_prefix}_{design}{world_tag}{fleet_tag}{fault_tag}"
                f"_den{density:g}_spr{spread:g}_goal{goal:g}"
            ),
            design=design,
            environment=environment,
            mission=mission or MissionConfig(),
            faults=fault_set,
            world=world,
            n_drones=fleet,
        ).seeded(base_seed + index)
        specs.append(spec)
    return specs
